// Package concurrency implements Hyrise's multi-version concurrency control
// (paper §2.8): transactions carry a begin commit id (their snapshot) and
// receive an end commit id when they commit; updates are insert-only with
// invalidations; write-write conflicts are detected by atomically claiming a
// row's transaction id — if two transactions try to set the transaction id
// of a single row, only one succeeds and the other has to abort.
package concurrency

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hyrise/internal/observe"
	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// ErrConflict is returned when a transaction loses a write-write race and
// must abort.
var ErrConflict = errors.New("transaction conflict")

// Phase is a transaction's lifecycle state.
type Phase uint8

// Transaction phases.
const (
	Active Phase = iota
	Committed
	RolledBack
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case Active:
		return "Active"
	case Committed:
		return "Committed"
	case RolledBack:
		return "RolledBack"
	default:
		return "?"
	}
}

// RedoKind tags a logged write operation.
type RedoKind uint8

// Redo operation kinds. Updates are logged as delete + insert pairs,
// matching their insert-only MVCC implementation.
const (
	RedoInsert RedoKind = iota + 1
	RedoDelete
)

// RedoOp is one logical write of a transaction, captured for the
// write-ahead log. Inserts carry the physical RowID the row was placed at
// so replay reproduces chunk geometry exactly (delete records reference
// rows by RowID).
type RedoOp struct {
	Kind   RedoKind
	Table  string
	Row    types.RowID
	Values []types.Value // RedoInsert only
}

// DurabilityHook is the seam between the transaction manager and the
// write-ahead log. AppendCommit is called inside the commit critical
// section, in commit-id order, with the transaction's redo operations; the
// hook must buffer the batch atomically. It returns a wait function that
// blocks until the commit record is durable (nil when the commit may be
// acknowledged immediately, e.g. relaxed sync modes). An error aborts the
// commit before any row version is stamped.
type DurabilityHook interface {
	AppendCommit(tid types.TransactionID, cid types.CommitID, ops []RedoOp) (wait func() error, err error)
}

// TransactionManager hands out transaction ids and serializes commit-id
// assignment.
type TransactionManager struct {
	nextTID atomic.Uint64
	lastCID atomic.Uint64
	// commitMu serializes the commit critical section: assign the commit
	// id, append the commit to the log, stamp all row versions, then
	// publish the new last commit id. Readers that start mid-commit still
	// see the previous snapshot.
	commitMu sync.Mutex
	// nextCID is the highest commit id ever assigned (guarded by commitMu).
	// It runs ahead of lastCID while commits await durability: their rows
	// are stamped but not yet visible to new snapshots.
	nextCID uint64

	hook atomic.Pointer[DurabilityHook]

	committed atomic.Int64
	aborted   atomic.Int64
}

// SetDurabilityHook installs (or, with nil, removes) the write-ahead-log
// hook. It must be called before transactions start writing.
func (tm *TransactionManager) SetDurabilityHook(h DurabilityHook) {
	if h == nil {
		tm.hook.Store(nil)
		return
	}
	tm.hook.Store(&h)
}

// LoggingEnabled reports whether a durability hook is installed (operators
// use it to skip redo collection entirely when running in-memory only).
func (tm *TransactionManager) LoggingEnabled() bool { return tm.hook.Load() != nil }

func (tm *TransactionManager) durabilityHook() DurabilityHook {
	p := tm.hook.Load()
	if p == nil {
		return nil
	}
	return *p
}

// PublishCommitID raises the published last commit id to cid (monotonic;
// late smaller publishes are no-ops). The write-ahead log calls this after
// a deferred-sync commit becomes durable.
func (tm *TransactionManager) PublishCommitID(cid types.CommitID) {
	for {
		cur := tm.lastCID.Load()
		if uint64(cid) <= cur || tm.lastCID.CompareAndSwap(cur, uint64(cid)) {
			return
		}
	}
}

// RecoverState fast-forwards the commit-id and transaction-id counters
// after log replay, before the engine accepts transactions.
func (tm *TransactionManager) RecoverState(lastCID types.CommitID, lastTID types.TransactionID) {
	tm.commitMu.Lock()
	if uint64(lastCID) > tm.nextCID {
		tm.nextCID = uint64(lastCID)
	}
	tm.commitMu.Unlock()
	tm.PublishCommitID(lastCID)
	for {
		cur := tm.nextTID.Load()
		if uint64(lastTID) <= cur || tm.nextTID.CompareAndSwap(cur, uint64(lastTID)) {
			return
		}
	}
}

// CommitBarrier runs fn while holding the commit critical section: no
// commit can stamp rows or append to the log while fn runs. fn receives
// the highest commit id assigned so far (every such commit has fully
// stamped its rows and appended its log record). The persistence layer
// uses it to take a consistent snapshot cut at a commit boundary.
func (tm *TransactionManager) CommitBarrier(fn func(highestCID types.CommitID)) {
	tm.commitMu.Lock()
	defer tm.commitMu.Unlock()
	fn(types.CommitID(tm.nextCID))
}

// Stats reports lifetime transaction counts (started, committed, aborted).
func (tm *TransactionManager) Stats() (started, committed, aborted int64) {
	return int64(tm.nextTID.Load()), tm.committed.Load(), tm.aborted.Load()
}

// NewTransactionManager creates a manager; commit id 0 is "the beginning of
// time" (bulk-loaded rows are stamped with it and visible to everyone).
func NewTransactionManager() *TransactionManager {
	return &TransactionManager{}
}

// LastCommitID returns the most recently published commit id.
func (tm *TransactionManager) LastCommitID() types.CommitID {
	return types.CommitID(tm.lastCID.Load())
}

// New starts a transaction with a fresh id and the current snapshot.
func (tm *TransactionManager) New() *TransactionContext {
	return &TransactionContext{
		tm:       tm,
		tid:      types.TransactionID(tm.nextTID.Add(1)),
		snapshot: tm.LastCommitID(),
		phase:    Active,
	}
}

type rowRef struct {
	chunk *storage.Chunk
	row   types.ChunkOffset
}

// TransactionContext is the per-transaction state threaded through the
// operators (paper Figure 1: operators receive the transaction context to
// validate and stamp rows).
type TransactionContext struct {
	tm       *TransactionManager
	tid      types.TransactionID
	snapshot types.CommitID
	phase    Phase

	mu            sync.Mutex
	inserts       []rowRef
	invalidations []rowRef
	redo          []RedoOp
	abortCause    error
	waitObs       func(kind observe.WaitKind) (end func())
}

// SetWaitObserver installs a callback fired when the transaction is about to
// block — awaiting WAL durability at commit, or retrying a contended row
// claim. The returned end function is called once the wait finishes; the
// pipeline uses the pair to flip the active query to "waiting" and attribute
// the blocked nanoseconds. The observer must not call back into the
// transaction.
func (tc *TransactionContext) SetWaitObserver(fn func(kind observe.WaitKind) (end func())) {
	tc.mu.Lock()
	tc.waitObs = fn
	tc.mu.Unlock()
}

func (tc *TransactionContext) waitObserver() func(kind observe.WaitKind) (end func()) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.waitObs
}

// TID returns the transaction id.
func (tc *TransactionContext) TID() types.TransactionID { return tc.tid }

// Snapshot returns the commit id this transaction reads as of.
func (tc *TransactionContext) Snapshot() types.CommitID { return tc.snapshot }

// Phase returns the lifecycle phase.
func (tc *TransactionContext) Phase() Phase {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.phase
}

// RegisterInsert records a freshly appended row: its TID is stamped so the
// row is visible to this transaction only, until commit assigns the begin
// commit id.
func (tc *TransactionContext) RegisterInsert(chunk *storage.Chunk, row types.ChunkOffset) {
	mvcc := chunk.MvccData()
	mvcc.SetTID(row, tc.tid)
	tc.mu.Lock()
	tc.inserts = append(tc.inserts, rowRef{chunk, row})
	tc.mu.Unlock()
}

// TryInvalidate claims a visible row for deletion. It fails with
// ErrConflict when another transaction holds or has already invalidated the
// row.
func (tc *TransactionContext) TryInvalidate(chunk *storage.Chunk, row types.ChunkOffset) error {
	mvcc := chunk.MvccData()
	if mvcc == nil {
		return fmt.Errorf("concurrency: table has no MVCC data")
	}
	ownRow := mvcc.TID(row) == tc.tid && mvcc.Begin(row) == types.MaxCommitID
	if ownRow {
		// Deleting a row this transaction inserted: hide it immediately —
		// no other transaction can see it anyway.
		mvcc.SetEnd(row, 0)
		return nil
	}
	if !mvcc.ClaimTID(row, tc.tid) {
		return fmt.Errorf("%w: row held by transaction %d", ErrConflict, mvcc.TID(row))
	}
	// Re-check visibility after the claim: a committed delete may have
	// slipped in between validation and the claim.
	if mvcc.End(row) != types.MaxCommitID {
		mvcc.ReleaseTID(row, tc.tid)
		return fmt.Errorf("%w: row already invalidated", ErrConflict)
	}
	tc.mu.Lock()
	tc.invalidations = append(tc.invalidations, rowRef{chunk, row})
	tc.mu.Unlock()
	return nil
}

// TryInvalidateWait is TryInvalidate with a bounded lock wait: when the row
// is merely *held* by another live transaction (not permanently
// invalidated), the claim is retried with exponential backoff for up to
// maxWait before giving up with the original conflict. A maxWait of zero
// keeps the immediate-abort behavior. Waiting is cut short when ctx dies
// (returning the context's error, so cancellation maps to SQLSTATE 57014)
// or when the holder commits its delete (the row can never come back). The
// full blocked span is reported through the wait observer.
func (tc *TransactionContext) TryInvalidateWait(ctx context.Context, chunk *storage.Chunk, row types.ChunkOffset, maxWait time.Duration) error {
	err := tc.TryInvalidate(chunk, row)
	if err == nil || !errors.Is(err, ErrConflict) || maxWait <= 0 {
		return err
	}
	mvcc := chunk.MvccData()
	if obs := tc.waitObserver(); obs != nil {
		if end := obs(observe.WaitMVCCConflict); end != nil {
			defer end()
		}
	}
	deadline := time.Now().Add(maxWait)
	backoff := 50 * time.Microsecond
	for {
		if mvcc.End(row) != types.MaxCommitID {
			// The holder committed its delete: permanently invalidated.
			return err
		}
		if !time.Now().Before(deadline) {
			return err
		}
		if ctx != nil {
			timer := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			case <-timer.C:
			}
		} else {
			time.Sleep(backoff)
		}
		err = tc.TryInvalidate(chunk, row)
		if err == nil || !errors.Is(err, ErrConflict) {
			return err
		}
		if backoff *= 2; backoff > time.Millisecond {
			backoff = time.Millisecond
		}
	}
}

// LogInsert records a redo entry for a freshly appended row, carrying its
// physical placement and values for the write-ahead log. No-op unless a
// durability hook is installed.
func (tc *TransactionContext) LogInsert(table string, row types.RowID, vals []types.Value) {
	if !tc.tm.LoggingEnabled() {
		return
	}
	tc.mu.Lock()
	tc.redo = append(tc.redo, RedoOp{Kind: RedoInsert, Table: table, Row: row, Values: vals})
	tc.mu.Unlock()
}

// LogDelete records a redo entry for an invalidated row. No-op unless a
// durability hook is installed.
func (tc *TransactionContext) LogDelete(table string, row types.RowID) {
	if !tc.tm.LoggingEnabled() {
		return
	}
	tc.mu.Lock()
	tc.redo = append(tc.redo, RedoOp{Kind: RedoDelete, Table: table, Row: row})
	tc.mu.Unlock()
}

// Commit stamps all registered rows with a fresh commit id and publishes
// it. With a durability hook installed, the commit record is appended to
// the log before any row version is stamped, and — depending on the sync
// mode — Commit blocks until the record is durable before returning. After
// Commit the transaction is immutable.
func (tc *TransactionContext) Commit() error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.phase != Active {
		return fmt.Errorf("concurrency: commit in phase %s", tc.phase)
	}
	tm := tc.tm
	// Read-only transactions change nothing: consume no commit id, log
	// nothing.
	if len(tc.inserts) == 0 && len(tc.invalidations) == 0 {
		tc.phase = Committed
		tm.committed.Add(1)
		return nil
	}
	tm.commitMu.Lock()
	cid := types.CommitID(tm.nextCID + 1)
	var wait func() error
	if hook := tm.durabilityHook(); hook != nil {
		w, err := hook.AppendCommit(tc.tid, cid, tc.redo)
		if err != nil {
			// The log rejected the commit (e.g. disk failure): abort so row
			// claims are released instead of dangling forever.
			tm.commitMu.Unlock()
			tc.rollbackLocked(err)
			return fmt.Errorf("concurrency: write-ahead log append: %w", err)
		}
		wait = w
	}
	tm.nextCID = uint64(cid)
	for _, r := range tc.inserts {
		mvcc := r.chunk.MvccData()
		mvcc.SetBegin(r.row, cid)
		mvcc.ReleaseTID(r.row, tc.tid)
	}
	for _, r := range tc.invalidations {
		mvcc := r.chunk.MvccData()
		mvcc.SetEnd(r.row, cid)
		mvcc.ReleaseTID(r.row, tc.tid)
	}
	if wait == nil {
		// Immediately visible; otherwise the log publishes the commit id
		// once the record is durable, keeping unsynced commits out of new
		// snapshots.
		tm.PublishCommitID(cid)
	}
	tm.commitMu.Unlock()
	tc.phase = Committed
	tm.committed.Add(1)
	if wait != nil {
		var end func()
		if obs := tc.waitObs; obs != nil {
			end = obs(observe.WaitWALSync)
		}
		err := wait()
		if end != nil {
			end()
		}
		if err != nil {
			return fmt.Errorf("concurrency: commit %d not durable: %w", cid, err)
		}
	}
	return nil
}

// Rollback undoes all registered changes: inserted rows are hidden forever,
// claimed rows are released.
func (tc *TransactionContext) Rollback() { tc.RollbackWithCause(nil) }

// RollbackWithCause is Rollback with a recorded abort reason — the pipeline
// passes the statement error (conflict, cancellation, timeout) so
// observability and tests can distinguish why a transaction died. Only the
// first rollback's cause sticks; later calls are no-ops.
func (tc *TransactionContext) RollbackWithCause(cause error) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.rollbackLocked(cause)
}

// rollbackLocked is RollbackWithCause with tc.mu already held.
func (tc *TransactionContext) rollbackLocked(cause error) {
	if tc.phase != Active {
		return
	}
	tc.abortCause = cause
	for _, r := range tc.inserts {
		mvcc := r.chunk.MvccData()
		mvcc.SetEnd(r.row, 0) // begin stays MaxCommitID: never visible
		mvcc.ReleaseTID(r.row, tc.tid)
	}
	for _, r := range tc.invalidations {
		r.chunk.MvccData().ReleaseTID(r.row, tc.tid)
	}
	tc.phase = RolledBack
	tc.tm.aborted.Add(1)
}

// AbortCause returns the error recorded at rollback (nil for explicit
// client-issued ROLLBACK or while the transaction is live).
func (tc *TransactionContext) AbortCause() error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.abortCause
}

// Visible reports whether a row version is visible to the transaction
// (the Validate operator's core test, paper §2.8).
func Visible(mvcc *storage.MvccData, row types.ChunkOffset, tid types.TransactionID, snapshot types.CommitID) bool {
	if mvcc.TID(row) == tid && tid != 0 {
		// Rows this transaction touched: own inserts are visible unless
		// self-deleted; own pending deletes of committed rows are hidden.
		if mvcc.Begin(row) == types.MaxCommitID {
			return mvcc.End(row) == types.MaxCommitID
		}
		return false
	}
	begin := mvcc.Begin(row)
	end := mvcc.End(row)
	return begin <= snapshot && end > snapshot
}

// MarkRowCommitted stamps a row as committed "at the beginning of time"
// (begin commit id 0). Bulk loaders use this for rows created outside any
// transaction.
func MarkRowCommitted(chunk *storage.Chunk, row types.ChunkOffset) {
	if mvcc := chunk.MvccData(); mvcc != nil {
		mvcc.SetBegin(row, 0)
	}
}

// MarkTableLoaded stamps every existing row of a table as committed at
// commit id 0 (bulk-load path).
func MarkTableLoaded(t *storage.Table) {
	for _, c := range t.Chunks() {
		mvcc := c.MvccData()
		if mvcc == nil {
			continue
		}
		for row := 0; row < c.Size(); row++ {
			mvcc.SetBegin(types.ChunkOffset(row), 0)
		}
	}
}
