package concurrency

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyrise/internal/observe"
	"hyrise/internal/storage"
	"hyrise/internal/types"
)

func mvccTable(t *testing.T, rows int) *storage.Table {
	t.Helper()
	table := storage.NewTable("t", []storage.ColumnDefinition{{Name: "v", Type: types.TypeInt64}}, 100, true)
	for i := 0; i < rows; i++ {
		if _, err := table.AppendRow([]types.Value{types.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	MarkTableLoaded(table)
	return table
}

func visibleRows(table *storage.Table, tc *TransactionContext) []int64 {
	var out []int64
	for _, c := range table.Chunks() {
		mvcc := c.MvccData()
		for row := 0; row < c.Size(); row++ {
			var tid types.TransactionID
			var snap types.CommitID
			if tc != nil {
				tid, snap = tc.TID(), tc.Snapshot()
			}
			if Visible(mvcc, types.ChunkOffset(row), tid, snap) {
				out = append(out, c.GetSegment(0).ValueAt(types.ChunkOffset(row)).I)
			}
		}
	}
	return out
}

func TestBulkLoadedRowsVisible(t *testing.T) {
	tm := NewTransactionManager()
	table := mvccTable(t, 3)
	tc := tm.New()
	if got := visibleRows(table, tc); len(got) != 3 {
		t.Errorf("visible = %v, want 3 rows", got)
	}
}

func TestInsertVisibilityLifecycle(t *testing.T) {
	tm := NewTransactionManager()
	table := mvccTable(t, 1)

	writer := tm.New()
	rid, err := table.AppendRow([]types.Value{types.Int(100)})
	if err != nil {
		t.Fatal(err)
	}
	writer.RegisterInsert(table.GetChunk(rid.Chunk), rid.Offset)

	// Uncommitted insert: visible to writer, invisible to a reader.
	reader := tm.New()
	if got := visibleRows(table, writer); len(got) != 2 {
		t.Errorf("writer sees %v, want own insert", got)
	}
	if got := visibleRows(table, reader); len(got) != 1 {
		t.Errorf("reader sees %v, want only committed row", got)
	}

	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	// Old snapshot still does not see it; a fresh one does.
	if got := visibleRows(table, reader); len(got) != 1 {
		t.Errorf("old snapshot sees %v", got)
	}
	late := tm.New()
	if got := visibleRows(table, late); len(got) != 2 {
		t.Errorf("new snapshot sees %v, want 2 rows", got)
	}
	if writer.Phase() != Committed {
		t.Error("phase should be Committed")
	}
	if err := writer.Commit(); err == nil {
		t.Error("double commit should fail")
	}
}

func TestDeleteLifecycleAndSnapshotIsolation(t *testing.T) {
	tm := NewTransactionManager()
	table := mvccTable(t, 2)
	chunk := table.GetChunk(0)

	deleter := tm.New()
	if err := deleter.TryInvalidate(chunk, 0); err != nil {
		t.Fatal(err)
	}
	// Pending delete: hidden from deleter, still visible to others.
	if got := visibleRows(table, deleter); len(got) != 1 || got[0] != 1 {
		t.Errorf("deleter sees %v", got)
	}
	other := tm.New()
	if got := visibleRows(table, other); len(got) != 2 {
		t.Errorf("other sees %v, want both rows", got)
	}

	if err := deleter.Commit(); err != nil {
		t.Fatal(err)
	}
	// Snapshot isolation: the old reader still sees the deleted row.
	if got := visibleRows(table, other); len(got) != 2 {
		t.Errorf("old snapshot sees %v, want 2 rows", got)
	}
	fresh := tm.New()
	if got := visibleRows(table, fresh); len(got) != 1 || got[0] != 1 {
		t.Errorf("fresh snapshot sees %v", got)
	}
}

func TestWriteWriteConflict(t *testing.T) {
	tm := NewTransactionManager()
	table := mvccTable(t, 1)
	chunk := table.GetChunk(0)

	a, b := tm.New(), tm.New()
	if err := a.TryInvalidate(chunk, 0); err != nil {
		t.Fatal(err)
	}
	err := b.TryInvalidate(chunk, 0)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("want conflict, got %v", err)
	}
	b.Rollback()
	// After a rolls back, the claim is released and b2 can delete.
	a.Rollback()
	b2 := tm.New()
	if err := b2.TryInvalidate(chunk, 0); err != nil {
		t.Fatalf("claim after rollback should work: %v", err)
	}
}

func TestDeleteAlreadyInvalidatedConflicts(t *testing.T) {
	tm := NewTransactionManager()
	table := mvccTable(t, 1)
	chunk := table.GetChunk(0)

	// Reader starts first, holding an old snapshot where row 0 is alive.
	reader := tm.New()
	del := tm.New()
	if err := del.TryInvalidate(chunk, 0); err != nil {
		t.Fatal(err)
	}
	if err := del.Commit(); err != nil {
		t.Fatal(err)
	}
	// reader validated row 0 earlier; its late delete must conflict.
	err := reader.TryInvalidate(chunk, 0)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("want conflict on already-invalidated row, got %v", err)
	}
}

func TestRollbackInsert(t *testing.T) {
	tm := NewTransactionManager()
	table := mvccTable(t, 0)

	tx := tm.New()
	rid, _ := table.AppendRow([]types.Value{types.Int(7)})
	tx.RegisterInsert(table.GetChunk(rid.Chunk), rid.Offset)
	tx.Rollback()
	if tx.Phase() != RolledBack {
		t.Error("phase should be RolledBack")
	}
	if got := visibleRows(table, tm.New()); len(got) != 0 {
		t.Errorf("rolled-back insert visible: %v", got)
	}
	// Rollback is idempotent; commit after rollback fails.
	tx.Rollback()
	if err := tx.Commit(); err == nil {
		t.Error("commit after rollback should fail")
	}
}

func TestSelfDeleteOfOwnInsert(t *testing.T) {
	tm := NewTransactionManager()
	table := mvccTable(t, 0)
	tx := tm.New()
	rid, _ := table.AppendRow([]types.Value{types.Int(1)})
	chunk := table.GetChunk(rid.Chunk)
	tx.RegisterInsert(chunk, rid.Offset)
	if got := visibleRows(table, tx); len(got) != 1 {
		t.Fatalf("own insert invisible: %v", got)
	}
	if err := tx.TryInvalidate(chunk, rid.Offset); err != nil {
		t.Fatal(err)
	}
	if got := visibleRows(table, tx); len(got) != 0 {
		t.Errorf("self-deleted insert still visible: %v", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := visibleRows(table, tm.New()); len(got) != 0 {
		t.Errorf("self-deleted insert visible after commit: %v", got)
	}
}

// Concurrent increments via delete+insert pairs: exactly one winner per
// round; total visible rows must stay 1.
func TestConcurrentConflictsUnderRace(t *testing.T) {
	tm := NewTransactionManager()
	table := mvccTable(t, 1)

	const workers = 8
	const rounds = 50
	var wg sync.WaitGroup
	var committed, aborted int
	var mu sync.Mutex

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				tx := tm.New()
				// Find a visible row to "update".
				var target *storage.Chunk
				var offset types.ChunkOffset
				found := false
				for _, c := range table.Chunks() {
					mvcc := c.MvccData()
					for row := 0; row < c.Size() && !found; row++ {
						if Visible(mvcc, types.ChunkOffset(row), tx.TID(), tx.Snapshot()) {
							target, offset, found = c, types.ChunkOffset(row), true
						}
					}
					if found {
						break
					}
				}
				if !found {
					tx.Rollback()
					continue
				}
				if err := tx.TryInvalidate(target, offset); err != nil {
					tx.Rollback()
					mu.Lock()
					aborted++
					mu.Unlock()
					continue
				}
				rid, err := table.AppendRow([]types.Value{types.Int(int64(r))})
				if err != nil {
					tx.Rollback()
					continue
				}
				tx.RegisterInsert(table.GetChunk(rid.Chunk), rid.Offset)
				if err := tx.Commit(); err != nil {
					tx.Rollback()
					continue
				}
				mu.Lock()
				committed++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if got := visibleRows(table, tm.New()); len(got) != 1 {
		t.Fatalf("visible rows = %v, want exactly 1", got)
	}
	if committed == 0 {
		t.Error("no transaction ever committed")
	}
	t.Logf("committed=%d aborted=%d", committed, aborted)
}

func TestTryInvalidateWait(t *testing.T) {
	table := mvccTable(t, 1)
	tm := NewTransactionManager()
	chunk := table.Chunks()[0]

	// Zero maxWait keeps the immediate-abort behavior.
	holder := tm.New()
	if err := holder.TryInvalidate(chunk, 0); err != nil {
		t.Fatal(err)
	}
	blocked := tm.New()
	if err := blocked.TryInvalidateWait(context.Background(), chunk, 0, 0); !errors.Is(err, ErrConflict) {
		t.Fatalf("maxWait=0 got %v, want conflict", err)
	}

	// With a wait budget, the claim succeeds once the holder rolls back;
	// the observer sees exactly one begin/end pair around the blocked span.
	var began, ended atomic.Int64
	blocked.SetWaitObserver(func(kind observe.WaitKind) func() {
		if kind != observe.WaitMVCCConflict {
			t.Errorf("wait kind = %v", kind)
		}
		began.Add(1)
		return func() { ended.Add(1) }
	})
	go func() {
		time.Sleep(5 * time.Millisecond)
		holder.Rollback()
	}()
	if err := blocked.TryInvalidateWait(context.Background(), chunk, 0, time.Second); err != nil {
		t.Fatalf("wait-retry got %v, want success", err)
	}
	if began.Load() != 1 || ended.Load() != 1 {
		t.Fatalf("observer begin/end = %d/%d, want 1/1", began.Load(), ended.Load())
	}
	blocked.Rollback()

	// A dead context cuts the wait short with the context's error.
	holder2 := tm.New()
	if err := holder2.TryInvalidate(chunk, 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	victim := tm.New()
	if err := victim.TryInvalidateWait(ctx, chunk, 0, time.Minute); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled wait got %v, want context.Canceled", err)
	}

	// A committed delete is permanent: the waiter gives up immediately with
	// the conflict instead of burning its whole budget.
	if err := holder2.Commit(); err != nil {
		t.Fatal(err)
	}
	late := tm.New()
	start := time.Now()
	if err := late.TryInvalidateWait(context.Background(), chunk, 0, time.Minute); !errors.Is(err, ErrConflict) {
		t.Fatalf("deleted-row wait got %v, want conflict", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("waiter did not short-circuit on permanent invalidation")
	}
}
