package encoding

import (
	"testing"

	"hyrise/internal/types"
)

// FuzzEncodedScan fuzzes every encoded scan path against the independent
// row-at-a-time reference from the differential harness. The raw bytes are
// the column: each byte carries a small signed value (lots of duplicates and
// runs, the shapes encodings exploit) and a null marker; stride widens the
// domain up to int64 overflow territory to stress the frame-of-reference
// offset arithmetic. The predicate is decoded from (opByte, probe, lo, hi).
func FuzzEncodedScan(f *testing.F) {
	// Seeds follow TPC-H column shapes: l_quantity (1..50, duplicate-heavy),
	// l_shipdate (dense day numbers), l_orderkey (sparse, wide stride),
	// l_discount scaled (constant-ish runs), and an adversarial near-overflow
	// stride with extreme probes.
	quantity := make([]byte, 400)
	for i := range quantity {
		quantity[i] = byte(1 + (i*7)%50)
	}
	f.Add(quantity, uint8(0), int64(25), int64(10), int64(40), int64(1))
	shipdate := make([]byte, 300)
	for i := range shipdate {
		shipdate[i] = byte(100 + (i/4)%28)
	}
	f.Add(shipdate, uint8(6), int64(110), int64(104), int64(118), int64(1))
	orderkey := make([]byte, 256)
	for i := range orderkey {
		orderkey[i] = byte(i)
	}
	f.Add(orderkey, uint8(4), int64(32_000), int64(0), int64(64_000), int64(1000))
	discount := make([]byte, 200)
	for i := range discount {
		discount[i] = byte(5 + (i/50)%3)
	}
	f.Add(discount, uint8(1), int64(6), int64(5), int64(7), int64(1))
	f.Add([]byte{0x80, 0x7F, 0x00, 0xFF, 0x0F, 0x80, 0x7F}, uint8(3),
		int64(-9_223_372_036_854_775_808), int64(-1), int64(9_223_372_036_854_775_807),
		int64(72_057_594_037_927_936)) // stride 2^56: values straddle the int64 extremes

	f.Fuzz(func(t *testing.T, data []byte, opByte uint8, probe, lo, hi, stride int64) {
		if len(data) > 1<<14 {
			data = data[:1<<14]
		}
		values := make([]int64, len(data))
		var nulls []bool
		for i, b := range data {
			values[i] = int64(int8(b)) * stride // wrapping on purpose
			if b&0x0F == 0x0F {
				if nulls == nil {
					nulls = make([]bool, len(data))
				}
				nulls[i] = true
			}
		}
		op := ScanOp(opByte % 9)
		pred := ScanPredicate{Op: op}
		switch op {
		case ScanBetween:
			pred.Lo, pred.Hi = types.Int(lo), types.Int(hi)
		case ScanIsNull, ScanIsNotNull:
		default:
			pred.Value = types.Int(probe)
		}
		want := refScan(op, probe, lo, hi, values, nulls)
		for name, seg := range buildScannables(values, nulls) {
			got, _, ok := seg.ScanEncoded(pred, nil)
			if !ok {
				t.Fatalf("%s: refused int predicate %v on int64 column", name, op)
			}
			if got == nil {
				got = []types.ChunkOffset{}
			}
			if !equalOffsets(got, want) {
				t.Fatalf("%s: op=%v probe=%d lo=%d hi=%d stride=%d: got %d offsets, reference %d (got %v, want %v)",
					name, op, probe, lo, hi, stride, len(got), len(want), clip(got), clip(want))
			}
		}
		if got, ok := ScanValues(pred, values, nulls, nil); !ok {
			t.Fatalf("ScanValues refused int predicate %v", op)
		} else {
			if got == nil {
				got = []types.ChunkOffset{}
			}
			if !equalOffsets(got, want) {
				t.Fatalf("ScanValues: op=%v: got %v, want %v", op, clip(got), clip(want))
			}
		}
	})
}
