package encoding

import (
	"sort"

	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// RunLengthSegment stores consecutive equal values as (value, end offset)
// runs. NULL runs are flagged separately. Positional access binary-searches
// the run ends, so random access is O(log runs) — the paper's Figure 3a
// shows this is the one encoding where positional access can lose against
// full decoding for large position lists.
type RunLengthSegment[T types.Ordered] struct {
	values []T
	ends   []types.ChunkOffset // inclusive end offset of each run
	nulls  []bool              // nil when no NULLs exist
	n      int
}

// EncodeRunLength builds a run-length segment. nulls may be nil.
func EncodeRunLength[T types.Ordered](values []T, nulls []bool) *RunLengthSegment[T] {
	s := &RunLengthSegment[T]{n: len(values)}
	if len(values) == 0 {
		return s
	}
	var anyNull bool
	var runNulls []bool
	start := 0
	isNull := func(i int) bool { return nulls != nil && nulls[i] }
	for i := 1; i <= len(values); i++ {
		if i < len(values) && values[i] == values[start] && isNull(i) == isNull(start) {
			continue
		}
		s.values = append(s.values, values[start])
		s.ends = append(s.ends, types.ChunkOffset(i-1))
		runNulls = append(runNulls, isNull(start))
		if isNull(start) {
			anyNull = true
		}
		start = i
	}
	if anyNull {
		s.nulls = runNulls
	}
	return s
}

// RunCount returns the number of runs.
func (s *RunLengthSegment[T]) RunCount() int { return len(s.values) }

// runIndex locates the run containing offset i.
func (s *RunLengthSegment[T]) runIndex(i types.ChunkOffset) int {
	return sort.Search(len(s.ends), func(r int) bool { return s.ends[r] >= i })
}

// Get returns the value and null flag at offset i.
func (s *RunLengthSegment[T]) Get(i types.ChunkOffset) (T, bool) {
	r := s.runIndex(i)
	if s.nulls != nil && s.nulls[r] {
		var z T
		return z, true
	}
	return s.values[r], false
}

// DecodeAll materializes all values and null flags.
func (s *RunLengthSegment[T]) DecodeAll() ([]T, []bool) {
	out := make([]T, s.n)
	var nulls []bool
	if s.nulls != nil {
		nulls = make([]bool, s.n)
	}
	pos := 0
	for r, v := range s.values {
		end := int(s.ends[r])
		for ; pos <= end; pos++ {
			out[pos] = v
			if nulls != nil {
				nulls[pos] = s.nulls[r]
			}
		}
	}
	return out, nulls
}

// ForEachRun visits every run as (firstOffset, lastOffset, value, isNull).
// Scans use this to evaluate the predicate once per run.
func (s *RunLengthSegment[T]) ForEachRun(f func(first, last types.ChunkOffset, v T, null bool)) {
	var first types.ChunkOffset
	for r, v := range s.values {
		null := s.nulls != nil && s.nulls[r]
		f(first, s.ends[r], v, null)
		first = s.ends[r] + 1
	}
}

// DataType implements storage.Segment.
func (s *RunLengthSegment[T]) DataType() types.DataType { return types.Native[T]() }

// Len implements storage.Segment.
func (s *RunLengthSegment[T]) Len() int { return s.n }

// ValueAt implements storage.Segment (dynamic path).
func (s *RunLengthSegment[T]) ValueAt(i types.ChunkOffset) types.Value {
	v, null := s.Get(i)
	if null {
		return types.NullValue
	}
	return types.FromNative(v)
}

// IsNullAt implements storage.Segment.
func (s *RunLengthSegment[T]) IsNullAt(i types.ChunkOffset) bool {
	if s.nulls == nil {
		return false
	}
	return s.nulls[s.runIndex(i)]
}

// MemoryUsage implements storage.Segment.
func (s *RunLengthSegment[T]) MemoryUsage() int64 {
	var valBytes int64
	var z T
	switch any(z).(type) {
	case int64, float64:
		valBytes = 8 * int64(len(s.values))
	case string:
		valBytes = 16 * int64(len(s.values))
		for _, v := range s.values {
			valBytes += int64(len(any(v).(string)))
		}
	}
	valBytes += 4 * int64(len(s.ends))
	if s.nulls != nil {
		valBytes += int64(len(s.nulls))
	}
	return valBytes
}

var _ storage.Segment = (*RunLengthSegment[int64])(nil)
