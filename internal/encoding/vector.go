// Package encoding implements Hyrise's segment encoding framework
// (paper §2.3). Logical schemes (order-preserving dictionary, run-length,
// frame-of-reference) map input data to small integer codes; physical
// schemes (fixed-size byte alignment and a 128-value block bit-packer
// modeled on SIMD-BP128) compress those integer codes further. Logical and
// physical schemes compose freely.
//
// Access paths: every encoded segment implements storage.Segment (the
// dynamic, virtual-call-per-value path) and additionally exposes typed
// accessors whose Get methods devirtualize when instantiated through Go
// generics (the static path — the Go analog of the paper's CRTP-based
// iterables). Figure 3b measures exactly this difference.
package encoding

import (
	"math/bits"
)

// VectorCompressionType selects the physical encoding of an unsigned
// integer vector (attribute vectors, offset vectors).
type VectorCompressionType uint8

const (
	// FixedSizeByteAligned stores each code in the smallest byte-aligned
	// integer (1, 2, 4, or 8 bytes) that fits the largest code.
	FixedSizeByteAligned VectorCompressionType = iota
	// BitPacked128 packs codes in blocks of 128 values with a per-block bit
	// width (the scalar equivalent of SIMD-BP128, cf. DESIGN.md S2).
	BitPacked128
)

// String names the compression scheme like the paper does.
func (v VectorCompressionType) String() string {
	switch v {
	case FixedSizeByteAligned:
		return "FSBA"
	case BitPacked128:
		return "SIMD-BP128"
	default:
		return "?"
	}
}

// UintVector is a compressed vector of unsigned integer codes. Get is the
// dynamic access path; the concrete types below additionally provide
// monomorphic access for generic callers.
type UintVector interface {
	Get(i int) uint64
	Len() int
	MemoryUsage() int64
	// DecodeAll appends all codes to dst and returns it (full
	// materialization path of Figure 3a).
	DecodeAll(dst []uint64) []uint64
}

// CompressUints encodes the codes with the chosen scheme.
func CompressUints(codes []uint64, t VectorCompressionType) UintVector {
	switch t {
	case BitPacked128:
		return NewBP128Vector(codes)
	default:
		return NewFixedWidthVector(codes)
	}
}

// --- Fixed-size byte-aligned vectors -----------------------------------

// FixedWidthVector stores codes in W-sized slots. W is one of uint8,
// uint16, uint32, uint64; the constructor picks the smallest fitting width.
type FixedWidthVector[W uint8 | uint16 | uint32 | uint64] struct {
	data []W
}

// NewFixedWidthVector picks the smallest byte-aligned width that fits the
// largest code and packs the codes.
func NewFixedWidthVector(codes []uint64) UintVector {
	var maxCode uint64
	for _, c := range codes {
		if c > maxCode {
			maxCode = c
		}
	}
	switch {
	case maxCode <= 0xFF:
		return newFixedWidth[uint8](codes)
	case maxCode <= 0xFFFF:
		return newFixedWidth[uint16](codes)
	case maxCode <= 0xFFFFFFFF:
		return newFixedWidth[uint32](codes)
	default:
		return newFixedWidth[uint64](codes)
	}
}

func newFixedWidth[W uint8 | uint16 | uint32 | uint64](codes []uint64) *FixedWidthVector[W] {
	data := make([]W, len(codes))
	for i, c := range codes {
		data[i] = W(c)
	}
	return &FixedWidthVector[W]{data: data}
}

// Get implements UintVector.
func (v *FixedWidthVector[W]) Get(i int) uint64 { return uint64(v.data[i]) }

// GetFast is the statically dispatched accessor used by generic code.
func (v *FixedWidthVector[W]) GetFast(i int) uint64 { return uint64(v.data[i]) }

// Len implements UintVector.
func (v *FixedWidthVector[W]) Len() int { return len(v.data) }

// MemoryUsage implements UintVector.
func (v *FixedWidthVector[W]) MemoryUsage() int64 {
	var z W
	return int64(cap(v.data)) * int64(sizeofW(z))
}

func sizeofW(z any) int {
	switch z.(type) {
	case uint8:
		return 1
	case uint16:
		return 2
	case uint32:
		return 4
	default:
		return 8
	}
}

// DecodeAll implements UintVector.
func (v *FixedWidthVector[W]) DecodeAll(dst []uint64) []uint64 {
	for _, c := range v.data {
		dst = append(dst, uint64(c))
	}
	return dst
}

// --- BP128: blocks of 128 values, per-block bit width -------------------

// bp128BlockSize is the number of codes per block (matches SIMD-BP128).
const bp128BlockSize = 128

// BP128Vector packs codes in blocks of 128 values. Each block stores its
// codes with the minimal bit width needed for that block, so locally small
// codes compress well even if the global maximum is large. Random access
// costs one bit-extraction; DecodeAll unpacks block-wise.
type BP128Vector struct {
	words      []uint64 // packed payload
	blockBits  []uint8  // bit width per block
	blockStart []uint32 // starting word of each block
	n          int
}

// NewBP128Vector packs the codes.
func NewBP128Vector(codes []uint64) *BP128Vector {
	nBlocks := (len(codes) + bp128BlockSize - 1) / bp128BlockSize
	v := &BP128Vector{
		blockBits:  make([]uint8, nBlocks),
		blockStart: make([]uint32, nBlocks),
		n:          len(codes),
	}
	for b := 0; b < nBlocks; b++ {
		lo := b * bp128BlockSize
		hi := min(lo+bp128BlockSize, len(codes))
		var maxCode uint64
		for _, c := range codes[lo:hi] {
			if c > maxCode {
				maxCode = c
			}
		}
		width := uint8(bits.Len64(maxCode))
		if width == 0 {
			width = 1 // avoid zero-width blocks; one bit per value
		}
		v.blockBits[b] = width
		v.blockStart[b] = uint32(len(v.words))
		// Pack the block.
		nWords := (int(width)*(hi-lo) + 63) / 64
		start := len(v.words)
		v.words = append(v.words, make([]uint64, nWords)...)
		bitPos := 0
		for _, c := range codes[lo:hi] {
			word := start + bitPos/64
			shift := uint(bitPos % 64)
			v.words[word] |= c << shift
			if rem := 64 - int(shift); rem < int(width) {
				v.words[word+1] |= c >> uint(rem)
			}
			bitPos += int(width)
		}
	}
	return v
}

// Get implements UintVector (random positional access).
func (v *BP128Vector) Get(i int) uint64 { return v.GetFast(i) }

// GetFast is the statically dispatched accessor used by generic code.
func (v *BP128Vector) GetFast(i int) uint64 {
	b := i / bp128BlockSize
	width := uint(v.blockBits[b])
	bitPos := uint(i%bp128BlockSize) * width
	word := int(v.blockStart[b]) + int(bitPos/64)
	shift := bitPos % 64
	val := v.words[word] >> shift
	if rem := 64 - shift; rem < width {
		val |= v.words[word+1] << rem
	}
	return val & mask(width)
}

func mask(width uint) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (1 << width) - 1
}

// Len implements UintVector.
func (v *BP128Vector) Len() int { return v.n }

// MemoryUsage implements UintVector.
func (v *BP128Vector) MemoryUsage() int64 {
	return int64(cap(v.words))*8 + int64(cap(v.blockBits)) + int64(cap(v.blockStart))*4
}

// DecodeRange appends the codes at positions [lo, hi) to dst, unpacking
// block-wise with the width and block bounds hoisted out of the inner loop.
// Scans use it to process one block at a time through a reusable buffer
// instead of paying the full GetFast dispatch per element.
func (v *BP128Vector) DecodeRange(lo, hi int, dst []uint64) []uint64 {
	if lo < 0 {
		lo = 0
	}
	if hi > v.n {
		hi = v.n
	}
	for i := lo; i < hi; {
		b := i / bp128BlockSize
		blockEnd := min((b+1)*bp128BlockSize, hi)
		width := uint(v.blockBits[b])
		m := mask(width)
		start := int(v.blockStart[b])
		bitPos := uint(i%bp128BlockSize) * width
		for ; i < blockEnd; i++ {
			word := start + int(bitPos/64)
			shift := bitPos % 64
			val := v.words[word] >> shift
			if rem := 64 - shift; rem < width {
				val |= v.words[word+1] << rem
			}
			dst = append(dst, val&m)
			bitPos += width
		}
	}
	return dst
}

// DecodeAll implements UintVector; unpacking proceeds block-wise with the
// width hoisted out of the inner loop.
func (v *BP128Vector) DecodeAll(dst []uint64) []uint64 {
	for b := 0; b < len(v.blockBits); b++ {
		lo := b * bp128BlockSize
		hi := min(lo+bp128BlockSize, v.n)
		width := uint(v.blockBits[b])
		m := mask(width)
		start := int(v.blockStart[b])
		bitPos := uint(0)
		for i := lo; i < hi; i++ {
			word := start + int(bitPos/64)
			shift := bitPos % 64
			val := v.words[word] >> shift
			if rem := 64 - shift; rem < width {
				val |= v.words[word+1] << rem
			}
			dst = append(dst, val&m)
			bitPos += width
		}
	}
	return dst
}
