package encoding

import (
	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// SegmentAggregates holds the aggregate building blocks one encoded segment
// can answer without materialization. SumFloat is accumulated in ascending
// row order so results are bit-for-bit identical to the row-at-a-time
// reference path (float addition is not associative).
type SegmentAggregates struct {
	// Rows is the segment length, NonNull the number of non-null rows.
	Rows, NonNull int64
	// SumInt is the exact integer sum (int64 columns only).
	SumInt int64
	// SumFloat mirrors the reference path's float64 accumulation. Only
	// populated when requested (needFloatSum).
	SumFloat float64
	// Min/Max are the extreme non-null values (NullValue when none exist).
	Min, Max types.Value
}

// AggregateEncoded computes COUNT/SUM/MIN/MAX building blocks directly on an
// encoded segment. needSum requests the sums (numeric segments only);
// needFloatSum additionally requests the row-order float64 accumulation
// (needed for AVG and float outputs — skipping it lets integer COUNT/SUM run
// without touching float math). ok=false means the segment type is not
// supported and the caller must fall back to the materializing path.
//
// Cost: dictionary sums walk the attribute vector (integer codes only);
// run-length visits runs; frame-of-reference COUNT and MIN/MAX are
// O(blocks) via the per-block statistics, sums walk the codes.
func AggregateEncoded(seg storage.Segment, needSum, needFloatSum bool) (SegmentAggregates, bool) {
	switch s := seg.(type) {
	case *DictionarySegment[int64]:
		return aggregateDictInt(s, needSum, needFloatSum), true
	case *DictionarySegment[float64]:
		return aggregateDictFloat(s, needSum), true
	case *DictionarySegment[string]:
		if needSum {
			return SegmentAggregates{}, false
		}
		return aggregateDictCount(s), true
	case *RunLengthSegment[int64]:
		return aggregateRLEInt(s, needSum, needFloatSum), true
	case *RunLengthSegment[float64]:
		return aggregateRLEFloat(s, needSum), true
	case *RunLengthSegment[string]:
		if needSum {
			return SegmentAggregates{}, false
		}
		return aggregateRLECount(s), true
	case *FrameOfReferenceSegment:
		return aggregateFOR(s, needSum, needFloatSum), true
	default:
		return SegmentAggregates{}, false
	}
}

func aggregateDictInt(s *DictionarySegment[int64], needSum, needFloatSum bool) SegmentAggregates {
	out := SegmentAggregates{Rows: int64(s.Len()), Min: types.NullValue, Max: types.NullValue}
	nullID := uint64(s.nullID)
	n := s.av.Len()
	forEachCode(s.av, n, func(id uint64) {
		if id == nullID {
			return
		}
		out.NonNull++
		if needSum {
			v := s.dict[id]
			out.SumInt += v
			if needFloatSum {
				out.SumFloat += float64(v)
			}
		}
	})
	if mn, mx, ok := s.Bounds(); ok {
		out.Min, out.Max = mn, mx
	}
	return out
}

func aggregateDictFloat(s *DictionarySegment[float64], needSum bool) SegmentAggregates {
	out := SegmentAggregates{Rows: int64(s.Len()), Min: types.NullValue, Max: types.NullValue}
	nullID := uint64(s.nullID)
	forEachCode(s.av, s.av.Len(), func(id uint64) {
		if id == nullID {
			return
		}
		out.NonNull++
		if needSum {
			out.SumFloat += s.dict[id]
		}
	})
	if mn, mx, ok := s.Bounds(); ok {
		out.Min, out.Max = mn, mx
	}
	return out
}

func aggregateDictCount(s *DictionarySegment[string]) SegmentAggregates {
	out := SegmentAggregates{Rows: int64(s.Len()), Min: types.NullValue, Max: types.NullValue}
	nullID := uint64(s.nullID)
	forEachCode(s.av, s.av.Len(), func(id uint64) {
		if id != nullID {
			out.NonNull++
		}
	})
	if mn, mx, ok := s.Bounds(); ok {
		out.Min, out.Max = mn, mx
	}
	return out
}

// forEachCode visits all codes in row order, resolving the vector type once.
func forEachCode(av UintVector, n int, f func(code uint64)) {
	switch v := av.(type) {
	case *FixedWidthVector[uint8]:
		for _, c := range v.data {
			f(uint64(c))
		}
	case *FixedWidthVector[uint16]:
		for _, c := range v.data {
			f(uint64(c))
		}
	case *FixedWidthVector[uint32]:
		for _, c := range v.data {
			f(uint64(c))
		}
	case *FixedWidthVector[uint64]:
		for _, c := range v.data {
			f(c)
		}
	case *BP128Vector:
		var buf [bp128BlockSize]uint64
		for base := 0; base < n; base += bp128BlockSize {
			for _, c := range v.DecodeRange(base, min(base+bp128BlockSize, n), buf[:0]) {
				f(c)
			}
		}
	default:
		for i := 0; i < n; i++ {
			f(av.Get(i))
		}
	}
}

func aggregateRLEInt(s *RunLengthSegment[int64], needSum, needFloatSum bool) SegmentAggregates {
	out := SegmentAggregates{Rows: int64(s.n), Min: types.NullValue, Max: types.NullValue}
	s.ForEachRun(func(first, last types.ChunkOffset, v int64, null bool) {
		if null {
			return
		}
		runLen := int64(last-first) + 1
		out.NonNull += runLen
		if needSum {
			out.SumInt += v * runLen
			if needFloatSum {
				// Repeat the addition per row: float accumulation must match
				// the row-at-a-time reference bit for bit.
				fv := float64(v)
				for i := int64(0); i < runLen; i++ {
					out.SumFloat += fv
				}
			}
		}
	})
	if mn, mx, ok := s.Bounds(); ok {
		out.Min, out.Max = mn, mx
	}
	return out
}

func aggregateRLEFloat(s *RunLengthSegment[float64], needSum bool) SegmentAggregates {
	out := SegmentAggregates{Rows: int64(s.n), Min: types.NullValue, Max: types.NullValue}
	s.ForEachRun(func(first, last types.ChunkOffset, v float64, null bool) {
		if null {
			return
		}
		runLen := int64(last-first) + 1
		out.NonNull += runLen
		if needSum {
			for i := int64(0); i < runLen; i++ {
				out.SumFloat += v
			}
		}
	})
	if mn, mx, ok := s.Bounds(); ok {
		out.Min, out.Max = mn, mx
	}
	return out
}

func aggregateRLECount(s *RunLengthSegment[string]) SegmentAggregates {
	out := SegmentAggregates{Rows: int64(s.n), Min: types.NullValue, Max: types.NullValue}
	s.ForEachRun(func(first, last types.ChunkOffset, _ string, null bool) {
		if !null {
			out.NonNull += int64(last-first) + 1
		}
	})
	if mn, mx, ok := s.Bounds(); ok {
		out.Min, out.Max = mn, mx
	}
	return out
}

func aggregateFOR(s *FrameOfReferenceSegment, needSum, needFloatSum bool) SegmentAggregates {
	out := SegmentAggregates{Rows: int64(s.n), Min: types.NullValue, Max: types.NullValue}
	for _, c := range s.blockNonNull {
		out.NonNull += int64(c)
	}
	if mn, mx, ok := s.Bounds(); ok {
		out.Min, out.Max = mn, mx
	}
	if !needSum || out.NonNull == 0 {
		return out
	}
	switch ov := s.offsets.(type) {
	case *FixedWidthVector[uint8]:
		sumFORData(s, ov.data, needFloatSum, &out)
	case *FixedWidthVector[uint16]:
		sumFORData(s, ov.data, needFloatSum, &out)
	case *FixedWidthVector[uint32]:
		sumFORData(s, ov.data, needFloatSum, &out)
	case *FixedWidthVector[uint64]:
		sumFORData(s, ov.data, needFloatSum, &out)
	default:
		for i := 0; i < s.n; i++ {
			if s.nulls != nil && s.nulls[i] {
				continue
			}
			v := s.frames[i/forBlockSize] + int64(s.offsets.Get(i))
			out.SumInt += v
			if needFloatSum {
				out.SumFloat += float64(v)
			}
		}
	}
	return out
}

func sumFORData[W uint8 | uint16 | uint32 | uint64](s *FrameOfReferenceSegment, data []W, needFloatSum bool, out *SegmentAggregates) {
	for i, c := range data {
		if s.nulls != nil && s.nulls[i] {
			continue
		}
		v := s.frames[i/forBlockSize] + int64(uint64(c))
		out.SumInt += v
		if needFloatSum {
			out.SumFloat += float64(v)
		}
	}
}
