package encoding

import (
	"sort"

	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// ValueID is an index into a segment-local dictionary.
type ValueID uint64

// DictionarySegment stores an order-preserving, sorted, duplicate-free
// dictionary plus an attribute vector of value ids. NULL is encoded as the
// value id one past the dictionary (the "null value id"), so attribute
// vectors need no separate null bitmap.
//
// Because the dictionary is order-preserving, range predicates translate to
// value-id ranges via LowerBound/UpperBound, letting scans compare integer
// codes instead of decoded values (paper §2.3: "scans on dictionary-encoded
// columns should search for the integer value id, without having to
// decompress the data").
type DictionarySegment[T types.Ordered] struct {
	dict   []T
	av     UintVector
	nullID ValueID
}

// EncodeDictionary builds a dictionary segment from raw values. nulls may
// be nil.
func EncodeDictionary[T types.Ordered](values []T, nulls []bool, compression VectorCompressionType) *DictionarySegment[T] {
	// Collect distinct non-null values.
	distinct := make(map[T]struct{}, len(values)/4+1)
	for i, v := range values {
		if nulls != nil && nulls[i] {
			continue
		}
		distinct[v] = struct{}{}
	}
	dict := make([]T, 0, len(distinct))
	for v := range distinct {
		dict = append(dict, v)
	}
	sort.Slice(dict, func(i, j int) bool { return dict[i] < dict[j] })

	// Map values to ids.
	idOf := make(map[T]uint64, len(dict))
	for i, v := range dict {
		idOf[v] = uint64(i)
	}
	nullID := uint64(len(dict))
	codes := make([]uint64, len(values))
	for i, v := range values {
		if nulls != nil && nulls[i] {
			codes[i] = nullID
		} else {
			codes[i] = idOf[v]
		}
	}
	return &DictionarySegment[T]{
		dict:   dict,
		av:     CompressUints(codes, compression),
		nullID: ValueID(nullID),
	}
}

// Dictionary exposes the sorted dictionary (used by the group-key index).
func (s *DictionarySegment[T]) Dictionary() []T { return s.dict }

// AttributeVector exposes the compressed value-id vector.
func (s *DictionarySegment[T]) AttributeVector() UintVector { return s.av }

// NullValueID returns the id that encodes NULL.
func (s *DictionarySegment[T]) NullValueID() ValueID { return s.nullID }

// UniqueValueCount returns the dictionary size.
func (s *DictionarySegment[T]) UniqueValueCount() int { return len(s.dict) }

// LowerBound returns the first value id whose value is >= v.
func (s *DictionarySegment[T]) LowerBound(v T) ValueID {
	return ValueID(sort.Search(len(s.dict), func(i int) bool { return s.dict[i] >= v }))
}

// UpperBound returns the first value id whose value is > v.
func (s *DictionarySegment[T]) UpperBound(v T) ValueID {
	return ValueID(sort.Search(len(s.dict), func(i int) bool { return s.dict[i] > v }))
}

// ValueOfID decodes a value id; ok is false for the null id.
func (s *DictionarySegment[T]) ValueOfID(id ValueID) (T, bool) {
	if id >= ValueID(len(s.dict)) {
		var z T
		return z, false
	}
	return s.dict[id], true
}

// Get returns the value and null flag at offset i (static path through the
// interface-typed attribute vector; for fully devirtualized loops use
// DictAccessor).
func (s *DictionarySegment[T]) Get(i types.ChunkOffset) (T, bool) {
	id := s.av.Get(int(i))
	if ValueID(id) == s.nullID {
		var z T
		return z, true
	}
	return s.dict[id], false
}

// DecodeAll materializes all values and null flags (Figure 3a "full
// materialization" path). The returned nulls slice is nil if the segment
// contains no NULLs.
func (s *DictionarySegment[T]) DecodeAll() ([]T, []bool) {
	codes := s.av.DecodeAll(make([]uint64, 0, s.av.Len()))
	out := make([]T, len(codes))
	var nulls []bool
	for i, id := range codes {
		if ValueID(id) == s.nullID {
			if nulls == nil {
				nulls = make([]bool, len(codes))
			}
			nulls[i] = true
			continue
		}
		out[i] = s.dict[id]
	}
	return out, nulls
}

// DataType implements storage.Segment.
func (s *DictionarySegment[T]) DataType() types.DataType { return types.Native[T]() }

// Len implements storage.Segment.
func (s *DictionarySegment[T]) Len() int { return s.av.Len() }

// ValueAt implements storage.Segment (dynamic path).
func (s *DictionarySegment[T]) ValueAt(i types.ChunkOffset) types.Value {
	v, null := s.Get(i)
	if null {
		return types.NullValue
	}
	return types.FromNative(v)
}

// IsNullAt implements storage.Segment.
func (s *DictionarySegment[T]) IsNullAt(i types.ChunkOffset) bool {
	return ValueID(s.av.Get(int(i))) == s.nullID
}

// MemoryUsage implements storage.Segment.
func (s *DictionarySegment[T]) MemoryUsage() int64 {
	var dictBytes int64
	var z T
	switch any(z).(type) {
	case int64, float64:
		dictBytes = 8 * int64(len(s.dict))
	case string:
		dictBytes = 16 * int64(len(s.dict))
		for _, v := range s.dict {
			dictBytes += int64(len(any(v).(string)))
		}
	}
	return dictBytes + s.av.MemoryUsage()
}

var _ storage.Segment = (*DictionarySegment[int64])(nil)
