package encoding

import (
	"math"

	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// This file implements predicate evaluation directly on encoded
// representations (paper §2.3–§2.5): encoded segments are first-class
// execution targets, not just a storage format that operators decode on
// touch. Each encoding exposes ScanEncoded, which evaluates a simple
// predicate without materializing the segment:
//
//   - Dictionary: the predicate is translated once into a value-id range via
//     LowerBound/UpperBound on the sorted dictionary; the scan then compares
//     integer code points in the attribute vector.
//   - FrameOfReference: the predicate is rewritten into the offset domain per
//     2048-value block; blocks whose [frame, frame+blockMax] range cannot
//     intersect the predicate are skipped wholesale, blocks fully inside it
//     are accepted wholesale, and only straddling blocks compare codes.
//   - RunLength: the predicate is evaluated once per run, accepting or
//     rejecting entire runs.
//
// ScanEncoded reports ok=false for predicate/type combinations it does not
// support (e.g. non-integral float probes against an int64 domain); callers
// fall back to the materializing path, so the encoded paths never need to
// approximate — they are exact or absent.

// ScanOp enumerates the simple predicate forms the encoded scan paths
// understand.
type ScanOp uint8

const (
	// ScanEq is "column = Value".
	ScanEq ScanOp = iota
	// ScanNe is "column <> Value".
	ScanNe
	// ScanLt is "column < Value".
	ScanLt
	// ScanLe is "column <= Value".
	ScanLe
	// ScanGt is "column > Value".
	ScanGt
	// ScanGe is "column >= Value".
	ScanGe
	// ScanBetween is "column BETWEEN Lo AND Hi" (both ends inclusive).
	ScanBetween
	// ScanIsNull is "column IS NULL".
	ScanIsNull
	// ScanIsNotNull is "column IS NOT NULL".
	ScanIsNotNull
)

// String names the operator in SQL spelling.
func (op ScanOp) String() string {
	switch op {
	case ScanEq:
		return "="
	case ScanNe:
		return "<>"
	case ScanLt:
		return "<"
	case ScanLe:
		return "<="
	case ScanGt:
		return ">"
	case ScanGe:
		return ">="
	case ScanBetween:
		return "BETWEEN"
	case ScanIsNull:
		return "IS NULL"
	case ScanIsNotNull:
		return "IS NOT NULL"
	default:
		return "?"
	}
}

// IsPoint reports whether the predicate targets single values (equality and
// null checks) rather than a range — the workload dimension the encoding
// advisor uses to pick between dictionary and frame-of-reference.
func (op ScanOp) IsPoint() bool {
	switch op {
	case ScanEq, ScanNe, ScanIsNull, ScanIsNotNull:
		return true
	default:
		return false
	}
}

// ScanPredicate is a simple single-column predicate in a form the encoded
// scan paths can translate into their code domains. Value carries the probe
// for comparison operators; Lo/Hi carry the BETWEEN bounds.
type ScanPredicate struct {
	Op     ScanOp
	Value  types.Value
	Lo, Hi types.Value
}

// ScanPath identifies which encoded code path answered a scan — surfaced
// through the scan.encoded_* counters so workloads can see (and the advisor
// can act on) which representations their predicates hit.
type ScanPath uint8

const (
	// PathDictionary is the value-id comparison scan.
	PathDictionary ScanPath = iota
	// PathFrameOfReference is the offset-domain block scan.
	PathFrameOfReference
	// PathRunLength is the per-run scan.
	PathRunLength
)

// String names the path after its encoding.
func (p ScanPath) String() string {
	switch p {
	case PathDictionary:
		return "Dictionary"
	case PathFrameOfReference:
		return "FrameOfReference"
	case PathRunLength:
		return "RunLength"
	default:
		return "?"
	}
}

// ScannableSegment is implemented by encoded segments that can evaluate a
// simple predicate directly on their encoded representation. ScanEncoded
// appends the matching chunk offsets (ascending) to dst. ok=false means the
// predicate/encoding pair is unsupported and the caller must fall back to
// the materializing path; dst is returned unchanged in that case.
type ScannableSegment interface {
	storage.Segment
	ScanEncoded(p ScanPredicate, dst []types.ChunkOffset) (matches []types.ChunkOffset, path ScanPath, ok bool)
}

// BoundedSegment is implemented by segments that know their min/max without
// a full scan: O(1) for dictionary (sorted dictionary ends), O(blocks) for
// frame-of-reference, O(runs) for run-length. Used to build min-max pruning
// filters cheaply and to answer MIN/MAX aggregates without decoding.
type BoundedSegment interface {
	Bounds() (min, max types.Value, ok bool)
}

// --- predicate normalization -------------------------------------------

// scanRange is a predicate normalized to an optionally-bounded interval in
// the segment's native domain.
type scanRange[T types.Ordered] struct {
	hasLo, loInc bool
	lo           T
	hasHi, hiInc bool
	hi           T
}

// match evaluates the interval against one value.
func (r scanRange[T]) match(v T) bool {
	if r.hasLo && (v < r.lo || (!r.loInc && v == r.lo)) {
		return false
	}
	if r.hasHi && (v > r.hi || (!r.hiInc && v == r.hi)) {
		return false
	}
	return true
}

// probeAs converts a probe literal into the segment's native domain without
// changing comparison semantics. Integral float probes against an int64
// domain convert exactly; non-integral or unrepresentable floats report
// ok=false so the caller falls back (rewriting them with ceil/floor would
// diverge from the evaluator's float-comparison semantics in corner cases).
// String domains accept only string probes; float domains accept any
// numeric probe (the evaluator compares those as float64 too).
func probeAs[T types.Ordered](v types.Value) (T, bool) {
	var z T
	switch any(z).(type) {
	case int64:
		switch v.Type {
		case types.TypeInt64:
			return any(v.I).(T), true
		case types.TypeFloat64:
			if v.F == float64(int64(v.F)) {
				return any(int64(v.F)).(T), true
			}
		}
	case float64:
		if v.Type.IsNumeric() {
			return any(v.AsFloat()).(T), true
		}
	case string:
		if v.Type == types.TypeString {
			return any(v.S).(T), true
		}
	}
	return z, false
}

// scanBounds normalizes a comparison/BETWEEN predicate into either an
// interval or a not-equal probe in the native domain. ok=false means the
// predicate cannot be represented exactly (type mismatch, null literal,
// null-check operators) and the caller must fall back.
func scanBounds[T types.Ordered](p ScanPredicate) (rng scanRange[T], ne T, isNe bool, ok bool) {
	switch p.Op {
	case ScanEq:
		v, vok := probeAs[T](p.Value)
		if !vok {
			return rng, ne, false, false
		}
		return scanRange[T]{hasLo: true, loInc: true, lo: v, hasHi: true, hiInc: true, hi: v}, ne, false, true
	case ScanNe:
		v, vok := probeAs[T](p.Value)
		if !vok {
			return rng, ne, false, false
		}
		return rng, v, true, true
	case ScanLt:
		v, vok := probeAs[T](p.Value)
		if !vok {
			return rng, ne, false, false
		}
		return scanRange[T]{hasHi: true, hi: v}, ne, false, true
	case ScanLe:
		v, vok := probeAs[T](p.Value)
		if !vok {
			return rng, ne, false, false
		}
		return scanRange[T]{hasHi: true, hiInc: true, hi: v}, ne, false, true
	case ScanGt:
		v, vok := probeAs[T](p.Value)
		if !vok {
			return rng, ne, false, false
		}
		return scanRange[T]{hasLo: true, lo: v}, ne, false, true
	case ScanGe:
		v, vok := probeAs[T](p.Value)
		if !vok {
			return rng, ne, false, false
		}
		return scanRange[T]{hasLo: true, loInc: true, lo: v}, ne, false, true
	case ScanBetween:
		lo, lok := probeAs[T](p.Lo)
		hi, hok := probeAs[T](p.Hi)
		if !lok || !hok {
			return rng, ne, false, false
		}
		return scanRange[T]{hasLo: true, loInc: true, lo: lo, hasHi: true, hiInc: true, hi: hi}, ne, false, true
	default:
		return rng, ne, false, false
	}
}

// ScanValues evaluates a predicate over materialized values — the
// monomorphic compare loop for unencoded segments (nothing to decode, but
// still specialized per type and operator). ok=false when the probe cannot
// be converted into T's domain exactly.
func ScanValues[T types.Ordered](p ScanPredicate, vals []T, nulls []bool, dst []types.ChunkOffset) ([]types.ChunkOffset, bool) {
	switch p.Op {
	case ScanIsNull:
		if nulls != nil {
			for i, null := range nulls {
				if null {
					dst = append(dst, types.ChunkOffset(i))
				}
			}
		}
		return dst, true
	case ScanIsNotNull:
		for i := range vals {
			if nulls == nil || !nulls[i] {
				dst = append(dst, types.ChunkOffset(i))
			}
		}
		return dst, true
	}
	rng, ne, isNe, ok := scanBounds[T](p)
	if !ok {
		return dst, false
	}
	if isNe {
		for i, v := range vals {
			if (nulls == nil || !nulls[i]) && v != ne {
				dst = append(dst, types.ChunkOffset(i))
			}
		}
		return dst, true
	}
	// Dedicated loops for the interval shapes scanBounds produces, so the
	// common operators compare once or twice per element.
	switch {
	case rng.hasLo && rng.hasHi && rng.loInc && rng.hiInc:
		for i, v := range vals {
			if (nulls == nil || !nulls[i]) && v >= rng.lo && v <= rng.hi {
				dst = append(dst, types.ChunkOffset(i))
			}
		}
	case rng.hasLo && !rng.hasHi && rng.loInc:
		for i, v := range vals {
			if (nulls == nil || !nulls[i]) && v >= rng.lo {
				dst = append(dst, types.ChunkOffset(i))
			}
		}
	case rng.hasLo && !rng.hasHi:
		for i, v := range vals {
			if (nulls == nil || !nulls[i]) && v > rng.lo {
				dst = append(dst, types.ChunkOffset(i))
			}
		}
	case rng.hasHi && !rng.hasLo && rng.hiInc:
		for i, v := range vals {
			if (nulls == nil || !nulls[i]) && v <= rng.hi {
				dst = append(dst, types.ChunkOffset(i))
			}
		}
	case rng.hasHi && !rng.hasLo:
		for i, v := range vals {
			if (nulls == nil || !nulls[i]) && v < rng.hi {
				dst = append(dst, types.ChunkOffset(i))
			}
		}
	default:
		for i, v := range vals {
			if (nulls == nil || !nulls[i]) && rng.match(v) {
				dst = append(dst, types.ChunkOffset(i))
			}
		}
	}
	return dst, true
}

// --- dictionary ---------------------------------------------------------

// ScanEncoded implements ScannableSegment. The predicate is translated once
// into a value-id range by binary search on the sorted dictionary; the scan
// then runs entirely over integer codes. NULL is the id one past the
// dictionary, so "all non-null" is the contiguous range [0, nullID).
func (s *DictionarySegment[T]) ScanEncoded(p ScanPredicate, dst []types.ChunkOffset) ([]types.ChunkOffset, ScanPath, bool) {
	switch p.Op {
	case ScanIsNull:
		return s.Matches(s.nullID, s.nullID+1, dst), PathDictionary, true
	case ScanIsNotNull:
		return s.Matches(0, s.nullID, dst), PathDictionary, true
	}
	rng, ne, isNe, ok := scanBounds[T](p)
	if !ok {
		return dst, PathDictionary, false
	}
	if isNe {
		return s.matchesOutside(s.LowerBound(ne), s.UpperBound(ne), dst), PathDictionary, true
	}
	start := ValueID(0)
	end := s.nullID // == len(dict): excludes NULLs by construction
	if rng.hasLo {
		if rng.loInc {
			start = s.LowerBound(rng.lo)
		} else {
			start = s.UpperBound(rng.lo)
		}
	}
	if rng.hasHi {
		if rng.hiInc {
			end = s.UpperBound(rng.hi)
		} else {
			end = s.LowerBound(rng.hi)
		}
	}
	return s.Matches(start, end, dst), PathDictionary, true
}

// matchesOutside appends the offsets whose value id is outside [lo, hi) and
// not the null id — the single-pass "<>" scan (position order preserved, no
// sort needed).
func (s *DictionarySegment[T]) matchesOutside(lo, hi ValueID, dst []types.ChunkOffset) []types.ChunkOffset {
	switch av := s.av.(type) {
	case *FixedWidthVector[uint8]:
		return matchOutside(av.data, uint64(lo), uint64(hi), uint64(s.nullID), dst)
	case *FixedWidthVector[uint16]:
		return matchOutside(av.data, uint64(lo), uint64(hi), uint64(s.nullID), dst)
	case *FixedWidthVector[uint32]:
		return matchOutside(av.data, uint64(lo), uint64(hi), uint64(s.nullID), dst)
	case *FixedWidthVector[uint64]:
		return matchOutside(av.data, uint64(lo), uint64(hi), uint64(s.nullID), dst)
	case *BP128Vector:
		var buf [bp128BlockSize]uint64
		n := av.Len()
		for base := 0; base < n; base += bp128BlockSize {
			codes := av.DecodeRange(base, min(base+bp128BlockSize, n), buf[:0])
			for j, id := range codes {
				if (id < uint64(lo) || id >= uint64(hi)) && id != uint64(s.nullID) {
					dst = append(dst, types.ChunkOffset(base+j))
				}
			}
		}
		return dst
	default:
		n := s.av.Len()
		for i := 0; i < n; i++ {
			id := s.av.Get(i)
			if (id < uint64(lo) || id >= uint64(hi)) && id != uint64(s.nullID) {
				dst = append(dst, types.ChunkOffset(i))
			}
		}
		return dst
	}
}

func matchOutside[W uint8 | uint16 | uint32 | uint64](data []W, lo, hi, nullID uint64, dst []types.ChunkOffset) []types.ChunkOffset {
	for i, raw := range data {
		id := uint64(raw)
		if (id < lo || id >= hi) && id != nullID {
			dst = append(dst, types.ChunkOffset(i))
		}
	}
	return dst
}

// Bounds implements BoundedSegment: the dictionary is sorted and holds
// exactly the present non-null values, so min/max are its ends.
func (s *DictionarySegment[T]) Bounds() (types.Value, types.Value, bool) {
	if len(s.dict) == 0 {
		return types.NullValue, types.NullValue, false
	}
	return types.FromNative(s.dict[0]), types.FromNative(s.dict[len(s.dict)-1]), true
}

// --- frame of reference -------------------------------------------------

// ScanEncoded implements ScannableSegment. The predicate is rewritten into
// the unsigned offset domain per block: a block whose value range
// [frame, frame+blockMax] lies outside the predicate is skipped without
// touching its codes; a block fully inside it emits all its non-null rows;
// only straddling blocks compare individual codes.
func (s *FrameOfReferenceSegment) ScanEncoded(p ScanPredicate, dst []types.ChunkOffset) ([]types.ChunkOffset, ScanPath, bool) {
	switch p.Op {
	case ScanIsNull:
		if s.nulls != nil {
			for i, null := range s.nulls {
				if null {
					dst = append(dst, types.ChunkOffset(i))
				}
			}
		}
		return dst, PathFrameOfReference, true
	case ScanIsNotNull:
		if s.nulls == nil {
			for i := 0; i < s.n; i++ {
				dst = append(dst, types.ChunkOffset(i))
			}
		} else {
			for i, null := range s.nulls {
				if !null {
					dst = append(dst, types.ChunkOffset(i))
				}
			}
		}
		return dst, PathFrameOfReference, true
	}
	rng, ne, isNe, ok := scanBounds[int64](p)
	if !ok {
		return dst, PathFrameOfReference, false
	}
	if isNe {
		return s.scanNotEqual(ne, dst), PathFrameOfReference, true
	}
	// Canonicalize to a closed interval [lo, hi]; an exclusive bound at the
	// int64 extreme means the interval is empty.
	lo := int64(math.MinInt64)
	if rng.hasLo {
		lo = rng.lo
		if !rng.loInc {
			if lo == math.MaxInt64 {
				return dst, PathFrameOfReference, true
			}
			lo++
		}
	}
	hi := int64(math.MaxInt64)
	if rng.hasHi {
		hi = rng.hi
		if !rng.hiInc {
			if hi == math.MinInt64 {
				return dst, PathFrameOfReference, true
			}
			hi--
		}
	}
	if lo > hi {
		return dst, PathFrameOfReference, true
	}
	return s.scanInterval(lo, hi, dst), PathFrameOfReference, true
}

// scanInterval emits the offsets of non-null rows with value in the closed
// interval [lo, hi], block by block.
func (s *FrameOfReferenceSegment) scanInterval(lo, hi int64, dst []types.ChunkOffset) []types.ChunkOffset {
	for b := range s.frames {
		if s.blockNonNull[b] == 0 {
			continue
		}
		frame := s.frames[b]
		bmax := s.blockMax[b]
		// frame+int64(bmax) wraps in two's complement back to the true block
		// maximum, which is an actual value and therefore fits int64.
		blockTop := frame + int64(bmax)
		if hi < frame || lo > blockTop {
			continue // block range disjoint from the predicate
		}
		first := b * forBlockSize
		last := min(first+forBlockSize, s.n)
		// Rewrite the interval into the offset domain. The subtractions are
		// exact mod 2^64 and both differences lie in [0, 2^64), so the uint64
		// results are the mathematical values.
		loCode := uint64(0)
		if lo > frame {
			loCode = uint64(lo) - uint64(frame)
		}
		hiCode := bmax
		if hi < blockTop {
			hiCode = uint64(hi) - uint64(frame)
		}
		if loCode == 0 && hiCode >= bmax {
			// Whole block inside the predicate: emit without reading codes.
			if s.nulls == nil {
				for i := first; i < last; i++ {
					dst = append(dst, types.ChunkOffset(i))
				}
			} else {
				for i := first; i < last; i++ {
					if !s.nulls[i] {
						dst = append(dst, types.ChunkOffset(i))
					}
				}
			}
			continue
		}
		dst = scanFORBlock(s, first, last, loCode, hiCode, dst)
	}
	return dst
}

// scanFORBlock compares the codes of rows [first, last) against the
// offset-domain interval [loCode, hiCode], resolving the vector type once.
// NULL rows store code 0 and must be excluded explicitly.
func scanFORBlock(s *FrameOfReferenceSegment, first, last int, loCode, hiCode uint64, dst []types.ChunkOffset) []types.ChunkOffset {
	switch ov := s.offsets.(type) {
	case *FixedWidthVector[uint8]:
		return scanFORBlockData(ov.data, s.nulls, first, last, loCode, hiCode, dst)
	case *FixedWidthVector[uint16]:
		return scanFORBlockData(ov.data, s.nulls, first, last, loCode, hiCode, dst)
	case *FixedWidthVector[uint32]:
		return scanFORBlockData(ov.data, s.nulls, first, last, loCode, hiCode, dst)
	case *FixedWidthVector[uint64]:
		return scanFORBlockData(ov.data, s.nulls, first, last, loCode, hiCode, dst)
	case *BP128Vector:
		var buf [bp128BlockSize]uint64
		for base := first; base < last; base += bp128BlockSize {
			end := min(base+bp128BlockSize, last)
			codes := ov.DecodeRange(base, end, buf[:0])
			for j, c := range codes {
				if s.nulls != nil && s.nulls[base+j] {
					continue
				}
				if loCode <= c && c <= hiCode {
					dst = append(dst, types.ChunkOffset(base+j))
				}
			}
		}
		return dst
	default:
		for i := first; i < last; i++ {
			if s.nulls != nil && s.nulls[i] {
				continue
			}
			if c := s.offsets.Get(i); loCode <= c && c <= hiCode {
				dst = append(dst, types.ChunkOffset(i))
			}
		}
		return dst
	}
}

func scanFORBlockData[W uint8 | uint16 | uint32 | uint64](data []W, nulls []bool, first, last int, loCode, hiCode uint64, dst []types.ChunkOffset) []types.ChunkOffset {
	if nulls == nil {
		for i := first; i < last; i++ {
			if c := uint64(data[i]); loCode <= c && c <= hiCode {
				dst = append(dst, types.ChunkOffset(i))
			}
		}
		return dst
	}
	for i := first; i < last; i++ {
		if nulls[i] {
			continue
		}
		if c := uint64(data[i]); loCode <= c && c <= hiCode {
			dst = append(dst, types.ChunkOffset(i))
		}
	}
	return dst
}

// scanNotEqual emits non-null rows whose value differs from v. Blocks whose
// range excludes v emit all their non-null rows without reading codes.
func (s *FrameOfReferenceSegment) scanNotEqual(v int64, dst []types.ChunkOffset) []types.ChunkOffset {
	for b := range s.frames {
		if s.blockNonNull[b] == 0 {
			continue
		}
		frame := s.frames[b]
		blockTop := frame + int64(s.blockMax[b])
		first := b * forBlockSize
		last := min(first+forBlockSize, s.n)
		if v < frame || v > blockTop {
			// v cannot occur in this block: every non-null row matches.
			if s.nulls == nil {
				for i := first; i < last; i++ {
					dst = append(dst, types.ChunkOffset(i))
				}
			} else {
				for i := first; i < last; i++ {
					if !s.nulls[i] {
						dst = append(dst, types.ChunkOffset(i))
					}
				}
			}
			continue
		}
		target := uint64(v) - uint64(frame)
		dst = scanFORBlockNe(s, first, last, target, dst)
	}
	return dst
}

func scanFORBlockNe(s *FrameOfReferenceSegment, first, last int, target uint64, dst []types.ChunkOffset) []types.ChunkOffset {
	switch ov := s.offsets.(type) {
	case *FixedWidthVector[uint8]:
		return scanFORBlockNeData(ov.data, s.nulls, first, last, target, dst)
	case *FixedWidthVector[uint16]:
		return scanFORBlockNeData(ov.data, s.nulls, first, last, target, dst)
	case *FixedWidthVector[uint32]:
		return scanFORBlockNeData(ov.data, s.nulls, first, last, target, dst)
	case *FixedWidthVector[uint64]:
		return scanFORBlockNeData(ov.data, s.nulls, first, last, target, dst)
	case *BP128Vector:
		var buf [bp128BlockSize]uint64
		for base := first; base < last; base += bp128BlockSize {
			end := min(base+bp128BlockSize, last)
			codes := ov.DecodeRange(base, end, buf[:0])
			for j, c := range codes {
				if s.nulls != nil && s.nulls[base+j] {
					continue
				}
				if c != target {
					dst = append(dst, types.ChunkOffset(base+j))
				}
			}
		}
		return dst
	default:
		for i := first; i < last; i++ {
			if s.nulls != nil && s.nulls[i] {
				continue
			}
			if s.offsets.Get(i) != target {
				dst = append(dst, types.ChunkOffset(i))
			}
		}
		return dst
	}
}

func scanFORBlockNeData[W uint8 | uint16 | uint32 | uint64](data []W, nulls []bool, first, last int, target uint64, dst []types.ChunkOffset) []types.ChunkOffset {
	if nulls == nil {
		for i := first; i < last; i++ {
			if uint64(data[i]) != target {
				dst = append(dst, types.ChunkOffset(i))
			}
		}
		return dst
	}
	for i := first; i < last; i++ {
		if nulls[i] {
			continue
		}
		if uint64(data[i]) != target {
			dst = append(dst, types.ChunkOffset(i))
		}
	}
	return dst
}

// Bounds implements BoundedSegment in O(blocks): every block with a non-null
// row has its minimum as the frame (by construction) and its maximum at
// frame+blockMax.
func (s *FrameOfReferenceSegment) Bounds() (types.Value, types.Value, bool) {
	var lo, hi int64
	found := false
	for b := range s.frames {
		if s.blockNonNull[b] == 0 {
			continue
		}
		bLo := s.frames[b]
		bHi := bLo + int64(s.blockMax[b])
		if !found || bLo < lo {
			lo = bLo
		}
		if !found || bHi > hi {
			hi = bHi
		}
		found = true
	}
	if !found {
		return types.NullValue, types.NullValue, false
	}
	return types.Int(lo), types.Int(hi), true
}

// --- run length ---------------------------------------------------------

// ScanEncoded implements ScannableSegment: the predicate is evaluated once
// per run and entire runs are accepted or rejected.
func (s *RunLengthSegment[T]) ScanEncoded(p ScanPredicate, dst []types.ChunkOffset) ([]types.ChunkOffset, ScanPath, bool) {
	switch p.Op {
	case ScanIsNull:
		s.ForEachRun(func(first, last types.ChunkOffset, _ T, null bool) {
			if null {
				dst = appendRun(dst, first, last)
			}
		})
		return dst, PathRunLength, true
	case ScanIsNotNull:
		s.ForEachRun(func(first, last types.ChunkOffset, _ T, null bool) {
			if !null {
				dst = appendRun(dst, first, last)
			}
		})
		return dst, PathRunLength, true
	}
	rng, ne, isNe, ok := scanBounds[T](p)
	if !ok {
		return dst, PathRunLength, false
	}
	s.ForEachRun(func(first, last types.ChunkOffset, v T, null bool) {
		if null {
			return
		}
		if isNe {
			if v != ne {
				dst = appendRun(dst, first, last)
			}
			return
		}
		if rng.match(v) {
			dst = appendRun(dst, first, last)
		}
	})
	return dst, PathRunLength, true
}

func appendRun(dst []types.ChunkOffset, first, last types.ChunkOffset) []types.ChunkOffset {
	for i := first; i <= last; i++ {
		dst = append(dst, i)
	}
	return dst
}

// Bounds implements BoundedSegment in O(runs).
func (s *RunLengthSegment[T]) Bounds() (types.Value, types.Value, bool) {
	var lo, hi T
	found := false
	for r, v := range s.values {
		if s.nulls != nil && s.nulls[r] {
			continue
		}
		if !found || v < lo {
			lo = v
		}
		if !found || v > hi {
			hi = v
		}
		found = true
	}
	if !found {
		return types.NullValue, types.NullValue, false
	}
	return types.FromNative(lo), types.FromNative(hi), true
}

// Interface conformance for all concrete instantiations.
var (
	_ ScannableSegment = (*DictionarySegment[int64])(nil)
	_ ScannableSegment = (*DictionarySegment[float64])(nil)
	_ ScannableSegment = (*DictionarySegment[string])(nil)
	_ ScannableSegment = (*FrameOfReferenceSegment)(nil)
	_ ScannableSegment = (*RunLengthSegment[int64])(nil)
	_ ScannableSegment = (*RunLengthSegment[float64])(nil)
	_ ScannableSegment = (*RunLengthSegment[string])(nil)
	_ BoundedSegment   = (*DictionarySegment[int64])(nil)
	_ BoundedSegment   = (*FrameOfReferenceSegment)(nil)
	_ BoundedSegment   = (*RunLengthSegment[int64])(nil)
)
