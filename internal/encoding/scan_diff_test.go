package encoding

import (
	"fmt"
	"math"
	"testing"

	"hyrise/internal/types"
)

// Differential encoding-correctness harness: every encoded scan path must
// return bit-for-bit the same offsets as an independent row-at-a-time
// reference evaluator over the decoded values. The reference below shares no
// code with ScanEncoded or ScanValues on purpose — it is the spec.

// refScan is the independent materializing reference: evaluate the predicate
// row by row on the plain values/null slices.
func refScan[T types.Ordered](op ScanOp, probe, lo, hi T, values []T, nulls []bool) []types.ChunkOffset {
	out := []types.ChunkOffset{}
	for i, v := range values {
		null := nulls != nil && nulls[i]
		keep := false
		switch op {
		case ScanIsNull:
			keep = null
		case ScanIsNotNull:
			keep = !null
		default:
			if null {
				break
			}
			switch op {
			case ScanEq:
				keep = v == probe
			case ScanNe:
				keep = v != probe
			case ScanLt:
				keep = v < probe
			case ScanLe:
				keep = v <= probe
			case ScanGt:
				keep = v > probe
			case ScanGe:
				keep = v >= probe
			case ScanBetween:
				keep = v >= lo && v <= hi
			}
		}
		if keep {
			out = append(out, types.ChunkOffset(i))
		}
	}
	return out
}

// buildScannables encodes one logical column every way the type supports.
func buildScannables[T types.Ordered](values []T, nulls []bool) map[string]ScannableSegment {
	segs := map[string]ScannableSegment{
		"Dictionary-FSBA":  EncodeDictionary(values, nulls, FixedSizeByteAligned),
		"Dictionary-BP128": EncodeDictionary(values, nulls, BitPacked128),
		"RunLength":        EncodeRunLength(values, nulls),
	}
	if iv, ok := any(values).([]int64); ok {
		segs["FoR-FSBA"] = EncodeFrameOfReference(iv, nulls, FixedSizeByteAligned)
		segs["FoR-BP128"] = EncodeFrameOfReference(iv, nulls, BitPacked128)
	}
	return segs
}

// diffPredicates builds the full predicate grid for a probe set: every
// comparison op per probe, BETWEEN over ordered and inverted pairs, and the
// null checks.
type diffPred[T types.Ordered] struct {
	name          string
	op            ScanOp
	probe, lo, hi T
}

func diffPredicates[T types.Ordered](probes []T) []diffPred[T] {
	var out []diffPred[T]
	ops := []ScanOp{ScanEq, ScanNe, ScanLt, ScanLe, ScanGt, ScanGe}
	for _, p := range probes {
		for _, op := range ops {
			out = append(out, diffPred[T]{name: fmt.Sprintf("%s %v", op, p), op: op, probe: p})
		}
	}
	// BETWEEN pairs: adjacent, equal, full span, and inverted (empty).
	for i := 0; i+1 < len(probes); i++ {
		lo, hi := probes[i], probes[i+1]
		out = append(out, diffPred[T]{name: fmt.Sprintf("BETWEEN %v AND %v", lo, hi), op: ScanBetween, lo: lo, hi: hi})
	}
	if len(probes) > 0 {
		first, last := probes[0], probes[len(probes)-1]
		out = append(out,
			diffPred[T]{name: fmt.Sprintf("BETWEEN %v AND %v", first, first), op: ScanBetween, lo: first, hi: first},
			diffPred[T]{name: fmt.Sprintf("BETWEEN %v AND %v", first, last), op: ScanBetween, lo: first, hi: last},
			diffPred[T]{name: fmt.Sprintf("BETWEEN %v AND %v (inverted)", last, first), op: ScanBetween, lo: last, hi: first},
		)
	}
	out = append(out,
		diffPred[T]{name: "IS NULL", op: ScanIsNull},
		diffPred[T]{name: "IS NOT NULL", op: ScanIsNotNull},
	)
	return out
}

func (d diffPred[T]) scanPredicate() ScanPredicate {
	switch d.op {
	case ScanBetween:
		return ScanPredicate{Op: ScanBetween, Lo: types.FromNative(d.lo), Hi: types.FromNative(d.hi)}
	case ScanIsNull, ScanIsNotNull:
		return ScanPredicate{Op: d.op}
	default:
		return ScanPredicate{Op: d.op, Value: types.FromNative(d.probe)}
	}
}

func equalOffsets(a, b []types.ChunkOffset) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runScanDiff drives one dataset through every encoding x predicate pair.
func runScanDiff[T types.Ordered](t *testing.T, values []T, nulls []bool, probes []T) {
	t.Helper()
	preds := diffPredicates(probes)
	segs := buildScannables(values, nulls)
	for segName, seg := range segs {
		if seg.Len() != len(values) {
			t.Fatalf("%s: encoded length %d, want %d", segName, seg.Len(), len(values))
		}
		for _, d := range preds {
			want := refScan(d.op, d.probe, d.lo, d.hi, values, nulls)
			got, _, ok := seg.ScanEncoded(d.scanPredicate(), nil)
			if !ok {
				t.Errorf("%s: %s: encoded scan refused a supported predicate", segName, d.name)
				continue
			}
			if got == nil {
				got = []types.ChunkOffset{}
			}
			if !equalOffsets(got, want) {
				t.Errorf("%s: %s: encoded scan returned %d offsets, reference %d (got %v, want %v)",
					segName, d.name, len(got), len(want), clip(got), clip(want))
			}
		}
		// Bounds must bracket the non-null values exactly.
		checkBounds(t, segName, seg, values, nulls)
	}
	// The typed unencoded path must agree with the same reference.
	for _, d := range preds {
		want := refScan(d.op, d.probe, d.lo, d.hi, values, nulls)
		got, ok := ScanValues(d.scanPredicate(), values, nulls, nil)
		if !ok {
			t.Errorf("ScanValues: %s: refused a supported predicate", d.name)
			continue
		}
		if got == nil {
			got = []types.ChunkOffset{}
		}
		if !equalOffsets(got, want) {
			t.Errorf("ScanValues: %s: got %v, want %v", d.name, clip(got), clip(want))
		}
	}
}

func clip(o []types.ChunkOffset) []types.ChunkOffset {
	if len(o) > 12 {
		return o[:12]
	}
	return o
}

func checkBounds[T types.Ordered](t *testing.T, segName string, seg ScannableSegment, values []T, nulls []bool) {
	t.Helper()
	b, ok := seg.(BoundedSegment)
	if !ok {
		t.Fatalf("%s: encoded segment does not expose Bounds", segName)
	}
	var wantMin, wantMax T
	seen := false
	for i, v := range values {
		if nulls != nil && nulls[i] {
			continue
		}
		if !seen || v < wantMin {
			wantMin = v
		}
		if !seen || v > wantMax {
			wantMax = v
		}
		seen = true
	}
	mn, mx, haveBounds := b.Bounds()
	if !seen {
		if haveBounds && (!mn.IsNull() || !mx.IsNull()) {
			t.Errorf("%s: Bounds reported %v..%v for a column with no non-null rows", segName, mn, mx)
		}
		return
	}
	if !haveBounds {
		t.Errorf("%s: Bounds unavailable for a non-empty column", segName)
		return
	}
	cmn, okMin := types.Compare(mn, types.FromNative(wantMin))
	cmx, okMax := types.Compare(mx, types.FromNative(wantMax))
	if !okMin || !okMax || cmn != 0 || cmx != 0 {
		t.Errorf("%s: Bounds %v..%v, want %v..%v", segName, mn, mx, wantMin, wantMax)
	}
}

// --- datasets ------------------------------------------------------------

// lcg is a deterministic generator so failures reproduce.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

func TestScanDiffInt64(t *testing.T) {
	type ds struct {
		name   string
		values []int64
		nulls  []bool
		probes []int64
	}
	var sets []ds

	sets = append(sets, ds{name: "empty", probes: []int64{0}})

	allNull := make([]int64, 100)
	allNullMask := make([]bool, 100)
	for i := range allNullMask {
		allNullMask[i] = true
	}
	sets = append(sets, ds{name: "all-null", values: allNull, nulls: allNullMask, probes: []int64{0, 1}})

	singleRun := make([]int64, 5000) // spans multiple FoR blocks
	for i := range singleRun {
		singleRun[i] = 42
	}
	sets = append(sets, ds{name: "single-run", values: singleRun, probes: []int64{41, 42, 43}})

	domain := []int64{-12345, -50, -7, 0, 1, 2, 3, 5, 8, 9, 10, 11, 13, 100, 1000, 7777}
	dup := make([]int64, 10000)
	dupNulls := make([]bool, 10000)
	r := lcg(1)
	for i := range dup {
		dup[i] = domain[r.next()%uint64(len(domain))]
		dupNulls[i] = r.next()%7 == 0
	}
	sets = append(sets, ds{name: "duplicate-heavy",
		values: dup, nulls: dupNulls,
		probes: []int64{-99999, -12345, -8, 0, 4, 13, 7777, 8000}})

	// Adversarial FoR block boundaries: 2*2048+3 rows, a different frame per
	// block, nulls planted exactly on the block seams.
	bb := make([]int64, 2*2048+3)
	bbNulls := make([]bool, len(bb))
	for i := range bb {
		block := int64(i / 2048)
		bb[i] = block*1_000_000 - 500 + int64(i%2048)
	}
	for _, pos := range []int{0, 2047, 2048, 4095, 4096, len(bb) - 1} {
		bbNulls[pos] = true
	}
	sets = append(sets, ds{name: "for-block-boundary",
		values: bb, nulls: bbNulls,
		probes: []int64{-500, -499, 1547, 999_500, 1_000_000, 1_999_502, 2_000_000, 3_000_000}})

	extremes := make([]int64, 100)
	pattern := []int64{math.MinInt64, -1, 0, 1, math.MaxInt64}
	for i := range extremes {
		extremes[i] = pattern[i%len(pattern)]
	}
	sets = append(sets, ds{name: "int64-extremes",
		values: extremes,
		probes: []int64{math.MinInt64, math.MinInt64 + 1, -1, 0, 1, math.MaxInt64 - 1, math.MaxInt64}})

	random := make([]int64, 3000)
	randomNulls := make([]bool, 3000)
	for i := range random {
		random[i] = int64(r.next()%2_000_000_001) - 1_000_000_000
		randomNulls[i] = r.next()%10 == 0
	}
	sets = append(sets, ds{name: "random",
		values: random, nulls: randomNulls,
		probes: []int64{-1_000_000_000, random[17], random[1234], 0, random[2999], 1_000_000_000}})

	for _, s := range sets {
		t.Run(s.name, func(t *testing.T) { runScanDiff(t, s.values, s.nulls, s.probes) })
	}
}

func TestScanDiffFloat64(t *testing.T) {
	type ds struct {
		name   string
		values []float64
		nulls  []bool
		probes []float64
	}
	var sets []ds

	sets = append(sets, ds{name: "empty", probes: []float64{0}})

	allNull := make([]float64, 64)
	allNullMask := make([]bool, 64)
	for i := range allNullMask {
		allNullMask[i] = true
	}
	sets = append(sets, ds{name: "all-null", values: allNull, nulls: allNullMask, probes: []float64{0, 0.5}})

	singleRun := make([]float64, 4096)
	for i := range singleRun {
		singleRun[i] = 3.5
	}
	sets = append(sets, ds{name: "single-run", values: singleRun, probes: []float64{3.4, 3.5, 3.6}})

	domain := []float64{-273.15, -0.5, 0, 0.25, 1, 2.5, 3.14159, 8, 99.99, 1e6}
	dup := make([]float64, 8000)
	dupNulls := make([]bool, 8000)
	r := lcg(7)
	for i := range dup {
		dup[i] = domain[r.next()%uint64(len(domain))]
		dupNulls[i] = r.next()%9 == 0
	}
	sets = append(sets, ds{name: "duplicate-heavy",
		values: dup, nulls: dupNulls,
		probes: []float64{-300, -273.15, -0.25, 0.25, 3.14159, 3.5, 1e6, 2e6}})

	for _, s := range sets {
		t.Run(s.name, func(t *testing.T) { runScanDiff(t, s.values, s.nulls, s.probes) })
	}
}

func TestScanDiffString(t *testing.T) {
	type ds struct {
		name   string
		values []string
		nulls  []bool
		probes []string
	}
	var sets []ds

	sets = append(sets, ds{name: "empty", probes: []string{""}})

	allNull := make([]string, 64)
	allNullMask := make([]bool, 64)
	for i := range allNullMask {
		allNullMask[i] = true
	}
	sets = append(sets, ds{name: "all-null", values: allNull, nulls: allNullMask, probes: []string{"", "a"}})

	singleRun := make([]string, 3000)
	for i := range singleRun {
		singleRun[i] = "pineapple"
	}
	sets = append(sets, ds{name: "single-run", values: singleRun, probes: []string{"", "pineapple", "pineapplf", "zzz"}})

	domain := []string{"", "AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}
	dup := make([]string, 6000)
	dupNulls := make([]bool, 6000)
	r := lcg(11)
	for i := range dup {
		dup[i] = domain[r.next()%uint64(len(domain))]
		dupNulls[i] = r.next()%8 == 0
	}
	sets = append(sets, ds{name: "duplicate-heavy",
		values: dup, nulls: dupNulls,
		probes: []string{"", "AIR", "BOAT", "RAIL", "SHIP", "TRUCKZ"}})

	for _, s := range sets {
		t.Run(s.name, func(t *testing.T) { runScanDiff(t, s.values, s.nulls, s.probes) })
	}
}

// TestScanDiffProbeConversions pins the cross-type probe semantics: integral
// float probes against an int64 column convert exactly; non-integral ones
// must refuse (ok=false) so the caller falls back to the evaluator, which is
// the only path that can honor float comparison semantics there.
func TestScanDiffProbeConversions(t *testing.T) {
	values := []int64{1, 2, 3, 4, 5, 5, 5, 6}
	for name, seg := range buildScannables(values, nil) {
		got, _, ok := seg.ScanEncoded(ScanPredicate{Op: ScanEq, Value: types.Float(5)}, nil)
		if !ok || len(got) != 3 {
			t.Errorf("%s: integral float probe: ok=%v matches=%d, want ok=true matches=3", name, ok, len(got))
		}
		if _, _, ok := seg.ScanEncoded(ScanPredicate{Op: ScanEq, Value: types.Float(4.5)}, nil); ok {
			t.Errorf("%s: non-integral float probe on int64 column must fall back", name)
		}
		if _, _, ok := seg.ScanEncoded(ScanPredicate{Op: ScanEq, Value: types.Str("5")}, nil); ok {
			t.Errorf("%s: string probe on int64 column must fall back", name)
		}
	}
	fvalues := []float64{0.5, 1, 1.5, 2}
	for name, seg := range buildScannables(fvalues, nil) {
		got, _, ok := seg.ScanEncoded(ScanPredicate{Op: ScanGe, Value: types.Int(1)}, nil)
		if !ok || len(got) != 3 {
			t.Errorf("%s: int probe on float64 column: ok=%v matches=%d, want ok=true matches=3", name, ok, len(got))
		}
	}
}

// TestScanDiffAppendsToDst pins the append contract: matches are appended to
// dst, preserving what the caller already had.
func TestScanDiffAppendsToDst(t *testing.T) {
	values := []int64{7, 8, 7}
	for name, seg := range buildScannables(values, nil) {
		dst := []types.ChunkOffset{999}
		got, _, ok := seg.ScanEncoded(ScanPredicate{Op: ScanEq, Value: types.Int(7)}, dst)
		if !ok {
			t.Fatalf("%s: scan refused", name)
		}
		want := []types.ChunkOffset{999, 0, 2}
		if !equalOffsets(got, want) {
			t.Errorf("%s: got %v, want %v", name, got, want)
		}
	}
}

// TestAggregateEncodedDifferential cross-checks the encoded aggregate path
// against a row-at-a-time reference over the same data.
func TestAggregateEncodedDifferential(t *testing.T) {
	r := lcg(23)
	values := make([]int64, 9000)
	nulls := make([]bool, 9000)
	for i := range values {
		values[i] = int64(r.next()%20001) - 10000
		nulls[i] = r.next()%6 == 0
	}
	var wantNonNull, wantSum int64
	var wantFloat float64
	for i, v := range values {
		if nulls[i] {
			continue
		}
		wantNonNull++
		wantSum += v
		wantFloat += float64(v)
	}
	for name, seg := range buildScannables(values, nulls) {
		sa, ok := AggregateEncoded(seg, true, true)
		if !ok {
			t.Errorf("%s: AggregateEncoded refused", name)
			continue
		}
		if sa.Rows != int64(len(values)) || sa.NonNull != wantNonNull {
			t.Errorf("%s: rows=%d nonNull=%d, want %d/%d", name, sa.Rows, sa.NonNull, len(values), wantNonNull)
		}
		if sa.SumInt != wantSum {
			t.Errorf("%s: sumInt=%d, want %d", name, sa.SumInt, wantSum)
		}
		if sa.SumFloat != wantFloat {
			t.Errorf("%s: sumFloat=%v, want %v", name, sa.SumFloat, wantFloat)
		}
	}
}
