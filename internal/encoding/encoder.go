package encoding

import (
	"fmt"

	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// EncodingType selects the logical encoding scheme of a segment.
type EncodingType uint8

const (
	// Unencoded leaves the plain value segment in place.
	Unencoded EncodingType = iota
	// Dictionary applies order-preserving dictionary encoding.
	Dictionary
	// RunLength applies run-length encoding.
	RunLength
	// FrameOfReference applies frame-of-reference encoding (int64 only;
	// other types fall back to Dictionary).
	FrameOfReference
)

// String names the encoding like the paper does.
func (e EncodingType) String() string {
	switch e {
	case Unencoded:
		return "Unencoded"
	case Dictionary:
		return "Dictionary"
	case RunLength:
		return "RunLength"
	case FrameOfReference:
		return "FrameOfReference"
	default:
		return "?"
	}
}

// ParseEncodingType parses a command-line encoding name.
func ParseEncodingType(s string) (EncodingType, error) {
	switch s {
	case "Unencoded", "unencoded", "none":
		return Unencoded, nil
	case "Dictionary", "dictionary", "dict":
		return Dictionary, nil
	case "RunLength", "runlength", "rle":
		return RunLength, nil
	case "FrameOfReference", "frameofreference", "for":
		return FrameOfReference, nil
	default:
		return Unencoded, fmt.Errorf("encoding: unknown encoding type %q", s)
	}
}

// Spec combines a logical scheme with a physical scheme. The two compose
// freely (paper §2.3: "logical and physical encoding schemes can be
// arbitrarily combined").
type Spec struct {
	Encoding    EncodingType
	Compression VectorCompressionType
}

// String renders the spec like the paper's figure labels, e.g.
// "Dictionary (FSBA)".
func (s Spec) String() string {
	if s.Encoding == Unencoded || s.Encoding == RunLength {
		return s.Encoding.String()
	}
	return fmt.Sprintf("%s (%s)", s.Encoding, s.Compression)
}

// EncodeSegment encodes the values of a segment with the given spec and
// returns the new segment. Unencoded returns the input unchanged.
// FrameOfReference on non-integer columns falls back to Dictionary.
// Already-encoded segments are decoded and re-encoded, which is what lets
// the encoding advisor migrate a segment toward the representation the
// observed workload scans fastest.
func EncodeSegment(seg storage.Segment, spec Spec) (storage.Segment, error) {
	if spec.Encoding == Unencoded {
		return seg, nil
	}
	switch s := seg.(type) {
	case *storage.ValueSegment[int64]:
		return encodeTyped(s.Values(), s.Nulls(), spec), nil
	case *storage.ValueSegment[float64]:
		return encodeTyped(s.Values(), s.Nulls(), spec), nil
	case *storage.ValueSegment[string]:
		return encodeTyped(s.Values(), s.Nulls(), spec), nil
	case *DictionarySegment[int64]:
		vals, nulls := s.DecodeAll()
		return encodeTyped(vals, nulls, spec), nil
	case *DictionarySegment[float64]:
		vals, nulls := s.DecodeAll()
		return encodeTyped(vals, nulls, spec), nil
	case *DictionarySegment[string]:
		vals, nulls := s.DecodeAll()
		return encodeTyped(vals, nulls, spec), nil
	case *RunLengthSegment[int64]:
		vals, nulls := s.DecodeAll()
		return encodeTyped(vals, nulls, spec), nil
	case *RunLengthSegment[float64]:
		vals, nulls := s.DecodeAll()
		return encodeTyped(vals, nulls, spec), nil
	case *RunLengthSegment[string]:
		vals, nulls := s.DecodeAll()
		return encodeTyped(vals, nulls, spec), nil
	case *FrameOfReferenceSegment:
		vals, nulls := s.DecodeAll()
		return encodeTyped(vals, nulls, spec), nil
	default:
		return nil, fmt.Errorf("encoding: cannot encode segment of type %T", seg)
	}
}

// SpecOf reports the encoding spec a segment currently uses (Unencoded for
// value segments; ok=false for reference and unknown segment types). The
// advisor uses it to skip re-encoding segments already in the target shape.
func SpecOf(seg storage.Segment) (Spec, bool) {
	switch s := seg.(type) {
	case *storage.ValueSegment[int64], *storage.ValueSegment[float64], *storage.ValueSegment[string]:
		return Spec{Encoding: Unencoded}, true
	case *DictionarySegment[int64]:
		return Spec{Encoding: Dictionary, Compression: compressionOf(s.av)}, true
	case *DictionarySegment[float64]:
		return Spec{Encoding: Dictionary, Compression: compressionOf(s.av)}, true
	case *DictionarySegment[string]:
		return Spec{Encoding: Dictionary, Compression: compressionOf(s.av)}, true
	case *RunLengthSegment[int64], *RunLengthSegment[float64], *RunLengthSegment[string]:
		return Spec{Encoding: RunLength}, true
	case *FrameOfReferenceSegment:
		return Spec{Encoding: FrameOfReference, Compression: compressionOf(s.offsets)}, true
	default:
		return Spec{}, false
	}
}

func compressionOf(v UintVector) VectorCompressionType {
	if _, ok := v.(*BP128Vector); ok {
		return BitPacked128
	}
	return FixedSizeByteAligned
}

func encodeTyped[T types.Ordered](values []T, nulls []bool, spec Spec) storage.Segment {
	switch spec.Encoding {
	case RunLength:
		return EncodeRunLength(values, nulls)
	case FrameOfReference:
		if ints, ok := any(values).([]int64); ok {
			return EncodeFrameOfReference(ints, nulls, spec.Compression)
		}
		return EncodeDictionary(values, nulls, spec.Compression)
	default:
		return EncodeDictionary(values, nulls, spec.Compression)
	}
}

// EncodeChunk encodes every segment of an immutable chunk in place.
// Per-column specs override the default spec; a nil map encodes everything
// with the default (paper §2.2: "Some segments of a chunk might stay
// unencoded, others dictionary-encoded, and further segments run
// length-encoded").
func EncodeChunk(c *storage.Chunk, def Spec, perColumn map[types.ColumnID]Spec) error {
	if !c.IsImmutable() {
		return fmt.Errorf("encoding: chunk must be immutable before encoding")
	}
	for col := 0; col < c.ColumnCount(); col++ {
		id := types.ColumnID(col)
		spec := def
		if perColumn != nil {
			if s, ok := perColumn[id]; ok {
				spec = s
			}
		}
		if spec.Encoding == Unencoded {
			continue
		}
		seg := c.GetSegment(id)
		if _, ok := seg.(*storage.ReferenceSegment); ok {
			return fmt.Errorf("encoding: cannot encode reference segment")
		}
		encoded, err := EncodeSegment(seg, spec)
		if err != nil {
			return err
		}
		if encoded != seg {
			c.ReplaceSegment(id, encoded)
		}
	}
	return nil
}

// EncodeTable finalizes the last chunk and encodes all chunks of a data
// table (bulk-load path of the benchmark binaries).
func EncodeTable(t *storage.Table, def Spec, perColumn map[types.ColumnID]Spec) error {
	t.FinalizeLastChunk()
	for _, c := range t.Chunks() {
		if err := EncodeChunk(c, def, perColumn); err != nil {
			return err
		}
	}
	return nil
}
