package encoding

import (
	"testing"

	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// roundTrip serializes a segment and decodes it back, asserting a clean
// parse with no trailing bytes.
func roundTrip(t *testing.T, seg storage.Segment) storage.Segment {
	t.Helper()
	buf, err := AppendSegment(nil, seg)
	if err != nil {
		t.Fatalf("AppendSegment: %v", err)
	}
	got, rest, err := DecodeSegment(buf)
	if err != nil {
		t.Fatalf("DecodeSegment: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("DecodeSegment left %d trailing bytes", len(rest))
	}
	if got.Len() != seg.Len() {
		t.Fatalf("round-trip length %d, want %d", got.Len(), seg.Len())
	}
	return got
}

// assertSameValues compares two segments cell by cell through the dynamic
// accessor (the ground truth every segment type implements).
func assertSameValues(t *testing.T, got, want storage.Segment) {
	t.Helper()
	for i := 0; i < want.Len(); i++ {
		off := types.ChunkOffset(i)
		g, w := got.ValueAt(off), want.ValueAt(off)
		if g.IsNull() != w.IsNull() {
			t.Fatalf("row %d: null mismatch: got %v, want %v", i, g, w)
		}
		if !w.IsNull() && g != w {
			t.Fatalf("row %d: got %v, want %v", i, g, w)
		}
	}
}

func TestValueSegmentRoundTrip(t *testing.T) {
	ints := storage.ValueSegmentFromSlice([]int64{1, -5, 0, 1 << 40}, nil)
	assertSameValues(t, roundTrip(t, ints), ints)

	floats := storage.ValueSegmentFromSlice([]float64{1.5, -2.25, 0}, []bool{false, true, false})
	assertSameValues(t, roundTrip(t, floats), floats)

	strs := storage.ValueSegmentFromSlice([]string{"", "abc", "日本語"}, []bool{true, false, false})
	assertSameValues(t, roundTrip(t, strs), strs)
}

func TestDictionarySegmentRoundTrip(t *testing.T) {
	vals := []string{"b", "a", "b", "c", "a", "a"}
	nulls := []bool{false, false, true, false, false, false}
	for _, comp := range []VectorCompressionType{FixedSizeByteAligned, BitPacked128} {
		seg := EncodeDictionary(vals, nulls, comp)
		assertSameValues(t, roundTrip(t, seg), seg)
	}
	ints := EncodeDictionary([]int64{5, 5, 7, -1, 5}, nil, FixedSizeByteAligned)
	assertSameValues(t, roundTrip(t, ints), ints)
	floats := EncodeDictionary([]float64{0.5, 0.5, 9.75}, nil, BitPacked128)
	assertSameValues(t, roundTrip(t, floats), floats)
}

func TestRunLengthSegmentRoundTrip(t *testing.T) {
	seg := EncodeRunLength([]int64{4, 4, 4, 9, 9, 2}, []bool{false, false, false, true, true, false})
	assertSameValues(t, roundTrip(t, seg), seg)
	strs := EncodeRunLength([]string{"x", "x", "y"}, nil)
	assertSameValues(t, roundTrip(t, strs), strs)
}

func TestFrameOfReferenceRoundTrip(t *testing.T) {
	values := make([]int64, 3000)
	nulls := make([]bool, 3000)
	for i := range values {
		values[i] = 1_000_000 + int64(i%77)
	}
	seg := EncodeFrameOfReference(values, nulls, FixedSizeByteAligned)
	assertSameValues(t, roundTrip(t, seg), seg)
}

// TestFrameOfReferenceAllNullBlockRoundTrip pins the snapshot-serialization
// edge case: a frame-of-reference block (2048 values) consisting entirely of
// NULLs has no reference frame derived from data — its frame stays zero —
// and must still round-trip bit-for-bit through the snapshot segment codec.
func TestFrameOfReferenceAllNullBlockRoundTrip(t *testing.T) {
	const block = 2048
	values := make([]int64, 3*block)
	nulls := make([]bool, 3*block)
	for i := 0; i < block; i++ {
		values[i] = int64(500 + i) // block 0: dense values
		nulls[block+i] = true      // block 1: all NULL
		if i%2 == 0 {              // block 2: alternating
			nulls[2*block+i] = true
		} else {
			values[2*block+i] = int64(-40 + i)
		}
	}
	for _, comp := range []VectorCompressionType{FixedSizeByteAligned, BitPacked128} {
		seg := EncodeFrameOfReference(values, nulls, comp)
		got := roundTrip(t, seg)
		assertSameValues(t, got, seg)
		// And the decoded form must itself re-serialize identically.
		buf1, err := AppendSegment(nil, seg)
		if err != nil {
			t.Fatal(err)
		}
		buf2, err := AppendSegment(nil, got)
		if err != nil {
			t.Fatal(err)
		}
		if string(buf1) != string(buf2) {
			t.Fatal("re-serialization of decoded segment differs")
		}
	}
}
