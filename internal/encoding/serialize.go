package encoding

import (
	"encoding/binary"
	"fmt"
	"math"

	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// Segment serialization: every segment type — unencoded value segments and
// all encoded forms — can be written to and rebuilt from a byte stream. The
// persistence layer snapshots immutable chunks in their encoded segment
// form, so on-disk size inherits the compression wins and recovery I/O is
// proportional to compressed size.
//
// The format is self-describing: a one-byte segment tag, followed by
// tag-specific fields. Integers use unsigned varints (zig-zag varints where
// signed), floats use IEEE-754 bits, strings and bitmaps are
// length-prefixed. Integrity (CRC) is the caller's concern — the WAL and
// snapshot framings both checksum whole records/files.

// Segment tags. The numeric values are part of the on-disk format.
const (
	segValueInt64 byte = iota + 1
	segValueFloat64
	segValueString
	segDictInt64
	segDictFloat64
	segDictString
	segRunLengthInt64
	segRunLengthFloat64
	segRunLengthString
	segFrameOfReference
)

// UintVector tags.
const (
	vecFixed8 byte = iota + 1
	vecFixed16
	vecFixed32
	vecFixed64
	vecBP128
)

// --- primitive append helpers ------------------------------------------

func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBools(dst []byte, b []bool) []byte {
	// Length-prefixed bitmap; a zero length round-trips to a nil slice.
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	var cur byte
	for i, v := range b {
		if v {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			dst = append(dst, cur)
			cur = 0
		}
	}
	if len(b)%8 != 0 {
		dst = append(dst, cur)
	}
	return dst
}

// byteReader consumes the primitive encodings with explicit error state so
// segment decoding never panics on truncated or corrupt input.
type byteReader struct {
	buf []byte
	err error
}

func (r *byteReader) fail(msg string) {
	if r.err == nil {
		r.err = fmt.Errorf("encoding: corrupt segment: %s", msg)
	}
}

func (r *byteReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) == 0 {
		r.fail("unexpected end of input")
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *byteReader) length(what string) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.buf))+1 { // +1: bitmap lengths count bits, not bytes
		// A cheap sanity bound; exact bounds are checked by the consumers.
		if v > uint64(len(r.buf))*8+8 {
			r.fail(what + " length exceeds input")
			return 0
		}
	}
	return int(v)
}

func (r *byteReader) string_() string {
	n := r.length("string")
	if r.err != nil {
		return ""
	}
	if n > len(r.buf) {
		r.fail("string length exceeds input")
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

func (r *byteReader) bools() []bool {
	n := r.length("bitmap")
	if r.err != nil || n == 0 {
		return nil
	}
	nBytes := (n + 7) / 8
	if nBytes > len(r.buf) {
		r.fail("bitmap length exceeds input")
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = r.buf[i/8]&(1<<(i%8)) != 0
	}
	r.buf = r.buf[nBytes:]
	return out
}

// --- typed slice helpers -----------------------------------------------

func appendInt64s(dst []byte, vs []int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = binary.AppendVarint(dst, v)
	}
	return dst
}

func (r *byteReader) int64s() []int64 {
	n := r.length("int64 slice")
	if r.err != nil {
		return nil
	}
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		if r.err != nil {
			return nil
		}
		v, sz := binary.Varint(r.buf)
		if sz <= 0 {
			r.fail("bad varint")
			return nil
		}
		r.buf = r.buf[sz:]
		out = append(out, v)
	}
	return out
}

func appendFloat64s(dst []byte, vs []float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

func (r *byteReader) float64s() []float64 {
	n := r.length("float64 slice")
	if r.err != nil {
		return nil
	}
	if n*8 > len(r.buf) {
		r.fail("float64 slice exceeds input")
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.buf[i*8:]))
	}
	r.buf = r.buf[n*8:]
	return out
}

func appendStrings(dst []byte, vs []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = appendString(dst, v)
	}
	return dst
}

func (r *byteReader) strings_() []string {
	n := r.length("string slice")
	if r.err != nil {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if r.err != nil {
			return nil
		}
		out = append(out, r.string_())
	}
	return out
}

// --- UintVector ---------------------------------------------------------

func appendUintVector(dst []byte, v UintVector) ([]byte, error) {
	switch vec := v.(type) {
	case *FixedWidthVector[uint8]:
		dst = append(dst, vecFixed8)
		dst = binary.AppendUvarint(dst, uint64(len(vec.data)))
		dst = append(dst, vec.data...)
	case *FixedWidthVector[uint16]:
		dst = append(dst, vecFixed16)
		dst = binary.AppendUvarint(dst, uint64(len(vec.data)))
		for _, w := range vec.data {
			dst = binary.LittleEndian.AppendUint16(dst, w)
		}
	case *FixedWidthVector[uint32]:
		dst = append(dst, vecFixed32)
		dst = binary.AppendUvarint(dst, uint64(len(vec.data)))
		for _, w := range vec.data {
			dst = binary.LittleEndian.AppendUint32(dst, w)
		}
	case *FixedWidthVector[uint64]:
		dst = append(dst, vecFixed64)
		dst = binary.AppendUvarint(dst, uint64(len(vec.data)))
		for _, w := range vec.data {
			dst = binary.LittleEndian.AppendUint64(dst, w)
		}
	case *BP128Vector:
		dst = append(dst, vecBP128)
		dst = binary.AppendUvarint(dst, uint64(vec.n))
		dst = binary.AppendUvarint(dst, uint64(len(vec.words)))
		for _, w := range vec.words {
			dst = binary.LittleEndian.AppendUint64(dst, w)
		}
		dst = binary.AppendUvarint(dst, uint64(len(vec.blockBits)))
		dst = append(dst, vec.blockBits...)
		dst = binary.AppendUvarint(dst, uint64(len(vec.blockStart)))
		for _, w := range vec.blockStart {
			dst = binary.LittleEndian.AppendUint32(dst, w)
		}
	default:
		return nil, fmt.Errorf("encoding: cannot serialize uint vector of type %T", v)
	}
	return dst, nil
}

func (r *byteReader) uintVector() UintVector {
	tag := r.byte()
	if r.err != nil {
		return nil
	}
	switch tag {
	case vecFixed8:
		n := r.length("vector")
		if r.err != nil {
			return nil
		}
		if n > len(r.buf) {
			r.fail("vector exceeds input")
			return nil
		}
		data := make([]uint8, n)
		copy(data, r.buf[:n])
		r.buf = r.buf[n:]
		return &FixedWidthVector[uint8]{data: data}
	case vecFixed16:
		n := r.length("vector")
		if r.err != nil {
			return nil
		}
		if n*2 > len(r.buf) {
			r.fail("vector exceeds input")
			return nil
		}
		data := make([]uint16, n)
		for i := range data {
			data[i] = binary.LittleEndian.Uint16(r.buf[i*2:])
		}
		r.buf = r.buf[n*2:]
		return &FixedWidthVector[uint16]{data: data}
	case vecFixed32:
		n := r.length("vector")
		if r.err != nil {
			return nil
		}
		if n*4 > len(r.buf) {
			r.fail("vector exceeds input")
			return nil
		}
		data := make([]uint32, n)
		for i := range data {
			data[i] = binary.LittleEndian.Uint32(r.buf[i*4:])
		}
		r.buf = r.buf[n*4:]
		return &FixedWidthVector[uint32]{data: data}
	case vecFixed64:
		n := r.length("vector")
		if r.err != nil {
			return nil
		}
		if n*8 > len(r.buf) {
			r.fail("vector exceeds input")
			return nil
		}
		data := make([]uint64, n)
		for i := range data {
			data[i] = binary.LittleEndian.Uint64(r.buf[i*8:])
		}
		r.buf = r.buf[n*8:]
		return &FixedWidthVector[uint64]{data: data}
	case vecBP128:
		v := &BP128Vector{n: int(r.uvarint())}
		nWords := r.length("bp128 words")
		if r.err != nil || nWords*8 > len(r.buf) {
			r.fail("bp128 words exceed input")
			return nil
		}
		v.words = make([]uint64, nWords)
		for i := range v.words {
			v.words[i] = binary.LittleEndian.Uint64(r.buf[i*8:])
		}
		r.buf = r.buf[nWords*8:]
		nBits := r.length("bp128 block bits")
		if r.err != nil || nBits > len(r.buf) {
			r.fail("bp128 block bits exceed input")
			return nil
		}
		v.blockBits = make([]uint8, nBits)
		copy(v.blockBits, r.buf[:nBits])
		r.buf = r.buf[nBits:]
		nStarts := r.length("bp128 block starts")
		if r.err != nil || nStarts*4 > len(r.buf) {
			r.fail("bp128 block starts exceed input")
			return nil
		}
		v.blockStart = make([]uint32, nStarts)
		for i := range v.blockStart {
			v.blockStart[i] = binary.LittleEndian.Uint32(r.buf[i*4:])
		}
		r.buf = r.buf[nStarts*4:]
		return v
	default:
		r.fail(fmt.Sprintf("unknown vector tag %d", tag))
		return nil
	}
}

// --- segments -----------------------------------------------------------

// AppendSegment serializes a segment (unencoded or encoded) to dst and
// returns the extended slice. Reference segments cannot be serialized.
func AppendSegment(dst []byte, seg storage.Segment) ([]byte, error) {
	switch s := seg.(type) {
	case *storage.ValueSegment[int64]:
		dst = append(dst, segValueInt64)
		dst = appendValueSegmentMeta(dst, s.Nullable(), s.Nulls())
		return appendInt64s(dst, s.Values()), nil
	case *storage.ValueSegment[float64]:
		dst = append(dst, segValueFloat64)
		dst = appendValueSegmentMeta(dst, s.Nullable(), s.Nulls())
		return appendFloat64s(dst, s.Values()), nil
	case *storage.ValueSegment[string]:
		dst = append(dst, segValueString)
		dst = appendValueSegmentMeta(dst, s.Nullable(), s.Nulls())
		return appendStrings(dst, s.Values()), nil
	case *DictionarySegment[int64]:
		dst = append(dst, segDictInt64)
		dst = appendInt64s(dst, s.dict)
		return appendUintVector(dst, s.av)
	case *DictionarySegment[float64]:
		dst = append(dst, segDictFloat64)
		dst = appendFloat64s(dst, s.dict)
		return appendUintVector(dst, s.av)
	case *DictionarySegment[string]:
		dst = append(dst, segDictString)
		dst = appendStrings(dst, s.dict)
		return appendUintVector(dst, s.av)
	case *RunLengthSegment[int64]:
		dst = append(dst, segRunLengthInt64)
		dst = appendRunLengthMeta(dst, s.n, s.ends, s.nulls)
		return appendInt64s(dst, s.values), nil
	case *RunLengthSegment[float64]:
		dst = append(dst, segRunLengthFloat64)
		dst = appendRunLengthMeta(dst, s.n, s.ends, s.nulls)
		return appendFloat64s(dst, s.values), nil
	case *RunLengthSegment[string]:
		dst = append(dst, segRunLengthString)
		dst = appendRunLengthMeta(dst, s.n, s.ends, s.nulls)
		return appendStrings(dst, s.values), nil
	case *FrameOfReferenceSegment:
		dst = append(dst, segFrameOfReference)
		dst = binary.AppendUvarint(dst, uint64(s.n))
		dst = appendInt64s(dst, s.frames)
		dst = appendBools(dst, s.nulls)
		return appendUintVector(dst, s.offsets)
	default:
		return nil, fmt.Errorf("encoding: cannot serialize segment of type %T", seg)
	}
}

func appendValueSegmentMeta(dst []byte, nullable bool, nulls []bool) []byte {
	if nullable {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return appendBools(dst, nulls)
}

func appendRunLengthMeta(dst []byte, n int, ends []types.ChunkOffset, nulls []bool) []byte {
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = binary.AppendUvarint(dst, uint64(len(ends)))
	for _, e := range ends {
		dst = binary.AppendUvarint(dst, uint64(e))
	}
	return appendBools(dst, nulls)
}

// DecodeSegment rebuilds a segment from buf and returns it together with
// the remaining bytes. It never panics on corrupt input.
func DecodeSegment(buf []byte) (storage.Segment, []byte, error) {
	r := &byteReader{buf: buf}
	tag := r.byte()
	var seg storage.Segment
	switch tag {
	case segValueInt64:
		nullable, nulls := r.byte() == 1, r.bools()
		seg = valueSegmentFromParts(r, r.int64s(), nulls, nullable)
	case segValueFloat64:
		nullable, nulls := r.byte() == 1, r.bools()
		seg = valueSegmentFromParts(r, r.float64s(), nulls, nullable)
	case segValueString:
		nullable, nulls := r.byte() == 1, r.bools()
		seg = valueSegmentFromParts(r, r.strings_(), nulls, nullable)
	case segDictInt64:
		dict := r.int64s()
		seg = dictFromParts(dict, r.uintVector())
	case segDictFloat64:
		dict := r.float64s()
		seg = dictFromParts(dict, r.uintVector())
	case segDictString:
		dict := r.strings_()
		seg = dictFromParts(dict, r.uintVector())
	case segRunLengthInt64:
		n, ends, nulls := r.runLengthMeta()
		seg = &RunLengthSegment[int64]{n: n, ends: ends, nulls: nulls, values: r.int64s()}
	case segRunLengthFloat64:
		n, ends, nulls := r.runLengthMeta()
		seg = &RunLengthSegment[float64]{n: n, ends: ends, nulls: nulls, values: r.float64s()}
	case segRunLengthString:
		n, ends, nulls := r.runLengthMeta()
		seg = &RunLengthSegment[string]{n: n, ends: ends, nulls: nulls, values: r.strings_()}
	case segFrameOfReference:
		s := &FrameOfReferenceSegment{n: int(r.uvarint())}
		s.frames = r.int64s()
		s.nulls = r.bools()
		s.offsets = r.uintVector()
		// The per-block scan statistics are derived state and are not
		// persisted; rebuild them from the decoded codes. Corrupt input can
		// disagree on lengths — initBlockStats indexes codes by row, so only
		// rebuild when the shape is consistent (the segment is rejected by
		// the caller's validation otherwise).
		wantBlocks := (s.n + forBlockSize - 1) / forBlockSize
		if r.err == nil && s.offsets != nil && s.offsets.Len() == s.n &&
			len(s.frames) == wantBlocks && (s.nulls == nil || len(s.nulls) == s.n) {
			s.initBlockStats(s.offsets.DecodeAll(make([]uint64, 0, s.n)))
		} else {
			s.blockMax = make([]uint64, len(s.frames))
			s.blockNonNull = make([]int32, len(s.frames))
		}
		seg = s
	default:
		r.fail(fmt.Sprintf("unknown segment tag %d", tag))
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	return seg, r.buf, nil
}

func (r *byteReader) runLengthMeta() (int, []types.ChunkOffset, []bool) {
	n := int(r.uvarint())
	nRuns := r.length("run ends")
	if r.err != nil {
		return 0, nil, nil
	}
	ends := make([]types.ChunkOffset, 0, nRuns)
	for i := 0; i < nRuns; i++ {
		ends = append(ends, types.ChunkOffset(r.uvarint()))
	}
	return n, ends, r.bools()
}

// valueSegmentFromParts rebuilds a value segment preserving nullability: a
// nullable column with no NULLs yet must stay appendable with NULLs, so it
// gets a zeroed (non-nil) null bitmap.
func valueSegmentFromParts[T types.Ordered](r *byteReader, values []T, nulls []bool, nullable bool) *storage.ValueSegment[T] {
	if nulls != nil && len(nulls) != len(values) {
		r.fail("null bitmap length does not match value count")
		return nil
	}
	if nullable && nulls == nil {
		nulls = make([]bool, len(values))
	}
	if !nullable {
		nulls = nil
	}
	return storage.ValueSegmentFromSlice(values, nulls)
}

func dictFromParts[T types.Ordered](dict []T, av UintVector) *DictionarySegment[T] {
	return &DictionarySegment[T]{dict: dict, av: av, nullID: ValueID(len(dict))}
}
