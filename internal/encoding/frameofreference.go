package encoding

import (
	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// forBlockSize is the number of values that share one reference frame.
// Hyrise uses 2048-value blocks for frame-of-reference encoding.
const forBlockSize = 2048

// FrameOfReferenceSegment encodes int64 values as unsigned offsets from a
// per-block minimum (the "frame"). The offset vector is compressed with a
// physical scheme, so locally clustered values (timestamps, foreign keys)
// shrink dramatically. FOR is integer-only.
type FrameOfReferenceSegment struct {
	frames  []int64 // per-block minimum
	offsets UintVector
	nulls   []bool // nil when no NULLs exist
	n       int

	// Derived per-block statistics for the encoded scan path: the largest
	// offset code in each block (frame+blockMax is the block's true maximum,
	// because the minimum non-null code is 0 by construction) and the number
	// of non-null rows (0 marks the all-null blocks whose frame is
	// meaningless). Recomputed on deserialization.
	blockMax     []uint64
	blockNonNull []int32
}

// EncodeFrameOfReference builds a FOR segment. nulls may be nil. NULL rows
// store offset 0 within their block; the null bitmap is authoritative.
func EncodeFrameOfReference(values []int64, nulls []bool, compression VectorCompressionType) *FrameOfReferenceSegment {
	s := &FrameOfReferenceSegment{n: len(values)}
	nBlocks := (len(values) + forBlockSize - 1) / forBlockSize
	s.frames = make([]int64, nBlocks)
	codes := make([]uint64, len(values))
	var anyNull bool
	for b := 0; b < nBlocks; b++ {
		lo := b * forBlockSize
		hi := min(lo+forBlockSize, len(values))
		frame := int64(0)
		frameSet := false
		for i := lo; i < hi; i++ {
			if nulls != nil && nulls[i] {
				anyNull = true
				continue
			}
			if !frameSet || values[i] < frame {
				frame = values[i]
				frameSet = true
			}
		}
		s.frames[b] = frame
		for i := lo; i < hi; i++ {
			if nulls != nil && nulls[i] {
				codes[i] = 0
				continue
			}
			codes[i] = uint64(values[i] - frame)
		}
	}
	if anyNull {
		s.nulls = make([]bool, len(values))
		copy(s.nulls, nulls)
	}
	s.offsets = CompressUints(codes, compression)
	s.initBlockStats(codes)
	return s
}

// initBlockStats computes the per-block maxima and non-null counts from the
// raw codes. NULL rows store code 0, which can never exceed a block's true
// maximum (codes are unsigned and the minimum non-null code is 0), so the
// plain maximum over all codes equals the maximum over non-null codes
// whenever the block has any.
func (s *FrameOfReferenceSegment) initBlockStats(codes []uint64) {
	nBlocks := len(s.frames)
	s.blockMax = make([]uint64, nBlocks)
	s.blockNonNull = make([]int32, nBlocks)
	for b := 0; b < nBlocks; b++ {
		lo := b * forBlockSize
		hi := min(lo+forBlockSize, s.n)
		var bmax uint64
		var nonNull int32
		for i := lo; i < hi; i++ {
			if s.nulls != nil && s.nulls[i] {
				continue
			}
			nonNull++
			if codes[i] > bmax {
				bmax = codes[i]
			}
		}
		s.blockMax[b] = bmax
		s.blockNonNull[b] = nonNull
	}
}

// Frames exposes the per-block minima.
func (s *FrameOfReferenceSegment) Frames() []int64 { return s.frames }

// OffsetVector exposes the compressed offset vector.
func (s *FrameOfReferenceSegment) OffsetVector() UintVector { return s.offsets }

// Get returns the value and null flag at offset i.
func (s *FrameOfReferenceSegment) Get(i types.ChunkOffset) (int64, bool) {
	if s.nulls != nil && s.nulls[i] {
		return 0, true
	}
	return s.frames[int(i)/forBlockSize] + int64(s.offsets.Get(int(i))), false
}

// DecodeAll materializes all values and null flags.
func (s *FrameOfReferenceSegment) DecodeAll() ([]int64, []bool) {
	codes := s.offsets.DecodeAll(make([]uint64, 0, s.n))
	out := make([]int64, len(codes))
	for i, c := range codes {
		out[i] = s.frames[i/forBlockSize] + int64(c)
	}
	var nulls []bool
	if s.nulls != nil {
		nulls = make([]bool, s.n)
		copy(nulls, s.nulls)
		for i, null := range nulls {
			if null {
				out[i] = 0
			}
		}
	}
	return out, nulls
}

// DataType implements storage.Segment.
func (s *FrameOfReferenceSegment) DataType() types.DataType { return types.TypeInt64 }

// Len implements storage.Segment.
func (s *FrameOfReferenceSegment) Len() int { return s.n }

// ValueAt implements storage.Segment (dynamic path).
func (s *FrameOfReferenceSegment) ValueAt(i types.ChunkOffset) types.Value {
	v, null := s.Get(i)
	if null {
		return types.NullValue
	}
	return types.Int(v)
}

// IsNullAt implements storage.Segment.
func (s *FrameOfReferenceSegment) IsNullAt(i types.ChunkOffset) bool {
	return s.nulls != nil && s.nulls[i]
}

// MemoryUsage implements storage.Segment.
func (s *FrameOfReferenceSegment) MemoryUsage() int64 {
	m := int64(len(s.frames))*8 + s.offsets.MemoryUsage()
	if s.nulls != nil {
		m += int64(len(s.nulls))
	}
	return m
}

var _ storage.Segment = (*FrameOfReferenceSegment)(nil)
