package encoding

import (
	"encoding/binary"
	"fmt"

	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// This file implements the two access paths the paper contrasts:
//
//   - The *static* path: the concrete segment type (and, nested inside, the
//     concrete attribute-vector type) is resolved once per segment; the
//     inner loops are monomorphic with devirtualized, inlinable accessor
//     calls. This is the Go analog of Hyrise's template-resolved iterables.
//
//   - The *dynamic* path: one interface call (Segment.ValueAt) plus one
//     Value box per element, the analog of Hyrise1's virtual method calls.
//
// Figure 3b compares the two; Figure 3a compares positional gathering
// (MaterializePositions) against full decoding (Materialize + gather).

// Gather fills out/nulls with the values at the given positions of a
// dictionary segment, resolving the attribute vector type once.
func (s *DictionarySegment[T]) Gather(pos []types.ChunkOffset, out []T, nulls []bool) {
	switch av := s.av.(type) {
	case *FixedWidthVector[uint8]:
		gatherDict(s.dict, av.data, uint64(s.nullID), pos, out, nulls)
	case *FixedWidthVector[uint16]:
		gatherDict(s.dict, av.data, uint64(s.nullID), pos, out, nulls)
	case *FixedWidthVector[uint32]:
		gatherDict(s.dict, av.data, uint64(s.nullID), pos, out, nulls)
	case *FixedWidthVector[uint64]:
		gatherDict(s.dict, av.data, uint64(s.nullID), pos, out, nulls)
	case *BP128Vector:
		for i, p := range pos {
			id := av.GetFast(int(p))
			if id == uint64(s.nullID) {
				nulls[i] = true
				continue
			}
			out[i] = s.dict[id]
		}
	default:
		for i, p := range pos {
			v, null := s.Get(p)
			out[i], nulls[i] = v, null
		}
	}
}

func gatherDict[T types.Ordered, W uint8 | uint16 | uint32 | uint64](dict []T, data []W, nullID uint64, pos []types.ChunkOffset, out []T, nulls []bool) {
	for i, p := range pos {
		id := uint64(data[p])
		if id == nullID {
			nulls[i] = true
			continue
		}
		out[i] = dict[id]
	}
}

// Matches appends to dst the chunk offsets whose value id lies in [lo, hi).
// This is the specialized dictionary scan: predicates are translated to a
// value-id range by the caller (via LowerBound/UpperBound) and the scan
// compares integer codes without decoding.
func (s *DictionarySegment[T]) Matches(lo, hi ValueID, dst []types.ChunkOffset) []types.ChunkOffset {
	if lo >= hi {
		return dst
	}
	switch av := s.av.(type) {
	case *FixedWidthVector[uint8]:
		if hi-lo == 1 && lo <= 0xFF {
			return matchEqBytes(av.data, uint8(lo), dst)
		}
		return matchRange(av.data, uint64(lo), uint64(hi), dst)
	case *FixedWidthVector[uint16]:
		return matchRange(av.data, uint64(lo), uint64(hi), dst)
	case *FixedWidthVector[uint32]:
		return matchRange(av.data, uint64(lo), uint64(hi), dst)
	case *FixedWidthVector[uint64]:
		return matchRange(av.data, uint64(lo), uint64(hi), dst)
	case *BP128Vector:
		var buf [bp128BlockSize]uint64
		n := av.Len()
		for base := 0; base < n; base += bp128BlockSize {
			codes := av.DecodeRange(base, min(base+bp128BlockSize, n), buf[:0])
			for j, id := range codes {
				if uint64(lo) <= id && id < uint64(hi) {
					dst = append(dst, types.ChunkOffset(base+j))
				}
			}
		}
		return dst
	default:
		n := s.av.Len()
		for i := 0; i < n; i++ {
			if id := s.av.Get(i); uint64(lo) <= id && id < uint64(hi) {
				dst = append(dst, types.ChunkOffset(i))
			}
		}
		return dst
	}
}

const (
	swarOnes  = 0x0101010101010101
	swarHighs = 0x8080808080808080
)

// matchEqBytes finds the positions equal to target in a byte-wide attribute
// vector, eight codes per step: XOR against the broadcast target turns
// matches into zero bytes, and the Mycroft zero-byte test skips clean words
// with three ALU ops — the scalar analog of the SIMD scans the paper
// benchmarks. Single-value id ranges (equality probes, IS NULL) hit this.
func matchEqBytes(data []uint8, target uint8, dst []types.ChunkOffset) []types.ChunkOffset {
	pattern := swarOnes * uint64(target)
	i := 0
	for ; i+8 <= len(data); i += 8 {
		w := binary.LittleEndian.Uint64(data[i:])
		v := w ^ pattern
		if (v-swarOnes) & ^v & swarHighs == 0 {
			continue // no byte of this word matches
		}
		for j := i; j < i+8; j++ {
			if data[j] == target {
				dst = append(dst, types.ChunkOffset(j))
			}
		}
	}
	for ; i < len(data); i++ {
		if data[i] == target {
			dst = append(dst, types.ChunkOffset(i))
		}
	}
	return dst
}

func matchRange[W uint8 | uint16 | uint32 | uint64](data []W, lo, hi uint64, dst []types.ChunkOffset) []types.ChunkOffset {
	for i, id := range data {
		if lo <= uint64(id) && uint64(id) < hi {
			dst = append(dst, types.ChunkOffset(i))
		}
	}
	return dst
}

// Gather fills out/nulls with the values at the given positions of a FOR
// segment, resolving the offset vector type once.
func (s *FrameOfReferenceSegment) Gather(pos []types.ChunkOffset, out []int64, nulls []bool) {
	switch ov := s.offsets.(type) {
	case *FixedWidthVector[uint8]:
		gatherFOR(s.frames, ov.data, s.nulls, pos, out, nulls)
	case *FixedWidthVector[uint16]:
		gatherFOR(s.frames, ov.data, s.nulls, pos, out, nulls)
	case *FixedWidthVector[uint32]:
		gatherFOR(s.frames, ov.data, s.nulls, pos, out, nulls)
	case *FixedWidthVector[uint64]:
		gatherFOR(s.frames, ov.data, s.nulls, pos, out, nulls)
	case *BP128Vector:
		for i, p := range pos {
			if s.nulls != nil && s.nulls[p] {
				nulls[i] = true
				continue
			}
			out[i] = s.frames[int(p)/forBlockSize] + int64(ov.GetFast(int(p)))
		}
	default:
		for i, p := range pos {
			out[i], nulls[i] = s.Get(p)
		}
	}
}

func gatherFOR[W uint8 | uint16 | uint32 | uint64](frames []int64, data []W, segNulls []bool, pos []types.ChunkOffset, out []int64, nulls []bool) {
	for i, p := range pos {
		if segNulls != nil && segNulls[p] {
			nulls[i] = true
			continue
		}
		out[i] = frames[int(p)/forBlockSize] + int64(data[p])
	}
}

// Gather fills out/nulls with the values at the given positions of a
// run-length segment: an inlined binary search over the run ends per
// position. Random access over runs is inherently logarithmic — Figure 3a
// shows run-length as the encoding where full decoding can beat positional
// access for large position lists.
func (s *RunLengthSegment[T]) Gather(pos []types.ChunkOffset, out []T, nulls []bool) {
	ends := s.ends
	for i, p := range pos {
		lo, hi := 0, len(ends)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if ends[mid] < p {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if s.nulls != nil && s.nulls[lo] {
			nulls[i] = true
			continue
		}
		out[i] = s.values[lo]
	}
}

// Materialize decodes a full segment into a typed slice plus null flags
// (nil when no NULLs). For value segments this is zero-copy: the returned
// slices alias the segment and must not be mutated. T must match the
// segment's data type.
func Materialize[T types.Ordered](seg storage.Segment) ([]T, []bool) {
	switch s := seg.(type) {
	case *storage.ValueSegment[T]:
		return s.Values(), s.Nulls()
	case *DictionarySegment[T]:
		return s.DecodeAll()
	case *RunLengthSegment[T]:
		return s.DecodeAll()
	case *FrameOfReferenceSegment:
		vals, nulls := s.DecodeAll()
		return any(vals).([]T), nulls
	case *storage.ReferenceSegment:
		n := s.Len()
		pos := make([]types.ChunkOffset, n)
		for i := range pos {
			pos[i] = types.ChunkOffset(i)
		}
		return MaterializePositions[T](seg, pos)
	default:
		panic(fmt.Sprintf("encoding: cannot materialize %T as %s", seg, types.Native[T]()))
	}
}

// MaterializePositions gathers the values at the given offsets of a segment
// (the positional access path of Figure 3a). T must match the segment's
// data type.
func MaterializePositions[T types.Ordered](seg storage.Segment, pos []types.ChunkOffset) ([]T, []bool) {
	out := make([]T, len(pos))
	nulls := make([]bool, len(pos))
	switch s := seg.(type) {
	case *storage.ValueSegment[T]:
		vals, segNulls := s.Values(), s.Nulls()
		for i, p := range pos {
			if segNulls != nil && segNulls[p] {
				nulls[i] = true
				continue
			}
			out[i] = vals[p]
		}
	case *DictionarySegment[T]:
		s.Gather(pos, out, nulls)
	case *RunLengthSegment[T]:
		s.Gather(pos, out, nulls)
	case *FrameOfReferenceSegment:
		s.Gather(pos, any(out).([]int64), nulls)
	case *storage.ReferenceSegment:
		gatherReference(s, pos, out, nulls)
	default:
		panic(fmt.Sprintf("encoding: cannot gather from %T as %s", seg, types.Native[T]()))
	}
	return out, nulls
}

// gatherReference resolves a reference segment's positions chunk-by-chunk so
// the underlying segments are each resolved once, then scatters the results
// back into request order.
func gatherReference[T types.Ordered](s *storage.ReferenceSegment, pos []types.ChunkOffset, out []T, nulls []bool) {
	table := s.ReferencedTable()
	col := s.ReferencedColumn()
	posList := s.PosList()

	// Group the requested positions by target chunk.
	type req struct {
		offsets []types.ChunkOffset // offsets in the referenced chunk
		backMap []int               // index into out
	}
	groups := make(map[types.ChunkID]*req)
	for i, p := range pos {
		rowID := posList[p]
		if rowID.IsNull() {
			nulls[i] = true
			continue
		}
		g := groups[rowID.Chunk]
		if g == nil {
			g = &req{}
			groups[rowID.Chunk] = g
		}
		g.offsets = append(g.offsets, rowID.Offset)
		g.backMap = append(g.backMap, i)
	}
	for chunkID, g := range groups {
		seg := table.GetChunk(chunkID).GetSegment(col)
		vals, segNulls := MaterializePositions[T](seg, g.offsets)
		for j, back := range g.backMap {
			if segNulls[j] {
				nulls[back] = true
				continue
			}
			out[back] = vals[j]
		}
	}
}

// MaterializeDynamic gathers positions through the Segment interface — one
// virtual call and one Value box per element. It exists as the
// dynamic-polymorphism baseline of Figure 3b and as the fallback for
// operators without specializations.
func MaterializeDynamic[T types.Ordered](seg storage.Segment, pos []types.ChunkOffset) ([]T, []bool) {
	out := make([]T, len(pos))
	nulls := make([]bool, len(pos))
	for i, p := range pos {
		v := seg.ValueAt(p)
		if v.IsNull() {
			nulls[i] = true
			continue
		}
		out[i] = types.ToNative[T](v)
	}
	return out, nulls
}

// MaterializeValues decodes a full segment into dynamic Values (boundary
// use: result rendering, row materialization for inserts).
func MaterializeValues(seg storage.Segment) []types.Value {
	out := make([]types.Value, seg.Len())
	for i := range out {
		out[i] = seg.ValueAt(types.ChunkOffset(i))
	}
	return out
}
