package encoding

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// --- vector compression --------------------------------------------------

func TestFixedWidthVectorPicksWidth(t *testing.T) {
	cases := []struct {
		max  uint64
		want string
	}{
		{0xFF, "*encoding.FixedWidthVector[uint8]"},
		{0x100, "*encoding.FixedWidthVector[uint16]"},
		{0x10000, "*encoding.FixedWidthVector[uint32]"},
		{1 << 40, "*encoding.FixedWidthVector[uint64]"},
	}
	for _, tc := range cases {
		v := NewFixedWidthVector([]uint64{0, 1, tc.max})
		if got := reflect.TypeOf(v).String(); got != tc.want {
			t.Errorf("max %d: got %s, want %s", tc.max, got, tc.want)
		}
		if v.Get(2) != tc.max {
			t.Errorf("max %d: Get(2) = %d", tc.max, v.Get(2))
		}
	}
}

func TestVectorRoundTripProperty(t *testing.T) {
	for _, vt := range []VectorCompressionType{FixedSizeByteAligned, BitPacked128} {
		f := func(codes []uint64) bool {
			v := CompressUints(codes, vt)
			if v.Len() != len(codes) {
				return false
			}
			decoded := v.DecodeAll(nil)
			for i, c := range codes {
				if decoded[i] != c || v.Get(i) != c {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%v: %v", vt, err)
		}
	}
}

func TestBP128LargeBlockBoundaries(t *testing.T) {
	// Values straddling several blocks with very different magnitudes per
	// block, exercising per-block widths and cross-word packing.
	n := bp128BlockSize*3 + 17
	codes := make([]uint64, n)
	for i := range codes {
		switch i / bp128BlockSize {
		case 0:
			codes[i] = uint64(i % 2)
		case 1:
			codes[i] = uint64(i) * 12345
		default:
			codes[i] = 1<<63 + uint64(i)
		}
	}
	v := NewBP128Vector(codes)
	for i, c := range codes {
		if v.Get(i) != c {
			t.Fatalf("Get(%d) = %d, want %d", i, v.Get(i), c)
		}
	}
	decoded := v.DecodeAll(nil)
	for i, c := range codes {
		if decoded[i] != c {
			t.Fatalf("DecodeAll[%d] = %d, want %d", i, decoded[i], c)
		}
	}
}

func TestBP128CompressesSmallValues(t *testing.T) {
	codes := make([]uint64, 10_000)
	for i := range codes {
		codes[i] = uint64(i % 8) // 3 bits
	}
	bp := NewBP128Vector(codes)
	fw := NewFixedWidthVector(codes)
	if bp.MemoryUsage() >= fw.MemoryUsage() {
		t.Errorf("BP128 (%d bytes) should beat FSBA (%d bytes) on 3-bit values", bp.MemoryUsage(), fw.MemoryUsage())
	}
}

func TestVectorCompressionNames(t *testing.T) {
	if FixedSizeByteAligned.String() != "FSBA" || BitPacked128.String() != "SIMD-BP128" {
		t.Error("compression names wrong")
	}
	if VectorCompressionType(9).String() != "?" {
		t.Error("unknown compression name wrong")
	}
}

// --- dictionary -----------------------------------------------------------

func TestDictionarySegmentBasics(t *testing.T) {
	vals := []string{"banana", "apple", "cherry", "apple", "banana"}
	s := EncodeDictionary(vals, nil, FixedSizeByteAligned)
	if s.UniqueValueCount() != 3 {
		t.Fatalf("UniqueValueCount = %d", s.UniqueValueCount())
	}
	// Order-preserving dictionary.
	if !reflect.DeepEqual(s.Dictionary(), []string{"apple", "banana", "cherry"}) {
		t.Fatalf("Dictionary = %v", s.Dictionary())
	}
	for i, want := range vals {
		if got, null := s.Get(types.ChunkOffset(i)); null || got != want {
			t.Errorf("Get(%d) = (%q, %v)", i, got, null)
		}
	}
	if s.LowerBound("banana") != 1 || s.UpperBound("banana") != 2 {
		t.Error("Lower/UpperBound wrong")
	}
	if s.LowerBound("aaa") != 0 || s.LowerBound("zzz") != 3 {
		t.Error("bounds at extremes wrong")
	}
	if v, ok := s.ValueOfID(2); !ok || v != "cherry" {
		t.Error("ValueOfID(2) wrong")
	}
	if _, ok := s.ValueOfID(s.NullValueID()); ok {
		t.Error("null id should not decode")
	}
}

func TestDictionarySegmentNulls(t *testing.T) {
	vals := []int64{5, 0, 7}
	nulls := []bool{false, true, false}
	s := EncodeDictionary(vals, nulls, FixedSizeByteAligned)
	if s.UniqueValueCount() != 2 {
		t.Fatalf("UniqueValueCount = %d, NULL must not enter dictionary", s.UniqueValueCount())
	}
	if !s.IsNullAt(1) || s.IsNullAt(0) {
		t.Error("null flags wrong")
	}
	if !s.ValueAt(1).IsNull() {
		t.Error("ValueAt(1) should be NULL")
	}
	decoded, decNulls := s.DecodeAll()
	if decoded[0] != 5 || decoded[2] != 7 || decNulls == nil || !decNulls[1] {
		t.Errorf("DecodeAll = %v, %v", decoded, decNulls)
	}
}

func TestDictionaryMatches(t *testing.T) {
	vals := []int64{10, 20, 30, 20, 10, 40}
	s := EncodeDictionary(vals, nil, FixedSizeByteAligned)
	// value-id range for "value >= 20 && value < 40" is ids [1,3)
	got := s.Matches(s.LowerBound(20), s.LowerBound(40), nil)
	want := []types.ChunkOffset{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Matches = %v, want %v", got, want)
	}
	if got := s.Matches(3, 3, nil); len(got) != 0 {
		t.Error("empty range should match nothing")
	}
}

func TestDictionaryMatchesBP128(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i % 10)
	}
	s := EncodeDictionary(vals, nil, BitPacked128)
	got := s.Matches(s.LowerBound(3), s.UpperBound(3), nil)
	if len(got) != 100 {
		t.Errorf("Matches len = %d, want 100", len(got))
	}
	for _, p := range got {
		if vals[p] != 3 {
			t.Fatalf("offset %d has value %d", p, vals[p])
		}
	}
}

// --- run length -----------------------------------------------------------

func TestRunLengthSegment(t *testing.T) {
	vals := []int64{1, 1, 1, 2, 2, 3, 1, 1}
	s := EncodeRunLength(vals, nil)
	if s.RunCount() != 4 {
		t.Fatalf("RunCount = %d, want 4", s.RunCount())
	}
	for i, want := range vals {
		if got, null := s.Get(types.ChunkOffset(i)); null || got != want {
			t.Errorf("Get(%d) = (%d, %v), want %d", i, got, null, want)
		}
	}
	decoded, nulls := s.DecodeAll()
	if !reflect.DeepEqual(decoded, vals) || nulls != nil {
		t.Errorf("DecodeAll = %v, %v", decoded, nulls)
	}
	// Runs visited in order with correct extents.
	var runs [][3]int64
	s.ForEachRun(func(first, last types.ChunkOffset, v int64, null bool) {
		runs = append(runs, [3]int64{int64(first), int64(last), v})
	})
	want := [][3]int64{{0, 2, 1}, {3, 4, 2}, {5, 5, 3}, {6, 7, 1}}
	if !reflect.DeepEqual(runs, want) {
		t.Errorf("ForEachRun = %v, want %v", runs, want)
	}
}

func TestRunLengthNullRuns(t *testing.T) {
	vals := []string{"a", "a", "", "", "b"}
	nulls := []bool{false, false, true, true, false}
	s := EncodeRunLength(vals, nulls)
	if s.RunCount() != 3 {
		t.Fatalf("RunCount = %d, want 3", s.RunCount())
	}
	if !s.IsNullAt(2) || !s.IsNullAt(3) || s.IsNullAt(4) {
		t.Error("null flags wrong")
	}
	// A null run and a value run with equal zero values must stay separate.
	vals2 := []int64{0, 0}
	nulls2 := []bool{true, false}
	s2 := EncodeRunLength(vals2, nulls2)
	if s2.RunCount() != 2 {
		t.Errorf("null/non-null runs merged: RunCount = %d", s2.RunCount())
	}
	if EncodeRunLength([]int64{}, nil).Len() != 0 {
		t.Error("empty segment mishandled")
	}
}

// --- frame of reference ----------------------------------------------------

func TestFrameOfReference(t *testing.T) {
	vals := make([]int64, forBlockSize+100)
	for i := range vals {
		vals[i] = 1_000_000 + int64(i%50)
	}
	s := EncodeFrameOfReference(vals, nil, FixedSizeByteAligned)
	for i, want := range vals {
		if got, null := s.Get(types.ChunkOffset(i)); null || got != want {
			t.Fatalf("Get(%d) = (%d, %v), want %d", i, got, null, want)
		}
	}
	// Small offsets from a large base should compress to one byte each.
	if s.MemoryUsage() > int64(len(vals))*2 {
		t.Errorf("FOR should compress clustered values, got %d bytes for %d values", s.MemoryUsage(), len(vals))
	}
	if len(s.Frames()) != 2 {
		t.Errorf("Frames = %d, want 2 blocks", len(s.Frames()))
	}
}

func TestFrameOfReferenceNegativeAndNulls(t *testing.T) {
	vals := []int64{-100, -50, 0, 42}
	nulls := []bool{false, true, false, false}
	s := EncodeFrameOfReference(vals, nulls, BitPacked128)
	if got, null := s.Get(0); null || got != -100 {
		t.Errorf("Get(0) = (%d, %v)", got, null)
	}
	if _, null := s.Get(1); !null {
		t.Error("Get(1) should be NULL")
	}
	if !s.ValueAt(1).IsNull() || s.ValueAt(3).I != 42 {
		t.Error("dynamic path wrong")
	}
	decoded, decNulls := s.DecodeAll()
	if decoded[0] != -100 || decoded[3] != 42 || !decNulls[1] {
		t.Errorf("DecodeAll = %v, %v", decoded, decNulls)
	}
}

// --- encoder orchestration --------------------------------------------------

func TestEncodeSegmentAllSpecs(t *testing.T) {
	specs := []Spec{
		{Dictionary, FixedSizeByteAligned},
		{Dictionary, BitPacked128},
		{RunLength, FixedSizeByteAligned},
		{FrameOfReference, FixedSizeByteAligned},
		{FrameOfReference, BitPacked128},
	}
	vals := []int64{5, 5, 9, 1, 1, 1, 7}
	nulls := []bool{false, false, true, false, false, false, false}
	vs := storage.ValueSegmentFromSlice(vals, nulls)
	for _, spec := range specs {
		enc, err := EncodeSegment(vs, spec)
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		for i := range vals {
			got := enc.ValueAt(types.ChunkOffset(i))
			if nulls[i] {
				if !got.IsNull() {
					t.Errorf("%v: row %d should be NULL", spec, i)
				}
			} else if got.I != vals[i] {
				t.Errorf("%v: row %d = %v, want %d", spec, i, got, vals[i])
			}
		}
	}
}

func TestEncodeSegmentFORFallbackForStrings(t *testing.T) {
	vs := storage.ValueSegmentFromSlice([]string{"x", "y"}, nil)
	enc, err := EncodeSegment(vs, Spec{FrameOfReference, FixedSizeByteAligned})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := enc.(*DictionarySegment[string]); !ok {
		t.Errorf("FOR on strings should fall back to dictionary, got %T", enc)
	}
}

func TestEncodeChunkAndTable(t *testing.T) {
	defs := []storage.ColumnDefinition{
		{Name: "a", Type: types.TypeInt64},
		{Name: "b", Type: types.TypeString},
	}
	table := storage.NewTable("t", defs, 4, false)
	for i := 0; i < 10; i++ {
		_, err := table.AppendRow([]types.Value{types.Int(int64(i % 3)), types.Str("v")})
		if err != nil {
			t.Fatal(err)
		}
	}
	perCol := map[types.ColumnID]Spec{1: {RunLength, FixedSizeByteAligned}}
	if err := EncodeTable(table, Spec{Dictionary, FixedSizeByteAligned}, perCol); err != nil {
		t.Fatal(err)
	}
	c0 := table.GetChunk(0)
	if _, ok := c0.GetSegment(0).(*DictionarySegment[int64]); !ok {
		t.Errorf("column a should be dictionary, got %T", c0.GetSegment(0))
	}
	if _, ok := c0.GetSegment(1).(*RunLengthSegment[string]); !ok {
		t.Errorf("column b should be run-length, got %T", c0.GetSegment(1))
	}
	// Data still reads back correctly.
	for i := 0; i < 10; i++ {
		rid := types.RowID{Chunk: types.ChunkID(i / 4), Offset: types.ChunkOffset(i % 4)}
		if got := table.GetValue(0, rid); got.I != int64(i%3) {
			t.Errorf("row %d = %v", i, got)
		}
	}
	// Encoding a mutable chunk fails.
	t2 := storage.NewTable("t2", defs, 100, false)
	_, _ = t2.AppendRow([]types.Value{types.Int(1), types.Str("x")})
	if err := EncodeChunk(t2.GetChunk(0), Spec{Dictionary, FixedSizeByteAligned}, nil); err == nil {
		t.Error("encoding a mutable chunk should fail")
	}
}

func TestParseEncodingType(t *testing.T) {
	for name, want := range map[string]EncodingType{
		"Dictionary": Dictionary, "dict": Dictionary,
		"rle": RunLength, "for": FrameOfReference, "none": Unencoded,
	} {
		got, err := ParseEncodingType(name)
		if err != nil || got != want {
			t.Errorf("ParseEncodingType(%q) = (%v, %v)", name, got, err)
		}
	}
	if _, err := ParseEncodingType("bogus"); err == nil {
		t.Error("bogus encoding should fail")
	}
}

func TestSpecString(t *testing.T) {
	if got := (Spec{Dictionary, FixedSizeByteAligned}).String(); got != "Dictionary (FSBA)" {
		t.Errorf("Spec.String = %q", got)
	}
	if got := (Spec{RunLength, BitPacked128}).String(); got != "RunLength" {
		t.Errorf("Spec.String = %q", got)
	}
	if got := (Spec{FrameOfReference, BitPacked128}).String(); got != "FrameOfReference (SIMD-BP128)" {
		t.Errorf("Spec.String = %q", got)
	}
}

// --- materialization paths ---------------------------------------------------

func allSpecsInt() []Spec {
	return []Spec{
		{Unencoded, FixedSizeByteAligned},
		{Dictionary, FixedSizeByteAligned},
		{Dictionary, BitPacked128},
		{RunLength, FixedSizeByteAligned},
		{FrameOfReference, FixedSizeByteAligned},
		{FrameOfReference, BitPacked128},
	}
}

func TestMaterializeAgreesAcrossEncodings(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 5000
	vals := make([]int64, n)
	nulls := make([]bool, n)
	for i := range vals {
		vals[i] = rng.Int63n(1000)
		nulls[i] = rng.Intn(20) == 0
	}
	pos := make([]types.ChunkOffset, 0, n/4)
	for i := 0; i < n; i += 4 {
		pos = append(pos, types.ChunkOffset(rng.Intn(n)))
	}
	vs := storage.ValueSegmentFromSlice(vals, nulls)
	for _, spec := range allSpecsInt() {
		seg, err := EncodeSegment(vs, spec)
		if err != nil {
			t.Fatal(err)
		}
		full, fullNulls := Materialize[int64](seg)
		for i := range vals {
			if nulls[i] {
				if fullNulls == nil || !fullNulls[i] {
					t.Fatalf("%v: full null flag lost at %d", spec, i)
				}
			} else if full[i] != vals[i] {
				t.Fatalf("%v: full[%d] = %d, want %d", spec, i, full[i], vals[i])
			}
		}
		got, gotNulls := MaterializePositions[int64](seg, pos)
		dyn, dynNulls := MaterializeDynamic[int64](seg, pos)
		for i, p := range pos {
			if nulls[p] {
				if !gotNulls[i] || !dynNulls[i] {
					t.Fatalf("%v: positional null flag lost at %d", spec, i)
				}
			} else if got[i] != vals[p] || dyn[i] != vals[p] {
				t.Fatalf("%v: positional[%d] = %d/%d, want %d", spec, i, got[i], dyn[i], vals[p])
			}
		}
	}
}

func TestMaterializeReferenceSegment(t *testing.T) {
	defs := []storage.ColumnDefinition{{Name: "v", Type: types.TypeInt64}}
	table := storage.NewTable("base", defs, 3, false)
	for i := 0; i < 9; i++ {
		_, _ = table.AppendRow([]types.Value{types.Int(int64(i * 11))})
	}
	if err := EncodeTable(table, Spec{Dictionary, FixedSizeByteAligned}, nil); err != nil {
		t.Fatal(err)
	}
	pos := types.PosList{
		{Chunk: 2, Offset: 0}, // 66
		{Chunk: 0, Offset: 2}, // 22
		types.NullRowID,
		{Chunk: 1, Offset: 1}, // 44
	}
	ref := storage.NewReferenceSegment(table, 0, pos)
	vals, nulls := Materialize[int64](ref)
	wantVals := []int64{66, 22, 0, 44}
	wantNulls := []bool{false, false, true, false}
	for i := range wantVals {
		if nulls[i] != wantNulls[i] || (!nulls[i] && vals[i] != wantVals[i]) {
			t.Errorf("ref[%d] = (%d, %v), want (%d, %v)", i, vals[i], nulls[i], wantVals[i], wantNulls[i])
		}
	}
	sub, subNulls := MaterializePositions[int64](ref, []types.ChunkOffset{3, 2})
	if sub[0] != 44 || !subNulls[1] {
		t.Errorf("positional ref gather = %v, %v", sub, subNulls)
	}
}

// Property: encode → materialize round trip for every encoding spec.
func TestEncodingRoundTripProperty(t *testing.T) {
	for _, spec := range allSpecsInt() {
		spec := spec
		f := func(vals []int64, nullSeed []bool) bool {
			nulls := make([]bool, len(vals))
			for i := range nulls {
				if i < len(nullSeed) {
					nulls[i] = nullSeed[i]
				}
			}
			vs := storage.ValueSegmentFromSlice(vals, nulls)
			seg, err := EncodeSegment(vs, spec)
			if err != nil {
				return false
			}
			if seg.Len() != len(vals) {
				return false
			}
			got, gotNulls := Materialize[int64](seg)
			for i := range vals {
				if nulls[i] {
					if gotNulls == nil || !gotNulls[i] {
						return false
					}
				} else if got[i] != vals[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%v: %v", spec, err)
		}
	}
}

func TestStringEncodingRoundTripProperty(t *testing.T) {
	for _, spec := range []Spec{{Dictionary, FixedSizeByteAligned}, {Dictionary, BitPacked128}, {RunLength, FixedSizeByteAligned}} {
		spec := spec
		f := func(vals []string) bool {
			vs := storage.ValueSegmentFromSlice(vals, nil)
			seg, err := EncodeSegment(vs, spec)
			if err != nil {
				return false
			}
			got, _ := Materialize[string](seg)
			for i := range vals {
				if got[i] != vals[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%v: %v", spec, err)
		}
	}
}

func TestMaterializeValuesDynamicBoundary(t *testing.T) {
	vs := storage.ValueSegmentFromSlice([]float64{1.5, 2.5}, nil)
	vals := MaterializeValues(vs)
	if len(vals) != 2 || vals[1].F != 2.5 {
		t.Errorf("MaterializeValues = %v", vals)
	}
}
