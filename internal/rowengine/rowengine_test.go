package rowengine

import (
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"

	"hyrise/internal/pipeline"
	"hyrise/internal/storage"
	"hyrise/internal/tpch"
	"hyrise/internal/types"
)

// The row engine must agree with the columnar engine on the full TPC-H
// suite — it is the Figure 6 baseline, so identical semantics matter.
func TestRowEngineAgreesWithColumnarOnTPCH(t *testing.T) {
	const sf = 0.002
	sm := storage.NewStorageManager()
	if err := tpch.Generate(sm, tpch.Config{ScaleFactor: sf, ChunkSize: 500, UseMvcc: true, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	columnar := pipeline.NewEngine(pipeline.DefaultConfig(), sm)
	t.Cleanup(columnar.Close)
	session := columnar.NewSession()
	rows := NewFromStorage(sm)

	for _, num := range tpch.QueryNumbers() {
		sql := tpch.Queries(sf)[num]
		want, err := session.ExecuteOne(sql)
		if err != nil {
			t.Fatalf("columnar Q%d: %v", num, err)
		}
		got, _, err := rows.Query(sql)
		if err != nil {
			t.Fatalf("rowengine Q%d: %v", num, err)
		}
		wantFlat := canonicalRows(pipeline.ValueRows(want.Table))
		gotFlat := canonicalRows(got)
		if !reflect.DeepEqual(wantFlat, gotFlat) {
			t.Errorf("Q%d: row engine disagrees (%d vs %d rows)", num, len(gotFlat), len(wantFlat))
			if len(wantFlat) < 6 && len(gotFlat) < 6 {
				t.Errorf("  got:  %v\n  want: %v", gotFlat, wantFlat)
			}
		}
	}
}

func canonicalRows(rows [][]types.Value) []string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		cells := make([]string, len(r))
		for i, v := range r {
			s := v.String()
			if f, err := strconv.ParseFloat(s, 64); err == nil && f == f {
				s = strconv.FormatFloat(f, 'g', 6, 64)
			}
			cells[i] = s
		}
		out = append(out, strings.Join(cells, "|"))
	}
	sort.Strings(out)
	return out
}

func TestRowEngineBasics(t *testing.T) {
	sm := storage.NewStorageManager()
	table := storage.NewTable("t", []storage.ColumnDefinition{
		{Name: "a", Type: types.TypeInt64},
		{Name: "b", Type: types.TypeString},
	}, 10, false)
	for i := 0; i < 20; i++ {
		_, _ = table.AppendRow([]types.Value{types.Int(int64(i)), types.Str("v")})
	}
	table.FinalizeLastChunk()
	_ = sm.AddTable(table)

	e := NewFromStorage(sm)
	rows, cols, err := e.Query("SELECT a FROM t WHERE a >= 15 ORDER BY a DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 1 || cols[0] != "a" {
		t.Errorf("cols = %v", cols)
	}
	if len(rows) != 3 || rows[0][0].I != 19 || rows[2][0].I != 17 {
		t.Errorf("rows = %v", rows)
	}
	// Errors propagate.
	if _, _, err := e.Query("SELECT nope FROM t"); err == nil {
		t.Error("unknown column should fail")
	}
	if _, _, err := e.Query("SELECT * FROM missing"); err == nil {
		t.Error("unknown table should fail")
	}
}
