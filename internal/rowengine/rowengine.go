// Package rowengine is the row-oriented baseline engine of the Figure 6
// comparison (DESIGN.md substitution S4). It shares Hyrise's SQL frontend
// (parser, translator, optimizer) but executes plans over row-major table
// copies with tuple-at-a-time expression evaluation — the classic
// row-store architecture: no chunking, no compression, no pruning, no
// vectorization, dynamic Value boxing per cell.
package rowengine

import (
	"fmt"
	"sort"
	"strings"

	"hyrise/internal/expression"
	"hyrise/internal/lqp"
	"hyrise/internal/optimizer"
	"hyrise/internal/sqlparser"
	"hyrise/internal/statistics"
	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// RowTable is a row-major relation.
type RowTable struct {
	Defs []storage.ColumnDefinition
	Rows [][]types.Value
}

// Engine executes SQL over row-major tables.
type Engine struct {
	tables map[string]*RowTable
	// columnar mirrors the row tables so the shared translator/optimizer can
	// resolve schemas and statistics.
	columnar *storage.StorageManager
	opt      *optimizer.Optimizer
	subCache map[string]any
}

// NewFromStorage copies every table of a columnar catalog into row-major
// form.
func NewFromStorage(sm *storage.StorageManager) *Engine {
	e := &Engine{
		tables:   make(map[string]*RowTable),
		columnar: sm,
		opt:      optimizer.NewDefault(statistics.NewCache(statistics.EqualHeight)),
		subCache: make(map[string]any),
	}
	for _, name := range sm.TableNames() {
		t, err := sm.GetTable(name)
		if err != nil {
			continue
		}
		rt := &RowTable{Defs: t.ColumnDefinitions()}
		for ci := 0; ci < t.ChunkCount(); ci++ {
			c := t.GetChunk(types.ChunkID(ci))
			for o := 0; o < c.Size(); o++ {
				row := make([]types.Value, t.ColumnCount())
				for col := 0; col < t.ColumnCount(); col++ {
					row[col] = c.GetSegment(types.ColumnID(col)).ValueAt(types.ChunkOffset(o))
				}
				rt.Rows = append(rt.Rows, row)
			}
		}
		e.tables[strings.ToLower(name)] = rt
	}
	return e
}

// Query parses, plans (with the shared optimizer), and executes SQL,
// returning rows and column names.
func (e *Engine) Query(sql string) ([][]types.Value, []string, error) {
	stmt, err := sqlparser.ParseOne(sql)
	if err != nil {
		return nil, nil, err
	}
	tr := &lqp.Translator{SM: e.columnar}
	plan, err := tr.Translate(stmt)
	if err != nil {
		return nil, nil, err
	}
	plan, err = e.opt.Optimize(plan)
	if err != nil {
		return nil, nil, err
	}
	rows, err := e.exec(plan, nil)
	if err != nil {
		return nil, nil, err
	}
	return rows, plan.Schema().Names(), nil
}

// exec interprets the LQP tuple-at-a-time.
func (e *Engine) exec(node lqp.Node, params []types.Value) ([][]types.Value, error) {
	switch n := node.(type) {
	case *lqp.StoredTableNode:
		rt, ok := e.tables[strings.ToLower(n.TableName)]
		if !ok {
			return nil, fmt.Errorf("rowengine: no table %q", n.TableName)
		}
		return rt.Rows, nil

	case *lqp.DummyTableNode:
		return [][]types.Value{{}}, nil

	case *lqp.ValidateNode, *lqp.AliasNode:
		return e.exec(n.Inputs()[0], params)

	case *lqp.PredicateNode:
		in, err := e.exec(n.Inputs()[0], params)
		if err != nil {
			return nil, err
		}
		var out [][]types.Value
		for _, row := range in {
			keep, err := e.evalBool(n.Predicate, row, params)
			if err != nil {
				return nil, err
			}
			if keep {
				out = append(out, row)
			}
		}
		return out, nil

	case *lqp.ProjectionNode:
		in, err := e.exec(n.Inputs()[0], params)
		if err != nil {
			return nil, err
		}
		out := make([][]types.Value, len(in))
		for i, row := range in {
			proj := make([]types.Value, len(n.Exprs))
			for j, expr := range n.Exprs {
				v, err := e.evalRow(expr, row, params)
				if err != nil {
					return nil, err
				}
				proj[j] = v
			}
			out[i] = proj
		}
		return out, nil

	case *lqp.JoinNode:
		return e.execJoin(n, params)

	case *lqp.AggregateNode:
		return e.execAggregate(n, params)

	case *lqp.SortNode:
		in, err := e.exec(n.Inputs()[0], params)
		if err != nil {
			return nil, err
		}
		keys := make([][]types.Value, len(in))
		for i, row := range in {
			keys[i] = make([]types.Value, len(n.Keys))
			for k, key := range n.Keys {
				v, err := e.evalRow(key.Expr, row, params)
				if err != nil {
					return nil, err
				}
				keys[i][k] = v
			}
		}
		perm := make([]int, len(in))
		for i := range perm {
			perm[i] = i
		}
		sort.SliceStable(perm, func(a, b int) bool {
			for k, key := range n.Keys {
				c := compareNullsLast(keys[perm[a]][k], keys[perm[b]][k])
				if c != 0 {
					if key.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		out := make([][]types.Value, len(in))
		for i, p := range perm {
			out[i] = in[p]
		}
		return out, nil

	case *lqp.LimitNode:
		in, err := e.exec(n.Inputs()[0], params)
		if err != nil {
			return nil, err
		}
		if int64(len(in)) > n.N {
			in = in[:n.N]
		}
		return in, nil

	default:
		return nil, fmt.Errorf("rowengine: unsupported node %T", node)
	}
}

func compareNullsLast(a, b types.Value) int {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull():
		return 1
	case b.IsNull():
		return -1
	}
	c, _ := types.Compare(a, b)
	return c
}

func (e *Engine) execJoin(n *lqp.JoinNode, params []types.Value) ([][]types.Value, error) {
	left, err := e.exec(n.Inputs()[0], params)
	if err != nil {
		return nil, err
	}
	right, err := e.exec(n.Inputs()[1], params)
	if err != nil {
		return nil, err
	}
	nLeft := len(n.Inputs()[0].Schema())

	// Collect equi predicates as a composite hash key; the rest evaluate
	// per pair.
	leftKeys, rightKeys, residuals, hasEqui := operatorsSplit(n.Predicates, nLeft)

	combined := func(l, r []types.Value) []types.Value {
		row := make([]types.Value, 0, len(l)+len(r))
		row = append(row, l...)
		row = append(row, r...)
		return row
	}
	nullRight := make([]types.Value, len(n.Inputs()[1].Schema()))
	for i := range nullRight {
		nullRight[i] = types.NullValue
	}
	nullLeft := make([]types.Value, nLeft)
	for i := range nullLeft {
		nullLeft[i] = types.NullValue
	}

	residualOK := func(l, r []types.Value) (bool, error) {
		if len(residuals) == 0 {
			return true, nil
		}
		row := combined(l, r)
		for _, res := range residuals {
			ok, err := e.evalBool(res, row, params)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	}

	// candidates yields indices into right so outer modes can track which
	// right rows matched.
	var candidates func(l []types.Value) ([]int, error)
	if hasEqui {
		keyOf := func(row []types.Value, keys []expression.Expression) (string, bool, error) {
			var sb strings.Builder
			for _, k := range keys {
				kv, err := e.evalRow(k, row, params)
				if err != nil {
					return "", false, err
				}
				if kv.IsNull() {
					return "", false, nil
				}
				kv = canonical(kv)
				sb.WriteByte(byte('0' + kv.Type))
				sb.WriteString(kv.String())
				sb.WriteByte(0)
			}
			return sb.String(), true, nil
		}
		ht := make(map[string][]int, len(right))
		for ri, r := range right {
			k, ok, err := keyOf(r, rightKeys)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			ht[k] = append(ht[k], ri)
		}
		candidates = func(l []types.Value) ([]int, error) {
			k, ok, err := keyOf(l, leftKeys)
			if err != nil || !ok {
				return nil, err
			}
			return ht[k], nil
		}
	} else {
		all := make([]int, len(right))
		for i := range all {
			all[i] = i
		}
		candidates = func([]types.Value) ([]int, error) { return all, nil }
	}

	matchedRight := make([]bool, len(right))
	var out [][]types.Value
	for _, l := range left {
		cands, err := candidates(l)
		if err != nil {
			return nil, err
		}
		matched := false
		for _, ri := range cands {
			r := right[ri]
			ok, err := residualOK(l, r)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			matched = true
			matchedRight[ri] = true
			switch n.Kind {
			case lqp.JoinSemi, lqp.JoinAnti:
			default:
				out = append(out, combined(l, r))
			}
			if n.Kind == lqp.JoinSemi || n.Kind == lqp.JoinAnti {
				break
			}
		}
		switch n.Kind {
		case lqp.JoinSemi:
			if matched {
				out = append(out, l)
			}
		case lqp.JoinAnti:
			if !matched {
				out = append(out, l)
			}
		case lqp.JoinLeft, lqp.JoinFull:
			if !matched {
				out = append(out, combined(l, nullRight))
			}
		}
	}
	if n.Kind == lqp.JoinRight || n.Kind == lqp.JoinFull {
		for ri, m := range matchedRight {
			if !m {
				out = append(out, combined(nullLeft, right[ri]))
			}
		}
	}
	return out, nil
}

func canonical(v types.Value) types.Value {
	if v.Type == types.TypeFloat64 && v.F == float64(int64(v.F)) {
		return types.Int(int64(v.F))
	}
	return v
}

// operatorsSplit mirrors the PQP translator's equi-predicate split without
// importing the operators package (no dependency between the engines).
func operatorsSplit(preds []expression.Expression, nLeft int) (leftKeys, rightKeys, residuals []expression.Expression, ok bool) {
	for _, p := range preds {
		cmp, isCmp := p.(*expression.Comparison)
		if isCmp && cmp.Op == expression.Eq {
			lSide, lok := side(cmp.Left, nLeft)
			rSide, rok := side(cmp.Right, nLeft)
			if lok && rok {
				switch {
				case lSide == 0 && rSide == 1:
					leftKeys = append(leftKeys, cmp.Left)
					rightKeys = append(rightKeys, shift(cmp.Right, -nLeft))
					continue
				case lSide == 1 && rSide == 0:
					leftKeys = append(leftKeys, cmp.Right)
					rightKeys = append(rightKeys, shift(cmp.Left, -nLeft))
					continue
				}
			}
		}
		residuals = append(residuals, p)
	}
	return leftKeys, rightKeys, residuals, len(leftKeys) > 0
}

func side(e expression.Expression, nLeft int) (int, bool) {
	s := -1
	ok := true
	expression.VisitAll(e, func(x expression.Expression) {
		if bc, isCol := x.(*expression.BoundColumn); isCol {
			v := 0
			if bc.Index >= nLeft {
				v = 1
			}
			if s == -1 {
				s = v
			} else if s != v {
				ok = false
			}
		}
	})
	if s == -1 {
		return 0, false
	}
	return s, ok
}

func shift(e expression.Expression, delta int) expression.Expression {
	return expression.Transform(e, func(x expression.Expression) expression.Expression {
		if bc, ok := x.(*expression.BoundColumn); ok {
			return &expression.BoundColumn{Index: bc.Index + delta, Name: bc.Name, DT: bc.DT}
		}
		return nil
	})
}

func (e *Engine) execAggregate(n *lqp.AggregateNode, params []types.Value) ([][]types.Value, error) {
	in, err := e.exec(n.Inputs()[0], params)
	if err != nil {
		return nil, err
	}
	type state struct {
		keys     []types.Value
		sums     []float64
		counts   []int64
		mins     []types.Value
		maxs     []types.Value
		distinct []map[types.Value]struct{}
		seen     []bool
	}
	groups := make(map[string]*state)
	var order []string

	var keyBuf strings.Builder
	for _, row := range in {
		keyBuf.Reset()
		keys := make([]types.Value, len(n.GroupBy))
		for i, g := range n.GroupBy {
			v, err := e.evalRow(g, row, params)
			if err != nil {
				return nil, err
			}
			keys[i] = v
			keyBuf.WriteByte(byte('0' + v.Type))
			keyBuf.WriteString(v.String())
			keyBuf.WriteByte(0)
		}
		k := keyBuf.String()
		st, ok := groups[k]
		if !ok {
			st = &state{
				keys:     keys,
				sums:     make([]float64, len(n.Aggregates)),
				counts:   make([]int64, len(n.Aggregates)),
				mins:     make([]types.Value, len(n.Aggregates)),
				maxs:     make([]types.Value, len(n.Aggregates)),
				distinct: make([]map[types.Value]struct{}, len(n.Aggregates)),
				seen:     make([]bool, len(n.Aggregates)),
			}
			groups[k] = st
			order = append(order, k)
		}
		for i, agg := range n.Aggregates {
			if agg.Fn == expression.AggCountStar {
				st.counts[i]++
				continue
			}
			v, err := e.evalRow(agg.Arg, row, params)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				continue
			}
			switch agg.Fn {
			case expression.AggCount:
				st.counts[i]++
			case expression.AggCountDistinct:
				if st.distinct[i] == nil {
					st.distinct[i] = make(map[types.Value]struct{})
				}
				st.distinct[i][v] = struct{}{}
			case expression.AggSum, expression.AggAvg:
				st.sums[i] += v.AsFloat()
				st.counts[i]++
				st.seen[i] = true
			case expression.AggMin:
				if !st.seen[i] || compareNullsLast(v, st.mins[i]) < 0 {
					st.mins[i] = v
				}
				st.seen[i] = true
			case expression.AggMax:
				if !st.seen[i] || compareNullsLast(v, st.maxs[i]) > 0 {
					st.maxs[i] = v
				}
				st.seen[i] = true
			}
		}
	}
	if len(n.GroupBy) == 0 && len(groups) == 0 {
		st := &state{
			sums:     make([]float64, len(n.Aggregates)),
			counts:   make([]int64, len(n.Aggregates)),
			mins:     make([]types.Value, len(n.Aggregates)),
			maxs:     make([]types.Value, len(n.Aggregates)),
			distinct: make([]map[types.Value]struct{}, len(n.Aggregates)),
			seen:     make([]bool, len(n.Aggregates)),
		}
		groups[""] = st
		order = append(order, "")
	}

	schema := n.Schema()
	var out [][]types.Value
	for _, k := range order {
		st := groups[k]
		row := make([]types.Value, 0, len(schema))
		row = append(row, st.keys...)
		for i, agg := range n.Aggregates {
			switch agg.Fn {
			case expression.AggCountStar, expression.AggCount:
				row = append(row, types.Int(st.counts[i]))
			case expression.AggCountDistinct:
				row = append(row, types.Int(int64(len(st.distinct[i]))))
			case expression.AggSum:
				if !st.seen[i] {
					row = append(row, types.NullValue)
				} else if schema[len(st.keys)+i].DT == types.TypeInt64 {
					row = append(row, types.Int(int64(st.sums[i])))
				} else {
					row = append(row, types.Float(st.sums[i]))
				}
			case expression.AggAvg:
				if st.counts[i] == 0 {
					row = append(row, types.NullValue)
				} else {
					row = append(row, types.Float(st.sums[i]/float64(st.counts[i])))
				}
			case expression.AggMin:
				if !st.seen[i] {
					row = append(row, types.NullValue)
				} else {
					row = append(row, st.mins[i])
				}
			case expression.AggMax:
				if !st.seen[i] {
					row = append(row, types.NullValue)
				} else {
					row = append(row, st.maxs[i])
				}
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// evalRow evaluates an expression against one row (tuple-at-a-time, N=1
// evaluation contexts — deliberately the slow dynamic path).
func (e *Engine) evalRow(expr expression.Expression, row []types.Value, params []types.Value) (types.Value, error) {
	ec := e.rowContext(row, params)
	v, err := expression.Evaluate(expr, ec)
	if err != nil {
		return types.NullValue, err
	}
	return v.ValueAt(0), nil
}

func (e *Engine) evalBool(expr expression.Expression, row []types.Value, params []types.Value) (bool, error) {
	ec := e.rowContext(row, params)
	keep, err := expression.EvaluateBool(expr, ec)
	if err != nil {
		return false, err
	}
	return keep[0], nil
}

func (e *Engine) rowContext(row []types.Value, params []types.Value) *expression.Context {
	ec := &expression.Context{
		N:      1,
		Params: params,
		Column: func(i int) (*expression.Vector, error) {
			if i >= len(row) {
				return nil, fmt.Errorf("rowengine: column %d out of range", i)
			}
			return expression.ConstVector(row[i], 1), nil
		},
	}
	ec.ExecScalarSubquery = func(sub *expression.Subquery, ps []types.Value) (types.Value, error) {
		key := fmt.Sprintf("s:%p:%v", sub, ps)
		if v, ok := e.subCache[key]; ok {
			return v.(types.Value), nil
		}
		plan, ok := sub.Plan.(lqp.Node)
		if !ok {
			return types.NullValue, fmt.Errorf("rowengine: subquery plan is %T", sub.Plan)
		}
		rows, err := e.exec(plan, ps)
		if err != nil {
			return types.NullValue, err
		}
		out := types.NullValue
		if len(rows) == 1 && len(rows[0]) > 0 {
			out = rows[0][0]
		} else if len(rows) > 1 {
			return types.NullValue, fmt.Errorf("rowengine: scalar subquery returned %d rows", len(rows))
		}
		e.subCache[key] = out
		return out, nil
	}
	ec.ExecInSubquery = func(sub *expression.Subquery, ps []types.Value) (*expression.ValueSet, error) {
		key := fmt.Sprintf("i:%p:%v", sub, ps)
		if v, ok := e.subCache[key]; ok {
			return v.(*expression.ValueSet), nil
		}
		plan, ok := sub.Plan.(lqp.Node)
		if !ok {
			return nil, fmt.Errorf("rowengine: subquery plan is %T", sub.Plan)
		}
		rows, err := e.exec(plan, ps)
		if err != nil {
			return nil, err
		}
		set := expression.NewValueSet()
		for _, r := range rows {
			if len(r) > 0 {
				set.Add(r[0])
			}
		}
		e.subCache[key] = set
		return set, nil
	}
	ec.ExecExistsSubquery = func(sub *expression.Subquery, ps []types.Value) (bool, error) {
		key := fmt.Sprintf("e:%p:%v", sub, ps)
		if v, ok := e.subCache[key]; ok {
			return v.(bool), nil
		}
		plan, ok := sub.Plan.(lqp.Node)
		if !ok {
			return false, fmt.Errorf("rowengine: subquery plan is %T", sub.Plan)
		}
		rows, err := e.exec(plan, ps)
		if err != nil {
			return false, err
		}
		out := len(rows) > 0
		e.subCache[key] = out
		return out, nil
	}
	return ec
}
