// Package persistence adds durability to the engine: a group-commit
// write-ahead log (WAL) plus background snapshots that serialize chunks in
// their encoded segment form and truncate the log up to the snapshot LSN.
// On boot, the manager restores the latest snapshot and replays the log
// suffix; recovery is crash-safe against torn and truncated tails — a bad
// CRC ends replay at the last durable commit.
package persistence

import (
	"encoding/binary"
	"fmt"
	"math"

	"hyrise/internal/types"
)

// writer accumulates the primitive encodings shared by WAL records and the
// snapshot format.
type writer struct {
	buf []byte
}

func (w *writer) uvarint(v uint64)  { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) byte(b byte)       { w.buf = append(w.buf, b) }
func (w *writer) bytes(b []byte)    { w.buf = append(w.buf, b...) }
func (w *writer) varint(v int64)    { w.buf = binary.AppendVarint(w.buf, v) }
func (w *writer) uint64le(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

func (w *writer) string_(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *writer) value(v types.Value) error {
	switch v.Type {
	case types.TypeNull:
		w.byte(0)
	case types.TypeInt64:
		w.byte(1)
		w.varint(v.I)
	case types.TypeFloat64:
		w.byte(2)
		w.uint64le(math.Float64bits(v.F))
	case types.TypeString:
		w.byte(3)
		w.string_(v.S)
	case types.TypeBool:
		w.byte(4)
		w.varint(v.I)
	default:
		return fmt.Errorf("persistence: cannot encode value of type %v", v.Type)
	}
	return nil
}

// bitmap writes bools as a length-prefixed bitmap.
func (w *writer) bitmap(b []bool) {
	w.uvarint(uint64(len(b)))
	var cur byte
	for i, v := range b {
		if v {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			w.byte(cur)
			cur = 0
		}
	}
	if len(b)%8 != 0 {
		w.byte(cur)
	}
}

// reader consumes the primitive encodings with sticky error state, so
// decoding corrupt input degrades to an error instead of a panic.
type reader struct {
	buf []byte
	err error
}

func (r *reader) fail(msg string) {
	if r.err == nil {
		r.err = fmt.Errorf("persistence: corrupt record: %s", msg)
	}
}

func (r *reader) byte_() byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) == 0 {
		r.fail("unexpected end of input")
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) uint64le() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.fail("short uint64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}

func (r *reader) string_() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)) {
		r.fail("string length exceeds input")
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

func (r *reader) value() types.Value {
	switch tag := r.byte_(); tag {
	case 0:
		return types.NullValue
	case 1:
		return types.Int(r.varint())
	case 2:
		return types.Float(math.Float64frombits(r.uint64le()))
	case 3:
		return types.Str(r.string_())
	case 4:
		return types.Value{Type: types.TypeBool, I: r.varint()}
	default:
		if r.err == nil {
			r.fail(fmt.Sprintf("unknown value tag %d", tag))
		}
		return types.NullValue
	}
}

func (r *reader) bitmap() []bool {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	nBytes := (n + 7) / 8
	if nBytes > uint64(len(r.buf)) {
		r.fail("bitmap exceeds input")
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = r.buf[i/8]&(1<<(i%8)) != 0
	}
	r.buf = r.buf[nBytes:]
	return out
}
