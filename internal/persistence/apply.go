package persistence

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// Applier is the shared WAL-replay core: crash recovery feeds it the local
// log's records, and a replication follower feeds it the exact same framed
// bytes shipped from the primary. Insert and delete records buffer until
// their transaction's commit record arrives (each commit batch is appended
// atomically on the primary, so records of one transaction are contiguous);
// DDL records apply immediately. An Applier is not safe for concurrent use —
// one goroutine replays, while concurrent readers are protected by the
// storage layer's chunk locks and atomic MVCC cells.
type Applier struct {
	sm *storage.StorageManager
	// onCommit, when non-nil, fires after each commit record's operations
	// have been applied and its row versions stamped. A replication follower
	// publishes the commit id here, so readers advance to the new commit
	// barrier only once it is fully materialized.
	onCommit func(cid types.CommitID)

	pending []*record
	maxCID  types.CommitID
	maxTID  types.TransactionID
}

// NewApplier creates an applier over a catalog. onCommit may be nil.
func NewApplier(sm *storage.StorageManager, onCommit func(types.CommitID)) *Applier {
	return &Applier{sm: sm, onCommit: onCommit}
}

// MaxIDs returns the highest commit and transaction ids seen so far.
func (a *Applier) MaxIDs() (types.CommitID, types.TransactionID) {
	return a.maxCID, a.maxTID
}

// Reset drops buffered, uncommitted operations (a follower re-bootstrapping
// from a fresh snapshot must not leak half a transaction into the new state).
func (a *Applier) Reset() { a.pending = nil }

// apply applies one decoded record.
func (a *Applier) apply(rec *record) error {
	if rec.tid > a.maxTID {
		a.maxTID = rec.tid
	}
	switch rec.kind {
	case recInsert, recDelete:
		a.pending = append(a.pending, rec)
		return nil
	case recCommit:
		if rec.cid > a.maxCID {
			a.maxCID = rec.cid
		}
		ops := a.pending
		a.pending = nil
		for _, op := range ops {
			if err := a.applyOp(op, rec.cid); err != nil {
				return err
			}
		}
		if a.onCommit != nil {
			a.onCommit(rec.cid)
		}
		return nil
	case recCreateTable:
		if a.sm.HasTable(rec.table) {
			return nil // checkpoint raced the DDL append: already in snapshot
		}
		return a.sm.AddTable(storage.NewTable(rec.table, rec.defs, rec.chunkSize, rec.useMvcc))
	case recDropTable:
		if !a.sm.HasTable(rec.table) {
			return nil
		}
		return a.sm.DropTable(rec.table)
	case recCreateView:
		if _, ok := a.sm.GetView(rec.view); ok {
			return nil
		}
		return a.sm.AddView(rec.view, rec.viewSQL)
	case recDropView:
		if _, ok := a.sm.GetView(rec.view); !ok {
			return nil
		}
		return a.sm.DropView(rec.view)
	default:
		return fmt.Errorf("persistence: replay: unknown record kind %d", rec.kind)
	}
}

// applyOp applies one committed redo operation.
func (a *Applier) applyOp(rec *record, cid types.CommitID) error {
	t, err := a.sm.GetTable(rec.table)
	if err != nil {
		return fmt.Errorf("persistence: replay references %w", err)
	}
	switch rec.kind {
	case recInsert:
		if _, err := t.RestoreRowAt(rec.row, rec.values); err != nil {
			return fmt.Errorf("persistence: replay insert into %q: %w", rec.table, err)
		}
		if mvcc := t.GetChunk(rec.row.Chunk).MvccData(); mvcc != nil {
			mvcc.SetBegin(rec.row.Offset, cid)
			mvcc.SetEnd(rec.row.Offset, types.MaxCommitID)
		}
	case recDelete:
		if int(rec.row.Chunk) >= t.ChunkCount() {
			return fmt.Errorf("persistence: replay delete from %q: chunk %d missing", rec.table, rec.row.Chunk)
		}
		chunk := t.GetChunk(rec.row.Chunk)
		if int(rec.row.Offset) >= chunk.Size() {
			return fmt.Errorf("persistence: replay delete from %q: row %d/%d missing", rec.table, rec.row.Chunk, rec.row.Offset)
		}
		if mvcc := chunk.MvccData(); mvcc != nil {
			mvcc.SetEnd(rec.row.Offset, cid)
		}
	}
	return nil
}

// ApplyFrames decodes and applies a run of complete on-disk WAL frames —
// the exact bytes a primary ships. Unlike local replay, a torn or corrupt
// frame is an error here: the transport delivers whole frames or nothing.
func (a *Applier) ApplyFrames(buf []byte) error {
	for len(buf) > 0 {
		if len(buf) < frameHeader {
			return fmt.Errorf("persistence: short WAL frame header (%d bytes)", len(buf))
		}
		length := binary.LittleEndian.Uint32(buf[:4])
		wantCRC := binary.LittleEndian.Uint32(buf[4:8])
		if length == 0 || length > maxRecordLen {
			return fmt.Errorf("persistence: bad WAL frame length %d", length)
		}
		if len(buf) < frameHeader+int(length) {
			return fmt.Errorf("persistence: truncated WAL frame (want %d, have %d bytes)", length, len(buf)-frameHeader)
		}
		payload := buf[frameHeader : frameHeader+int(length)]
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return fmt.Errorf("persistence: WAL frame fails CRC check")
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return err
		}
		if err := a.apply(rec); err != nil {
			return err
		}
		buf = buf[frameHeader+int(length):]
	}
	return nil
}

// CompleteFramesPrefix returns the length of the longest prefix of buf that
// consists of whole frames (a shipper uses it to cut a read at a frame
// boundary; LSNs always address such boundaries).
func CompleteFramesPrefix(buf []byte) int {
	off := 0
	for off+frameHeader <= len(buf) {
		length := int(binary.LittleEndian.Uint32(buf[off:]))
		if length == 0 || length > maxRecordLen {
			break
		}
		if off+frameHeader+length > len(buf) {
			break
		}
		off += frameHeader + length
	}
	return off
}
