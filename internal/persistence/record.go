package persistence

import (
	"fmt"

	"hyrise/internal/concurrency"
	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// Record kinds. The numeric values are part of the on-disk WAL format.
const (
	recInsert byte = iota + 1
	recDelete
	recCommit
	recCreateTable
	recDropTable
	recCreateView
	recDropView
)

// record is one decoded WAL record. Insert and delete records buffer until
// the transaction's commit record makes them effective; DDL records apply
// immediately (they are appended durably outside any transaction).
type record struct {
	kind byte
	tid  types.TransactionID
	cid  types.CommitID // recCommit

	table  string      // recInsert, recDelete, recCreateTable, recDropTable
	row    types.RowID // recInsert, recDelete
	values []types.Value

	chunkSize int  // recCreateTable
	useMvcc   bool // recCreateTable
	defs      []storage.ColumnDefinition

	view    string // recCreateView, recDropView
	viewSQL string // recCreateView
}

// appendRedoOp encodes an insert or delete redo operation.
func appendRedoOp(w *writer, tid types.TransactionID, op concurrency.RedoOp) error {
	switch op.Kind {
	case concurrency.RedoInsert:
		w.byte(recInsert)
		w.uvarint(uint64(tid))
		w.string_(op.Table)
		w.uvarint(uint64(op.Row.Chunk))
		w.uvarint(uint64(op.Row.Offset))
		w.uvarint(uint64(len(op.Values)))
		for _, v := range op.Values {
			if err := w.value(v); err != nil {
				return err
			}
		}
	case concurrency.RedoDelete:
		w.byte(recDelete)
		w.uvarint(uint64(tid))
		w.string_(op.Table)
		w.uvarint(uint64(op.Row.Chunk))
		w.uvarint(uint64(op.Row.Offset))
	default:
		return fmt.Errorf("persistence: unknown redo kind %d", op.Kind)
	}
	return nil
}

func appendCommitRecord(w *writer, tid types.TransactionID, cid types.CommitID) {
	w.byte(recCommit)
	w.uvarint(uint64(tid))
	w.uvarint(uint64(cid))
}

func appendCreateTableRecord(w *writer, t *storage.Table) {
	w.byte(recCreateTable)
	w.string_(t.Name())
	w.uvarint(uint64(t.TargetChunkSize()))
	if t.UsesMvcc() {
		w.byte(1)
	} else {
		w.byte(0)
	}
	defs := t.ColumnDefinitions()
	w.uvarint(uint64(len(defs)))
	for _, d := range defs {
		w.string_(d.Name)
		w.byte(byte(d.Type))
		if d.Nullable {
			w.byte(1)
		} else {
			w.byte(0)
		}
	}
}

func appendDropTableRecord(w *writer, name string) {
	w.byte(recDropTable)
	w.string_(name)
}

func appendCreateViewRecord(w *writer, name, sql string) {
	w.byte(recCreateView)
	w.string_(name)
	w.string_(sql)
}

func appendDropViewRecord(w *writer, name string) {
	w.byte(recDropView)
	w.string_(name)
}

// decodeRecord parses one record payload (already CRC-verified framing).
func decodeRecord(payload []byte) (*record, error) {
	r := &reader{buf: payload}
	rec := &record{kind: r.byte_()}
	switch rec.kind {
	case recInsert:
		rec.tid = types.TransactionID(r.uvarint())
		rec.table = r.string_()
		rec.row = types.RowID{Chunk: types.ChunkID(r.uvarint()), Offset: types.ChunkOffset(r.uvarint())}
		n := r.uvarint()
		if r.err == nil && n > uint64(len(payload)) {
			r.fail("value count exceeds record size")
		}
		for i := uint64(0); i < n && r.err == nil; i++ {
			rec.values = append(rec.values, r.value())
		}
	case recDelete:
		rec.tid = types.TransactionID(r.uvarint())
		rec.table = r.string_()
		rec.row = types.RowID{Chunk: types.ChunkID(r.uvarint()), Offset: types.ChunkOffset(r.uvarint())}
	case recCommit:
		rec.tid = types.TransactionID(r.uvarint())
		rec.cid = types.CommitID(r.uvarint())
	case recCreateTable:
		rec.table = r.string_()
		rec.chunkSize = int(r.uvarint())
		rec.useMvcc = r.byte_() == 1
		n := r.uvarint()
		if r.err == nil && n > uint64(len(payload)) {
			r.fail("column count exceeds record size")
		}
		for i := uint64(0); i < n && r.err == nil; i++ {
			rec.defs = append(rec.defs, storage.ColumnDefinition{
				Name:     r.string_(),
				Type:     types.DataType(r.byte_()),
				Nullable: r.byte_() == 1,
			})
		}
	case recDropTable:
		rec.table = r.string_()
	case recCreateView:
		rec.view = r.string_()
		rec.viewSQL = r.string_()
	case recDropView:
		rec.view = r.string_()
	default:
		return nil, fmt.Errorf("persistence: unknown record kind %d", rec.kind)
	}
	if r.err != nil {
		return nil, r.err
	}
	return rec, nil
}
