package persistence

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"hyrise/internal/types"
)

// SyncMode controls when WAL appends reach stable storage.
type SyncMode uint8

const (
	// SyncOff never fsyncs (except on clean close): fastest, durability only
	// up to the OS page cache. Process crashes lose nothing; power loss may.
	SyncOff SyncMode = iota
	// SyncCommit fsyncs before a commit is acknowledged or made visible to
	// new snapshots. Concurrent commits are grouped under one fsync.
	SyncCommit
	// SyncBatch acknowledges commits immediately and fsyncs in the
	// background at a fixed interval, bounding the loss window.
	SyncBatch
)

// String names the sync mode as accepted by ParseSyncMode.
func (m SyncMode) String() string {
	switch m {
	case SyncOff:
		return "off"
	case SyncCommit:
		return "commit"
	case SyncBatch:
		return "batch"
	default:
		return "?"
	}
}

// ParseSyncMode parses a command-line sync mode name.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "off":
		return SyncOff, nil
	case "commit", "":
		return SyncCommit, nil
	case "batch":
		return SyncBatch, nil
	default:
		return SyncOff, fmt.Errorf("persistence: unknown sync mode %q (want off/commit/batch)", s)
	}
}

// WAL file layout: a 16-byte header (8-byte magic + little-endian start
// LSN) followed by length+CRC32-framed records. LSNs are logical stream
// offsets that survive front-truncation: the byte right after the header
// has offset startLSN.
//
// Frame: [uint32 LE payload length][uint32 LE CRC32(payload)][payload].
const (
	walMagic     = "HYWAL001"
	walHeaderLen = 16
	frameHeader  = 8
	// maxRecordLen bounds a single record so a corrupt length field cannot
	// trigger a giant allocation during replay.
	maxRecordLen = 1 << 30
)

type pendingCommit struct {
	cid  types.CommitID
	done chan struct{}
	err  error
}

// WAL is the append side of the write-ahead log. Appends are buffered and
// flushed to the OS on every batch (so a process crash loses nothing);
// fsync policy is governed by the sync mode.
type WAL struct {
	path string
	mode SyncMode

	// publish raises the transaction manager's last visible commit id once
	// a deferred-sync commit is durable.
	publish func(types.CommitID)
	// onAppend/onSync feed the metrics registry (may be nil).
	onAppend func(bytes int)
	onSync   func()

	mu      sync.Mutex
	cond    *sync.Cond // signals the group-commit syncer
	f       *os.File
	w       *bufio.Writer
	start   int64 // LSN of the first byte after the header
	size    int64 // end LSN (next append position)
	dirty   bool  // bytes written since the last fsync
	broken  error // a failed write poisons the log
	closed  bool
	pending []*pendingCommit

	wg    sync.WaitGroup
	stopc chan struct{}
}

// openWAL opens (or creates) the log at path for appending and starts the
// sync goroutine appropriate for the mode. The file's tail must already be
// truncated to the last valid frame (replayWAL does that). A fresh file is
// created with createStartLSN in its header so logical offsets continue
// from the snapshot cut even after the log itself was lost or reset.
func openWAL(path string, mode SyncMode, batchInterval time.Duration, createStartLSN int64, publish func(types.CommitID)) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	var start int64
	if st.Size() == 0 {
		start = createStartLSN
		var hdr [walHeaderLen]byte
		copy(hdr[:], walMagic)
		binary.LittleEndian.PutUint64(hdr[8:], uint64(start))
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		start, err = readWALHeader(f)
		if err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	w := &WAL{
		path:    path,
		mode:    mode,
		publish: publish,
		f:       f,
		w:       bufio.NewWriterSize(f, 1<<16),
		start:   start,
		size:    start + maxInt64(st.Size()-walHeaderLen, 0),
		stopc:   make(chan struct{}),
	}
	w.cond = sync.NewCond(&w.mu)
	switch mode {
	case SyncCommit:
		w.wg.Add(1)
		go w.syncLoop()
	case SyncBatch:
		if batchInterval <= 0 {
			batchInterval = 5 * time.Millisecond
		}
		w.wg.Add(1)
		go w.batchLoop(batchInterval)
	}
	return w, nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func readWALHeader(f *os.File) (start int64, err error) {
	var hdr [walHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, fmt.Errorf("persistence: short WAL header: %w", err)
	}
	if string(hdr[:8]) != walMagic {
		return 0, fmt.Errorf("persistence: bad WAL magic")
	}
	return int64(binary.LittleEndian.Uint64(hdr[8:])), nil
}

// frame wraps a payload in the on-disk framing.
func frame(payload []byte) []byte {
	out := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:], crc32.ChecksumIEEE(payload))
	copy(out[frameHeader:], payload)
	return out
}

// EndLSN returns the logical end offset of the log.
func (w *WAL) EndLSN() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// StartLSN returns the logical offset of the first byte still in the log
// (raised by front-truncation).
func (w *WAL) StartLSN() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.start
}

// appendLocked writes raw framed bytes and flushes them to the OS.
func (w *WAL) appendLocked(framed []byte) error {
	if w.broken != nil {
		return w.broken
	}
	if w.closed {
		return fmt.Errorf("persistence: WAL is closed")
	}
	if _, err := w.w.Write(framed); err != nil {
		w.broken = fmt.Errorf("persistence: WAL write: %w", err)
		return w.broken
	}
	// Flush to the OS on every append: a killed process then loses nothing,
	// and crash-simulation tests can copy the file at any moment.
	if err := w.w.Flush(); err != nil {
		w.broken = fmt.Errorf("persistence: WAL flush: %w", err)
		return w.broken
	}
	w.size += int64(len(framed))
	w.dirty = true
	if w.onAppend != nil {
		w.onAppend(len(framed))
	}
	return nil
}

// AppendCommitBatch atomically appends a transaction's framed records
// (redo operations followed by the commit record). Under SyncCommit it
// registers the commit for group fsync and returns a wait function; under
// SyncOff/SyncBatch it returns a nil wait and the caller may publish the
// commit immediately.
func (w *WAL) AppendCommitBatch(framed []byte, cid types.CommitID) (wait func() error, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.appendLocked(framed); err != nil {
		return nil, err
	}
	if w.mode != SyncCommit {
		return nil, nil
	}
	p := &pendingCommit{cid: cid, done: make(chan struct{})}
	w.pending = append(w.pending, p)
	w.cond.Signal()
	return func() error {
		<-p.done
		return p.err
	}, nil
}

// AppendDDL appends a framed DDL record. DDL is rare, so it is fsynced
// inline in every mode except SyncOff.
func (w *WAL) AppendDDL(framed []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.appendLocked(framed); err != nil {
		return err
	}
	if w.mode == SyncOff {
		return nil
	}
	return w.syncLocked()
}

// syncLocked fsyncs the file (buffer already flushed by appendLocked).
func (w *WAL) syncLocked() error {
	if w.broken != nil {
		return w.broken
	}
	if !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.broken = fmt.Errorf("persistence: WAL fsync: %w", err)
		return w.broken
	}
	w.dirty = false
	if w.onSync != nil {
		w.onSync()
	}
	return nil
}

// Sync flushes and fsyncs up to the current end of the log.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

// syncLoop is the group-commit worker (SyncCommit mode): it collects all
// commits that arrived since the last fsync, syncs once, then publishes
// their commit ids in order and releases the waiters.
func (w *WAL) syncLoop() {
	defer w.wg.Done()
	for {
		w.mu.Lock()
		for len(w.pending) == 0 && !w.closed {
			w.cond.Wait()
		}
		if len(w.pending) == 0 && w.closed {
			w.mu.Unlock()
			return
		}
		batch := w.pending
		w.pending = nil
		err := w.syncLocked()
		w.mu.Unlock()
		w.release(batch, err)
	}
}

// release publishes and wakes a batch of synced commits (ascending cid:
// batches are collected in append order).
func (w *WAL) release(batch []*pendingCommit, err error) {
	for _, p := range batch {
		p.err = err
		if err == nil && w.publish != nil {
			w.publish(p.cid)
		}
		close(p.done)
	}
}

// batchLoop fsyncs dirty state at a fixed interval (SyncBatch mode).
func (w *WAL) batchLoop(interval time.Duration) {
	defer w.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-w.stopc:
			return
		case <-t.C:
			w.mu.Lock()
			_ = w.syncLocked()
			w.mu.Unlock()
		}
	}
}

// TruncateFront drops the log prefix below upTo (a snapshot LSN at a batch
// boundary): the suffix is copied to a temp file with an updated header and
// atomically renamed over the log. Pending group commits are synced and
// released first, so no waiter spans the file swap.
func (w *WAL) TruncateFront(upTo int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return w.broken
	}
	if upTo <= w.start {
		return nil
	}
	if upTo > w.size {
		return fmt.Errorf("persistence: truncate LSN %d beyond log end %d", upTo, w.size)
	}
	// Drain pending commits: sync the old file and release the waiters.
	batch := w.pending
	w.pending = nil
	if err := w.syncLocked(); err != nil {
		w.release(batch, err)
		return err
	}
	w.release(batch, nil)

	tmpPath := w.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var hdr [walHeaderLen]byte
	copy(hdr[:], walMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(upTo))
	if _, err := tmp.Write(hdr[:]); err != nil {
		tmp.Close()
		return err
	}
	if _, err := w.f.Seek(walHeaderLen+(upTo-w.start), io.SeekStart); err != nil {
		tmp.Close()
		return err
	}
	if _, err := io.Copy(tmp, w.f); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, w.path); err != nil {
		return err
	}
	old := w.f
	f, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		// The old handle still points at the (renamed-over) inode; poison
		// the log rather than continue appending to an unlinked file.
		w.broken = fmt.Errorf("persistence: reopen after truncation: %w", err)
		return w.broken
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		w.broken = err
		return err
	}
	old.Close()
	w.f = f
	w.w = bufio.NewWriterSize(f, 1<<16)
	w.start = upTo
	w.dirty = false
	syncDir(w.path)
	return nil
}

// Close flushes, fsyncs, and closes the log. Outstanding group commits are
// synced and released.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	batch := w.pending
	w.pending = nil
	err := w.syncLocked()
	w.release(batch, err)
	w.cond.Broadcast()
	w.mu.Unlock()
	close(w.stopc)
	w.wg.Wait()

	w.mu.Lock()
	defer w.mu.Unlock()
	cerr := w.f.Close()
	if err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs the directory containing path (best effort — required for
// rename durability on POSIX filesystems).
func syncDir(path string) {
	dir := "."
	if i := lastSlash(path); i >= 0 {
		dir = path[:i]
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' || s[i] == os.PathSeparator {
			return i
		}
	}
	return -1
}

// walReplayBatch is how many frames a parallel replay verifies and decodes
// per round. Framing is inherently sequential (each frame's position depends
// on the previous length field), so replay reads a batch of raw frames, fans
// the CRC checks and payload decodes out across workers, then applies the
// decoded records strictly in log order.
const walReplayBatch = 256

// replayWAL scans the log from LSN from, invoking apply for every decoded
// record in order. It stops cleanly at a torn or truncated tail (short
// frame, bad CRC, undecodable payload) and truncates the file back to the
// last valid frame so appending can resume. It returns the end LSN of the
// valid prefix.
func replayWAL(path string, from int64, apply func(*record) error) (end int64, err error) {
	return replayWALWorkers(path, from, 1, apply)
}

// replayWALWorkers is replayWAL with a worker budget for CRC verification
// and record decoding (apply order and torn-tail semantics are identical for
// every worker count: records apply in log order and the file truncates back
// to the frame before the first bad one).
func replayWALWorkers(path string, from int64, workers int, apply func(*record) error) (end int64, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		if os.IsNotExist(err) {
			return from, nil
		}
		return 0, err
	}
	defer f.Close()

	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if st.Size() < walHeaderLen {
		// Torn header (crash during creation): reset to an empty log.
		if err := f.Truncate(0); err != nil {
			return 0, err
		}
		return from, nil
	}
	start, err := readWALHeader(f)
	if err != nil {
		return 0, err
	}
	if from < start {
		return 0, fmt.Errorf("persistence: snapshot LSN %d precedes WAL start %d", from, start)
	}
	skip := from - start
	if skip > st.Size()-walHeaderLen {
		// The snapshot is newer than the whole log (the log was lost or cut
		// below the snapshot point; the snapshot is complete without it).
		// Reset the file so it is recreated with the snapshot's LSN in its
		// header — appending below the snapshot cut would strand commits.
		if err := f.Truncate(0); err != nil {
			return 0, err
		}
		return from, nil
	}
	if _, err := f.Seek(walHeaderLen+skip, io.SeekStart); err != nil {
		return 0, err
	}

	br := bufio.NewReaderSize(f, 1<<16)
	lsn := from
	goodFileOff := walHeaderLen + skip
	if workers < 1 {
		workers = 1
	}
	batchCap := 1
	if workers > 1 {
		batchCap = walReplayBatch
	}
	type walFrame struct {
		payload []byte
		wantCRC uint32
		rec     *record
		bad     bool
	}
	frames := make([]walFrame, 0, batchCap)
	var hdr [frameHeader]byte
	torn, eof := false, false
	for !torn && !eof {
		// Phase 1 (sequential): read a batch of raw frames off the file.
		frames = frames[:0]
		for len(frames) < batchCap {
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				eof = true // clean EOF or torn frame header
				break
			}
			length := binary.LittleEndian.Uint32(hdr[:4])
			wantCRC := binary.LittleEndian.Uint32(hdr[4:])
			if length == 0 || length > maxRecordLen {
				eof = true
				break
			}
			payload := make([]byte, length)
			if _, err := io.ReadFull(br, payload); err != nil {
				eof = true // truncated payload
				break
			}
			frames = append(frames, walFrame{payload: payload, wantCRC: wantCRC})
		}
		// Phase 2 (parallel): verify CRCs and decode payloads.
		runParallel(len(frames), workers, func(i int) {
			fr := &frames[i]
			if crc32.ChecksumIEEE(fr.payload) != fr.wantCRC {
				fr.bad = true // torn write
				return
			}
			rec, derr := decodeRecord(fr.payload)
			if derr != nil {
				fr.bad = true // CRC-valid but structurally corrupt
				return
			}
			fr.rec = rec
		})
		// Phase 3 (sequential): apply in log order, stopping at the first bad
		// frame — everything behind it is discarded, exactly as if the serial
		// loop had hit it.
		for i := range frames {
			if frames[i].bad {
				torn = true
				break
			}
			if aerr := apply(frames[i].rec); aerr != nil {
				// Semantic failure (e.g. insert into a missing table) means
				// the snapshot/log pair is inconsistent; surface it instead
				// of silently dropping committed data.
				return 0, aerr
			}
			lsn += int64(frameHeader + len(frames[i].payload))
			goodFileOff += int64(frameHeader + len(frames[i].payload))
		}
	}
	if goodFileOff < st.Size() {
		if err := f.Truncate(goodFileOff); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}
