package persistence

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hyrise/internal/concurrency"
	"hyrise/internal/observe"
	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// Options configures a persistence manager.
type Options struct {
	// Dir is the data directory (created if missing). It holds the WAL
	// (wal.log) and the latest snapshot (snapshot.db).
	Dir string
	// Mode selects when commits reach stable storage (off/commit/batch).
	Mode SyncMode
	// SnapshotInterval, when > 0, checkpoints in the background at this
	// cadence, truncating the WAL each time.
	SnapshotInterval time.Duration
	// BatchInterval is the fsync cadence for SyncBatch (default 5ms).
	BatchInterval time.Duration
	// RecoveryWorkers bounds the parallel fan-out of recovery: snapshot
	// chunks decode and WAL redo batches CRC-check/decode across this many
	// workers, while apply stays strictly in commit order. 0 means one
	// worker per CPU; negative forces serial recovery.
	RecoveryWorkers int
	// Registry receives wal.* / snapshot.* / recovery.* metrics (may be nil).
	Registry *observe.Registry
}

// Manager owns the durability machinery: it restores state on open, appends
// commit batches to the WAL as transactions commit (it is the transaction
// manager's DurabilityHook), and periodically checkpoints snapshots.
type Manager struct {
	opts Options
	sm   *storage.StorageManager
	tm   *concurrency.TransactionManager
	wal  *WAL

	// checkpointMu serializes Checkpoint calls (ticker vs. explicit).
	checkpointMu sync.Mutex

	// pinMu guards the WAL retention pins (see PinWAL). Checkpoint clamps
	// front-truncation to the lowest pinned LSN so a replication follower's
	// unshipped log suffix is never deleted out from under it.
	pinMu  sync.Mutex
	pins   map[int]int64
	pinSeq int

	walBytes      *observe.Counter
	walSyncs      *observe.Counter
	walAppends    *observe.Counter
	snapshots     *observe.Counter
	snapshotBytes *observe.Gauge
	recoveryMs    *observe.Gauge
	recoveryWkrs  *observe.Gauge

	stopc chan struct{}
	wg    sync.WaitGroup
}

// Open restores the snapshot and WAL found in opts.Dir into sm/tm, then
// opens the log for appending and installs the manager as the transaction
// manager's durability hook. sm must not contain user tables yet.
func Open(sm *storage.StorageManager, tm *concurrency.TransactionManager, opts Options) (*Manager, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("persistence: empty data directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{opts: opts, sm: sm, tm: tm, stopc: make(chan struct{})}
	if reg := opts.Registry; reg != nil {
		m.walBytes = reg.Counter("wal.bytes")
		m.walSyncs = reg.Counter("wal.syncs")
		m.walAppends = reg.Counter("wal.appends")
		m.snapshots = reg.Counter("snapshot.count")
		m.snapshotBytes = reg.Gauge("snapshot.bytes")
		m.recoveryMs = reg.Gauge("recovery.duration_ms")
		m.recoveryWkrs = reg.Gauge("recovery.parallel_workers")
	}

	workers := resolveRecoveryWorkers(opts.RecoveryWorkers)
	if m.recoveryWkrs != nil {
		m.recoveryWkrs.Set(int64(workers))
	}
	start := time.Now()
	snapLSN, snapCID, err := readSnapshot(filepath.Join(opts.Dir, SnapshotFileName), sm, workers)
	if err != nil {
		return nil, err
	}
	maxCID, maxTID, err := m.replay(snapLSN, workers)
	if err != nil {
		return nil, err
	}
	if snapCID > maxCID {
		maxCID = snapCID
	}
	tm.RecoverState(maxCID, maxTID)
	if m.recoveryMs != nil {
		m.recoveryMs.Set(time.Since(start).Milliseconds())
	}

	wal, err := openWAL(filepath.Join(opts.Dir, WALFileName), opts.Mode, opts.BatchInterval, snapLSN, tm.PublishCommitID)
	if err != nil {
		return nil, err
	}
	if m.walBytes != nil {
		wal.onAppend = func(n int) { m.walBytes.Add(int64(n)); m.walAppends.Inc() }
		wal.onSync = func() { m.walSyncs.Inc() }
	}
	m.wal = wal
	tm.SetDurabilityHook(m)

	if opts.SnapshotInterval > 0 {
		m.wg.Add(1)
		go m.snapshotLoop(opts.SnapshotInterval)
	}
	return m, nil
}

// replay applies the WAL suffix past the snapshot cut through an Applier
// (shared with replication followers). Ops without a commit record cannot
// survive a torn tail (batches are atomic), but the applier drops them
// anyway. It returns the highest commit and transaction ids seen.
func (m *Manager) replay(fromLSN int64, workers int) (maxCID types.CommitID, maxTID types.TransactionID, err error) {
	a := NewApplier(m.sm, nil)
	if _, err := replayWALWorkers(filepath.Join(m.opts.Dir, WALFileName), fromLSN, workers, a.apply); err != nil {
		return 0, 0, err
	}
	maxCID, maxTID = a.MaxIDs()
	return maxCID, maxTID, nil
}

// AppendCommit implements concurrency.DurabilityHook: it encodes the
// transaction's redo operations plus the commit record as one atomic framed
// batch. Called inside the commit critical section, in commit-id order.
func (m *Manager) AppendCommit(tid types.TransactionID, cid types.CommitID, ops []concurrency.RedoOp) (func() error, error) {
	var batch []byte
	for _, op := range ops {
		w := &writer{}
		if err := appendRedoOp(w, tid, op); err != nil {
			return nil, err
		}
		batch = append(batch, frame(w.buf)...)
	}
	w := &writer{}
	appendCommitRecord(w, tid, cid)
	batch = append(batch, frame(w.buf)...)
	return m.wal.AppendCommitBatch(batch, cid)
}

// appendDDL frames and appends a catalog-change record.
func (m *Manager) appendDDL(w *writer) error {
	return m.wal.AppendDDL(frame(w.buf))
}

// LogCreateTable durably records a CREATE TABLE.
func (m *Manager) LogCreateTable(t *storage.Table) error {
	w := &writer{}
	appendCreateTableRecord(w, t)
	return m.appendDDL(w)
}

// LogDropTable durably records a DROP TABLE.
func (m *Manager) LogDropTable(name string) error {
	w := &writer{}
	appendDropTableRecord(w, name)
	return m.appendDDL(w)
}

// LogCreateView durably records a CREATE VIEW.
func (m *Manager) LogCreateView(name, sql string) error {
	w := &writer{}
	appendCreateViewRecord(w, name, sql)
	return m.appendDDL(w)
}

// LogDropView durably records a DROP VIEW.
func (m *Manager) LogDropView(name string) error {
	w := &writer{}
	appendDropViewRecord(w, name)
	return m.appendDDL(w)
}

// Checkpoint takes a snapshot of the whole catalog and truncates the WAL up
// to the snapshot's cut. The cut is taken at a commit barrier, so every
// commit below the cut LSN is fully stamped; the WAL is fsynced before the
// snapshot is installed so every commit whose stamps may have been captured
// is durable and replayable.
func (m *Manager) Checkpoint() error {
	m.checkpointMu.Lock()
	defer m.checkpointMu.Unlock()

	var cutLSN int64
	var cutCID types.CommitID
	m.tm.CommitBarrier(func(highestCID types.CommitID) {
		cutLSN = m.wal.EndLSN()
		cutCID = highestCID
	})

	buf, err := encodeSnapshot(m.sm, cutLSN, cutCID)
	if err != nil {
		return err
	}
	if err := m.wal.Sync(); err != nil {
		return err
	}
	if err := writeSnapshotFile(m.opts.Dir, buf); err != nil {
		return err
	}
	// The snapshot records the true cut; only the log trim is clamped, so a
	// pinned follower can still read the suffix it has not shipped yet.
	truncTo := cutLSN
	if pinned, ok := m.minPinnedLSN(); ok && pinned < truncTo {
		truncTo = pinned
	}
	if err := m.wal.TruncateFront(truncTo); err != nil {
		return err
	}
	if m.snapshots != nil {
		m.snapshots.Inc()
		m.snapshotBytes.Set(int64(len(buf)))
	}
	return nil
}

// snapshotLoop checkpoints at a fixed cadence until Close.
func (m *Manager) snapshotLoop(interval time.Duration) {
	defer m.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.stopc:
			return
		case <-t.C:
			_ = m.Checkpoint()
		}
	}
}

// SyncModeName returns the configured sync mode (for meta-tables).
func (m *Manager) SyncModeName() string { return m.opts.Mode.String() }

// Dir returns the data directory.
func (m *Manager) Dir() string { return m.opts.Dir }

// Close detaches the durability hook, stops background work, and closes the
// WAL (flushing and fsyncing it). The engine must have stopped accepting
// transactions first.
func (m *Manager) Close() error {
	m.tm.SetDurabilityHook(nil)
	close(m.stopc)
	m.wg.Wait()
	return m.wal.Close()
}
