package persistence

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hyrise/internal/concurrency"
	"hyrise/internal/observe"
	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// Options configures a persistence manager.
type Options struct {
	// Dir is the data directory (created if missing). It holds the WAL
	// (wal.log) and the latest snapshot (snapshot.db).
	Dir string
	// Mode selects when commits reach stable storage (off/commit/batch).
	Mode SyncMode
	// SnapshotInterval, when > 0, checkpoints in the background at this
	// cadence, truncating the WAL each time.
	SnapshotInterval time.Duration
	// BatchInterval is the fsync cadence for SyncBatch (default 5ms).
	BatchInterval time.Duration
	// Registry receives wal.* / snapshot.* / recovery.* metrics (may be nil).
	Registry *observe.Registry
}

// Manager owns the durability machinery: it restores state on open, appends
// commit batches to the WAL as transactions commit (it is the transaction
// manager's DurabilityHook), and periodically checkpoints snapshots.
type Manager struct {
	opts Options
	sm   *storage.StorageManager
	tm   *concurrency.TransactionManager
	wal  *WAL

	// checkpointMu serializes Checkpoint calls (ticker vs. explicit).
	checkpointMu sync.Mutex

	walBytes      *observe.Counter
	walSyncs      *observe.Counter
	walAppends    *observe.Counter
	snapshots     *observe.Counter
	snapshotBytes *observe.Gauge
	recoveryMs    *observe.Gauge

	stopc chan struct{}
	wg    sync.WaitGroup
}

// Open restores the snapshot and WAL found in opts.Dir into sm/tm, then
// opens the log for appending and installs the manager as the transaction
// manager's durability hook. sm must not contain user tables yet.
func Open(sm *storage.StorageManager, tm *concurrency.TransactionManager, opts Options) (*Manager, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("persistence: empty data directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{opts: opts, sm: sm, tm: tm, stopc: make(chan struct{})}
	if reg := opts.Registry; reg != nil {
		m.walBytes = reg.Counter("wal.bytes")
		m.walSyncs = reg.Counter("wal.syncs")
		m.walAppends = reg.Counter("wal.appends")
		m.snapshots = reg.Counter("snapshot.count")
		m.snapshotBytes = reg.Gauge("snapshot.bytes")
		m.recoveryMs = reg.Gauge("recovery.duration_ms")
	}

	start := time.Now()
	snapLSN, snapCID, err := readSnapshot(filepath.Join(opts.Dir, SnapshotFileName), sm)
	if err != nil {
		return nil, err
	}
	maxCID, maxTID, err := m.replay(snapLSN)
	if err != nil {
		return nil, err
	}
	if snapCID > maxCID {
		maxCID = snapCID
	}
	tm.RecoverState(maxCID, maxTID)
	if m.recoveryMs != nil {
		m.recoveryMs.Set(time.Since(start).Milliseconds())
	}

	wal, err := openWAL(filepath.Join(opts.Dir, WALFileName), opts.Mode, opts.BatchInterval, snapLSN, tm.PublishCommitID)
	if err != nil {
		return nil, err
	}
	if m.walBytes != nil {
		wal.onAppend = func(n int) { m.walBytes.Add(int64(n)); m.walAppends.Inc() }
		wal.onSync = func() { m.walSyncs.Inc() }
	}
	m.wal = wal
	tm.SetDurabilityHook(m)

	if opts.SnapshotInterval > 0 {
		m.wg.Add(1)
		go m.snapshotLoop(opts.SnapshotInterval)
	}
	return m, nil
}

// replay applies the WAL suffix past the snapshot cut. Insert and delete
// records buffer until their transaction's commit record arrives (each
// commit batch is appended atomically, so a torn tail never splits one);
// DDL records apply immediately. It returns the highest commit and
// transaction ids seen.
func (m *Manager) replay(fromLSN int64) (maxCID types.CommitID, maxTID types.TransactionID, err error) {
	var pending []*record
	apply := func(rec *record) error {
		if rec.tid > maxTID {
			maxTID = rec.tid
		}
		switch rec.kind {
		case recInsert, recDelete:
			pending = append(pending, rec)
			return nil
		case recCommit:
			if rec.cid > maxCID {
				maxCID = rec.cid
			}
			ops := pending
			pending = nil
			for _, op := range ops {
				if err := m.applyOp(op, rec.cid); err != nil {
					return err
				}
			}
			return nil
		case recCreateTable:
			if m.sm.HasTable(rec.table) {
				return nil // checkpoint raced the DDL append: already in snapshot
			}
			return m.sm.AddTable(storage.NewTable(rec.table, rec.defs, rec.chunkSize, rec.useMvcc))
		case recDropTable:
			if !m.sm.HasTable(rec.table) {
				return nil
			}
			return m.sm.DropTable(rec.table)
		case recCreateView:
			if _, ok := m.sm.GetView(rec.view); ok {
				return nil
			}
			return m.sm.AddView(rec.view, rec.viewSQL)
		case recDropView:
			if _, ok := m.sm.GetView(rec.view); !ok {
				return nil
			}
			return m.sm.DropView(rec.view)
		default:
			return fmt.Errorf("persistence: replay: unknown record kind %d", rec.kind)
		}
	}
	if _, err := replayWAL(filepath.Join(m.opts.Dir, WALFileName), fromLSN, apply); err != nil {
		return 0, 0, err
	}
	// Ops without a commit record cannot survive a torn tail (batches are
	// atomic), but guard anyway: drop them.
	return maxCID, maxTID, nil
}

// applyOp applies one committed redo operation during replay.
func (m *Manager) applyOp(rec *record, cid types.CommitID) error {
	t, err := m.sm.GetTable(rec.table)
	if err != nil {
		return fmt.Errorf("persistence: replay references %w", err)
	}
	switch rec.kind {
	case recInsert:
		if _, err := t.RestoreRowAt(rec.row, rec.values); err != nil {
			return fmt.Errorf("persistence: replay insert into %q: %w", rec.table, err)
		}
		if mvcc := t.GetChunk(rec.row.Chunk).MvccData(); mvcc != nil {
			mvcc.SetBegin(rec.row.Offset, cid)
			mvcc.SetEnd(rec.row.Offset, types.MaxCommitID)
		}
	case recDelete:
		if int(rec.row.Chunk) >= t.ChunkCount() {
			return fmt.Errorf("persistence: replay delete from %q: chunk %d missing", rec.table, rec.row.Chunk)
		}
		chunk := t.GetChunk(rec.row.Chunk)
		if int(rec.row.Offset) >= chunk.Size() {
			return fmt.Errorf("persistence: replay delete from %q: row %d/%d missing", rec.table, rec.row.Chunk, rec.row.Offset)
		}
		if mvcc := chunk.MvccData(); mvcc != nil {
			mvcc.SetEnd(rec.row.Offset, cid)
		}
	}
	return nil
}

// AppendCommit implements concurrency.DurabilityHook: it encodes the
// transaction's redo operations plus the commit record as one atomic framed
// batch. Called inside the commit critical section, in commit-id order.
func (m *Manager) AppendCommit(tid types.TransactionID, cid types.CommitID, ops []concurrency.RedoOp) (func() error, error) {
	var batch []byte
	for _, op := range ops {
		w := &writer{}
		if err := appendRedoOp(w, tid, op); err != nil {
			return nil, err
		}
		batch = append(batch, frame(w.buf)...)
	}
	w := &writer{}
	appendCommitRecord(w, tid, cid)
	batch = append(batch, frame(w.buf)...)
	return m.wal.AppendCommitBatch(batch, cid)
}

// appendDDL frames and appends a catalog-change record.
func (m *Manager) appendDDL(w *writer) error {
	return m.wal.AppendDDL(frame(w.buf))
}

// LogCreateTable durably records a CREATE TABLE.
func (m *Manager) LogCreateTable(t *storage.Table) error {
	w := &writer{}
	appendCreateTableRecord(w, t)
	return m.appendDDL(w)
}

// LogDropTable durably records a DROP TABLE.
func (m *Manager) LogDropTable(name string) error {
	w := &writer{}
	appendDropTableRecord(w, name)
	return m.appendDDL(w)
}

// LogCreateView durably records a CREATE VIEW.
func (m *Manager) LogCreateView(name, sql string) error {
	w := &writer{}
	appendCreateViewRecord(w, name, sql)
	return m.appendDDL(w)
}

// LogDropView durably records a DROP VIEW.
func (m *Manager) LogDropView(name string) error {
	w := &writer{}
	appendDropViewRecord(w, name)
	return m.appendDDL(w)
}

// Checkpoint takes a snapshot of the whole catalog and truncates the WAL up
// to the snapshot's cut. The cut is taken at a commit barrier, so every
// commit below the cut LSN is fully stamped; the WAL is fsynced before the
// snapshot is installed so every commit whose stamps may have been captured
// is durable and replayable.
func (m *Manager) Checkpoint() error {
	m.checkpointMu.Lock()
	defer m.checkpointMu.Unlock()

	var cutLSN int64
	var cutCID types.CommitID
	m.tm.CommitBarrier(func(highestCID types.CommitID) {
		cutLSN = m.wal.EndLSN()
		cutCID = highestCID
	})

	buf, err := encodeSnapshot(m.sm, cutLSN, cutCID)
	if err != nil {
		return err
	}
	if err := m.wal.Sync(); err != nil {
		return err
	}
	if err := writeSnapshotFile(m.opts.Dir, buf); err != nil {
		return err
	}
	if err := m.wal.TruncateFront(cutLSN); err != nil {
		return err
	}
	if m.snapshots != nil {
		m.snapshots.Inc()
		m.snapshotBytes.Set(int64(len(buf)))
	}
	return nil
}

// snapshotLoop checkpoints at a fixed cadence until Close.
func (m *Manager) snapshotLoop(interval time.Duration) {
	defer m.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.stopc:
			return
		case <-t.C:
			_ = m.Checkpoint()
		}
	}
}

// SyncModeName returns the configured sync mode (for meta-tables).
func (m *Manager) SyncModeName() string { return m.opts.Mode.String() }

// Dir returns the data directory.
func (m *Manager) Dir() string { return m.opts.Dir }

// Close detaches the durability hook, stops background work, and closes the
// WAL (flushing and fsyncing it). The engine must have stopped accepting
// transactions first.
func (m *Manager) Close() error {
	m.tm.SetDurabilityHook(nil)
	close(m.stopc)
	m.wg.Wait()
	return m.wal.Close()
}
