package persistence

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"hyrise/internal/concurrency"
	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// Tests for PR 10's parallel recovery: snapshot chunks decode and WAL
// redo batches CRC-check/decode across workers while apply stays in commit
// order. Every test here runs the same scenario serially and with a worker
// pool and demands identical recovered state — including under fault
// injection (torn tails, corrupt chunk bodies) where the parallel batch
// machinery must stop at exactly the same frame the serial loop would.

func openWorkers(t *testing.T, dir string, workers int) (*storage.StorageManager, *concurrency.TransactionManager, *Manager) {
	t.Helper()
	sm := storage.NewStorageManager()
	tm := concurrency.NewTransactionManager()
	m, err := Open(sm, tm, Options{Dir: dir, Mode: SyncOff, RecoveryWorkers: workers})
	if err != nil {
		t.Fatalf("Open(workers=%d): %v", workers, err)
	}
	return sm, tm, m
}

// seedManyCommits writes enough separate commits that parallel WAL replay
// needs multiple batches (walReplayBatch frames per round).
func seedManyCommits(t *testing.T, dir string, commits int) {
	t.Helper()
	sm, tm, m := openWorkers(t, dir, -1)
	table := storage.NewTable("t", testDefs(), 64, true)
	if err := sm.AddTable(table); err != nil {
		t.Fatal(err)
	}
	if err := m.LogCreateTable(table); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < commits; i++ {
		insertTx(t, tm, table, [][]types.Value{
			{types.Int(int64(i)), types.Str("r"), types.Float(float64(i))},
		})
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelWALReplayMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	const commits = 700 // > 2 parallel replay batches (insert + commit frames)
	seedManyCommits(t, dir, commits)

	smSerial, tmSerial, mSerial := openWorkers(t, dir, -1)
	tSerial, err := smSerial.GetTable("t")
	if err != nil {
		t.Fatal(err)
	}
	want := visibleRows(tmSerial, tSerial)
	if err := mSerial.Close(); err != nil {
		t.Fatal(err)
	}
	if len(want) != commits {
		t.Fatalf("serial recovery got %d rows, want %d", len(want), commits)
	}

	smPar, tmPar, mPar := openWorkers(t, dir, 4)
	defer mPar.Close()
	tPar, err := smPar.GetTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if !rowsEqual(visibleRows(tmPar, tPar), want) {
		t.Fatal("parallel recovery diverged from serial")
	}
}

// TestParallelRecoveryTornTail is the PR 3 torn-tail scenario run through
// the parallel replay: a corrupt byte — at the tail and in the middle of the
// log — must stop apply at the last frame before the corruption and truncate
// the file there, with workers > 1 behaving exactly like the serial loop.
func TestParallelRecoveryTornTail(t *testing.T) {
	corrupt := func(t *testing.T, dir string, fromEnd bool) {
		t.Helper()
		walPath := filepath.Join(dir, WALFileName)
		buf, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		off := len(buf) - 1
		if !fromEnd {
			off = walHeaderLen + (len(buf)-walHeaderLen)/2
		}
		buf[off] ^= 0xFF
		if err := os.WriteFile(walPath, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("tail", func(t *testing.T) {
		dir := t.TempDir()
		seedManyCommits(t, dir, 600)
		corrupt(t, dir, true)

		sm, tm, m := openWorkers(t, dir, 4)
		table, err := sm.GetTable("t")
		if err != nil {
			t.Fatal(err)
		}
		rows := visibleRows(tm, table)
		if len(rows) != 599 {
			t.Fatalf("want the 599 commits before the torn tail, got %d", len(rows))
		}
		// Appending must resume from the truncated tail.
		insertTx(t, tm, table, [][]types.Value{{types.Int(999), types.Str("z"), types.Float(9)}})
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		sm2, tm2, m2 := openWorkers(t, dir, 4)
		defer m2.Close()
		table2, err := sm2.GetTable("t")
		if err != nil {
			t.Fatal(err)
		}
		if got := len(visibleRows(tm2, table2)); got != 600 {
			t.Fatalf("want 600 rows after re-append, got %d", got)
		}
	})

	t.Run("middle", func(t *testing.T) {
		dir := t.TempDir()
		seedManyCommits(t, dir, 600)
		corrupt(t, dir, false)

		sm, tm, m := openWorkers(t, dir, 4)
		defer m.Close()
		table, err := sm.GetTable("t")
		if err != nil {
			t.Fatal(err)
		}
		rows := visibleRows(tm, table)
		// Everything after the first corrupt frame is discarded, even though
		// parallel replay had already read (and possibly decoded) frames past
		// it. The exact count depends on framing; the invariants are a strict
		// prefix and a truncated file.
		if len(rows) == 0 || len(rows) >= 600 {
			t.Fatalf("want a strict non-empty prefix of 600 commits, got %d", len(rows))
		}
		for i, row := range rows {
			if row[0].I != int64(i) {
				t.Fatalf("row %d = %v: recovered rows are not the commit-order prefix", i, row)
			}
		}
	})
}

// TestSnapshotV2ParallelRoundTrip checkpoints a multi-chunk catalog and
// restores it with serial and parallel chunk decode; both must reproduce the
// pre-checkpoint state and the file must carry the v2 magic.
func TestSnapshotV2ParallelRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sm, tm, m := openWorkers(t, dir, -1)
	table := storage.NewTable("t", testDefs(), 8, true) // many small chunks
	if err := sm.AddTable(table); err != nil {
		t.Fatal(err)
	}
	if err := m.LogCreateTable(table); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		vals := []types.Value{types.Int(int64(i)), types.Str("v"), types.NullValue}
		if i%3 == 0 {
			vals[1] = types.NullValue
		}
		insertTx(t, tm, table, [][]types.Value{vals})
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := visibleRows(tm, table)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	img, err := os.ReadFile(filepath.Join(dir, SnapshotFileName))
	if err != nil {
		t.Fatal(err)
	}
	if string(img[:8]) != snapMagicV2 {
		t.Fatalf("snapshot magic = %q, want %q", img[:8], snapMagicV2)
	}

	for _, workers := range []int{-1, 4} {
		sm2 := storage.NewStorageManager()
		if _, _, err := DecodeSnapshotWorkers(img, sm2, workers); err != nil {
			t.Fatalf("DecodeSnapshotWorkers(%d): %v", workers, err)
		}
		got, err := sm2.GetTable("t")
		if err != nil {
			t.Fatal(err)
		}
		tm2 := concurrency.NewTransactionManager()
		if !rowsEqual(visibleRows(tm2, got), want) {
			t.Fatalf("workers=%d: restored rows diverged", workers)
		}
	}
}

// TestSnapshotV1BackCompat hand-encodes a version-1 image (no chunk length
// prefixes) and checks the decoder still reads it sequentially.
func TestSnapshotV1BackCompat(t *testing.T) {
	table := storage.NewTable("legacy", testDefs(), 4, false)
	for i := 0; i < 10; i++ {
		if _, err := table.AppendRow([]types.Value{
			types.Int(int64(i)), types.Str("x"), types.Float(float64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	table.FinalizeLastChunk()

	w := &writer{}
	w.bytes([]byte(snapMagic))
	w.uvarint(42) // lsn
	w.uvarint(7)  // lastCID
	w.uvarint(1)  // one table
	w.string_(table.Name())
	w.uvarint(uint64(table.TargetChunkSize()))
	w.byte(0) // no MVCC
	defs := table.ColumnDefinitions()
	w.uvarint(uint64(len(defs)))
	for _, d := range defs {
		w.string_(d.Name)
		w.byte(byte(d.Type))
		if d.Nullable {
			w.byte(1)
		} else {
			w.byte(0)
		}
	}
	chunks := table.Chunks()
	w.uvarint(uint64(len(chunks)))
	for _, c := range chunks {
		// v1 layout: the chunk body follows immediately, no length prefix.
		if err := encodeChunk(w, c); err != nil {
			t.Fatal(err)
		}
	}
	w.uvarint(0) // no views
	crc := crc32.ChecksumIEEE(w.buf[len(snapMagic):])
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc)

	sm := storage.NewStorageManager()
	lsn, cid, err := DecodeSnapshot(w.buf, sm)
	if err != nil {
		t.Fatalf("DecodeSnapshot(v1): %v", err)
	}
	if lsn != 42 || cid != 7 {
		t.Fatalf("cut = (%d, %d), want (42, 7)", lsn, cid)
	}
	got, err := sm.GetTable("legacy")
	if err != nil {
		t.Fatal(err)
	}
	if got.RowCount() != 10 || got.ChunkCount() != 3 {
		t.Fatalf("restored %d rows in %d chunks, want 10 in 3", got.RowCount(), got.ChunkCount())
	}
	for i := 0; i < 10; i++ {
		rid := types.RowID{Chunk: types.ChunkID(i / 4), Offset: types.ChunkOffset(i % 4)}
		v := got.GetChunk(rid.Chunk).GetSegment(0).ValueAt(rid.Offset)
		if v.I != int64(i) {
			t.Fatalf("row %d = %v", i, v)
		}
	}
}

// TestSnapshotV2CorruptChunkBody hand-builds v2 images whose chunk framing
// is structurally wrong in ways the file CRC cannot catch on its own —
// trailing garbage inside a declared body, and a body length pointing past
// the end of the image. Decode (serial and parallel) must surface an error,
// not a panic or a silently wrong table.
func TestSnapshotV2CorruptChunkBody(t *testing.T) {
	table := storage.NewTable("t", testDefs(), 4, false)
	for i := 0; i < 4; i++ {
		if _, err := table.AppendRow([]types.Value{
			types.Int(int64(i)), types.Str("x"), types.Float(1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	table.FinalizeLastChunk()

	buildImage := func(mutate func(w *writer, body []byte)) []byte {
		w := &writer{}
		w.bytes([]byte(snapMagicV2))
		w.uvarint(0) // lsn
		w.uvarint(0) // lastCID
		w.uvarint(1) // one table
		w.string_(table.Name())
		w.uvarint(uint64(table.TargetChunkSize()))
		w.byte(0)
		defs := table.ColumnDefinitions()
		w.uvarint(uint64(len(defs)))
		for _, d := range defs {
			w.string_(d.Name)
			w.byte(byte(d.Type))
			if d.Nullable {
				w.byte(1)
			} else {
				w.byte(0)
			}
		}
		w.uvarint(1) // one chunk
		cw := &writer{}
		if err := encodeChunk(cw, table.Chunks()[0]); err != nil {
			t.Fatal(err)
		}
		mutate(w, cw.buf)
		w.uvarint(0) // no views
		crc := crc32.ChecksumIEEE(w.buf[len(snapMagicV2):])
		return binary.LittleEndian.AppendUint32(w.buf, crc)
	}

	cases := map[string][]byte{
		// Body length covers three garbage bytes after a valid chunk body.
		"trailing_garbage": buildImage(func(w *writer, body []byte) {
			w.uvarint(uint64(len(body) + 3))
			w.bytes(body)
			w.bytes([]byte{0xDE, 0xAD, 0xBF})
		}),
		// Body length runs past the end of the image.
		"length_overrun": buildImage(func(w *writer, body []byte) {
			w.uvarint(uint64(len(body) + 1_000_000))
			w.bytes(body)
		}),
		// Body truncated below what the chunk header promises.
		"short_body": buildImage(func(w *writer, body []byte) {
			w.uvarint(uint64(len(body) / 2))
			w.bytes(body[:len(body)/2])
		}),
	}
	for name, img := range cases {
		for _, workers := range []int{-1, 4} {
			sm := storage.NewStorageManager()
			if _, _, err := DecodeSnapshotWorkers(img, sm, workers); err == nil {
				t.Fatalf("%s workers=%d: corrupt chunk body decoded without error", name, workers)
			}
		}
	}
}
