package persistence

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"hyrise/internal/encoding"
	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// Snapshot file layout: 8-byte magic, a body of primitive encodings, and a
// trailing little-endian CRC32 over the body. Segments are serialized in
// whatever physical form they currently have (value, dictionary, run-length,
// frame-of-reference), so an encoded immutable chunk restores encoded.
//
// Version 2 (HYSNAP02, written since PR 10) prefixes every chunk body with
// its byte length, which lets recovery decode chunks in parallel: the chunk
// boundaries can be sliced out without decoding any segment. Version 1
// snapshots (no prefixes, strictly sequential decode) remain readable.
//
// MVCC state collapses to two bitmaps per chunk — committed (begin != ∞)
// and deleted (end != ∞). Restored rows are stamped begin=0 (visible since
// the beginning of time) or left invisible; WAL replay over the snapshot
// re-stamps rows whose commits landed after the snapshot cut.
const (
	snapMagic   = "HYSNAP01"
	snapMagicV2 = "HYSNAP02"
	// SnapshotFileName is the name of the snapshot inside the data directory.
	SnapshotFileName = "snapshot.db"
	// WALFileName is the name of the write-ahead log inside the data directory.
	WALFileName = "wal.log"
)

// encodeSnapshot serializes all tables and views into a snapshot body tagged
// with the WAL cut (lsn, lastCID).
func encodeSnapshot(sm *storage.StorageManager, lsn int64, lastCID types.CommitID) ([]byte, error) {
	w := &writer{buf: make([]byte, 0, 1<<16)}
	w.bytes([]byte(snapMagicV2))
	w.uvarint(uint64(lsn))
	w.uvarint(uint64(lastCID))

	names := sm.TableNames()
	w.uvarint(uint64(len(names)))
	for _, name := range names {
		t, err := sm.GetTable(name)
		if err != nil {
			return nil, err
		}
		if err := encodeTable(w, t); err != nil {
			return nil, fmt.Errorf("persistence: snapshot table %q: %w", name, err)
		}
	}

	views := sm.Views()
	w.uvarint(uint64(len(views)))
	for _, name := range sortedKeys(views) {
		w.string_(name)
		w.string_(views[name])
	}

	crc := crc32.ChecksumIEEE(w.buf[len(snapMagicV2):])
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc)
	return w.buf, nil
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func encodeTable(w *writer, t *storage.Table) error {
	w.string_(t.Name())
	w.uvarint(uint64(t.TargetChunkSize()))
	if t.UsesMvcc() {
		w.byte(1)
	} else {
		w.byte(0)
	}
	defs := t.ColumnDefinitions()
	w.uvarint(uint64(len(defs)))
	for _, d := range defs {
		w.string_(d.Name)
		w.byte(byte(d.Type))
		if d.Nullable {
			w.byte(1)
		} else {
			w.byte(0)
		}
	}

	chunks := t.Chunks()
	w.uvarint(uint64(len(chunks)))
	cw := &writer{buf: make([]byte, 0, 1<<12)} // scratch, reused per chunk
	for _, c := range chunks {
		// Encode the chunk body into the scratch writer first so the v2
		// format can prefix it with its byte length (what makes parallel
		// chunk decode possible on restore).
		cw.buf = cw.buf[:0]
		if err := encodeChunk(cw, c); err != nil {
			return err
		}
		w.uvarint(uint64(len(cw.buf)))
		w.bytes(cw.buf)
	}
	return nil
}

// encodeChunk serializes one chunk body (immutability flag, row count,
// segments, MVCC bitmaps) — the unit a v2 snapshot length-prefixes.
func encodeChunk(w *writer, c *storage.Chunk) error {
	segs, rows := c.SnapshotSegments()
	if c.IsImmutable() {
		w.byte(1)
	} else {
		w.byte(0)
	}
	w.uvarint(uint64(rows))
	for _, seg := range segs {
		buf, err := encoding.AppendSegment(w.buf, seg)
		if err != nil {
			return err
		}
		w.buf = buf
	}
	mvcc := c.MvccData()
	if mvcc == nil {
		w.byte(0)
		return nil
	}
	w.byte(1)
	committed := make([]bool, rows)
	deleted := make([]bool, rows)
	for i := 0; i < rows; i++ {
		off := types.ChunkOffset(i)
		committed[i] = mvcc.Begin(off) != types.MaxCommitID
		deleted[i] = mvcc.End(off) != types.MaxCommitID
	}
	w.bitmap(committed)
	w.bitmap(deleted)
	return nil
}

// readSnapshot loads the snapshot file into the (empty) storage manager and
// returns the WAL cut it was taken at. A missing file returns (0, 0, nil).
// workers bounds the parallel chunk-decode fan-out (1 = serial).
func readSnapshot(path string, sm *storage.StorageManager, workers int) (lsn int64, lastCID types.CommitID, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, err
	}
	lsn, lastCID, err = DecodeSnapshotWorkers(buf, sm, workers)
	if err != nil {
		return 0, 0, fmt.Errorf("persistence: snapshot %s: %w", path, err)
	}
	return lsn, lastCID, nil
}

// DecodeSnapshot loads serialized snapshot bytes — a snapshot file's exact
// contents, or the stream a replication primary ships for bootstrap — into
// the (empty) storage manager and returns the WAL cut they were taken at.
// Chunk decode runs with one worker per CPU; use DecodeSnapshotWorkers to
// control the fan-out.
func DecodeSnapshot(buf []byte, sm *storage.StorageManager) (lsn int64, lastCID types.CommitID, err error) {
	return DecodeSnapshotWorkers(buf, sm, 0)
}

// DecodeSnapshotWorkers is DecodeSnapshot with an explicit worker budget for
// the parallel chunk decode (0 = one per CPU, <= 1 after resolution = serial).
// Only v2 snapshots (length-prefixed chunk bodies) decode in parallel; v1
// images always decode sequentially.
func DecodeSnapshotWorkers(buf []byte, sm *storage.StorageManager, workers int) (lsn int64, lastCID types.CommitID, err error) {
	if len(buf) < len(snapMagic)+4 {
		return 0, 0, fmt.Errorf("not a snapshot image")
	}
	v2 := false
	switch string(buf[:len(snapMagic)]) {
	case snapMagic:
	case snapMagicV2:
		v2 = true
	default:
		return 0, 0, fmt.Errorf("not a snapshot image")
	}
	body := buf[len(snapMagic) : len(buf)-4]
	wantCRC := binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(body) != wantCRC {
		return 0, 0, fmt.Errorf("snapshot fails CRC check")
	}
	workers = resolveRecoveryWorkers(workers)

	r := &reader{buf: body}
	lsn = int64(r.uvarint())
	lastCID = types.CommitID(r.uvarint())

	nTables := r.uvarint()
	if r.err == nil && nTables > uint64(len(body)) {
		r.fail("table count exceeds snapshot size")
	}
	for i := uint64(0); i < nTables && r.err == nil; i++ {
		t, err := decodeTable(r, v2, workers)
		if err != nil {
			return 0, 0, fmt.Errorf("persistence: snapshot table %d: %w", i, err)
		}
		if t == nil {
			break // r.err set
		}
		if err := sm.AddTable(t); err != nil {
			return 0, 0, err
		}
	}

	nViews := r.uvarint()
	if r.err == nil && nViews > uint64(len(body)) {
		r.fail("view count exceeds snapshot size")
	}
	for i := uint64(0); i < nViews && r.err == nil; i++ {
		name := r.string_()
		sql := r.string_()
		if r.err == nil {
			if err := sm.AddView(name, sql); err != nil {
				return 0, 0, err
			}
		}
	}
	if r.err != nil {
		return 0, 0, r.err
	}
	return lsn, lastCID, nil
}

func decodeTable(r *reader, v2 bool, workers int) (*storage.Table, error) {
	name := r.string_()
	chunkSize := int(r.uvarint())
	useMvcc := r.byte_() == 1
	nCols := r.uvarint()
	if r.err == nil && nCols > uint64(len(r.buf))+1 {
		r.fail("column count exceeds snapshot size")
	}
	if r.err != nil {
		return nil, r.err
	}
	defs := make([]storage.ColumnDefinition, 0, nCols)
	for i := uint64(0); i < nCols && r.err == nil; i++ {
		n := r.string_()
		ty := types.DataType(r.byte_())
		nullable := r.byte_() == 1
		defs = append(defs, storage.ColumnDefinition{Name: n, Type: ty, Nullable: nullable})
	}
	if r.err != nil {
		return nil, r.err
	}

	t := storage.NewTable(name, defs, chunkSize, useMvcc)
	nChunks := r.uvarint()
	if r.err == nil && nChunks > uint64(len(r.buf))+1 {
		r.fail("chunk count exceeds snapshot size")
	}
	if r.err != nil {
		return nil, r.err
	}

	if !v2 {
		// v1: no length prefixes, so chunk boundaries only emerge while
		// decoding — strictly sequential.
		for ci := uint64(0); ci < nChunks && r.err == nil; ci++ {
			chunk, err := decodeChunk(r, defs, chunkSize)
			if err != nil {
				return nil, fmt.Errorf("chunk %d: %w", ci, err)
			}
			t.AppendChunk(chunk)
		}
		if r.err != nil {
			return nil, r.err
		}
		return t, nil
	}

	// v2: slice out the length-prefixed chunk bodies sequentially (cheap),
	// decode the bodies in parallel, then append in chunk order so chunk ids
	// come out identical to a serial restore.
	bodies := make([][]byte, 0, nChunks)
	for ci := uint64(0); ci < nChunks && r.err == nil; ci++ {
		n := r.uvarint()
		if r.err != nil {
			break
		}
		if n > uint64(len(r.buf)) {
			r.fail("chunk body exceeds snapshot size")
			break
		}
		bodies = append(bodies, r.buf[:n])
		r.buf = r.buf[n:]
	}
	if r.err != nil {
		return nil, r.err
	}
	chunks := make([]*storage.Chunk, len(bodies))
	errs := make([]error, len(bodies))
	runParallel(len(bodies), workers, func(ci int) {
		cr := &reader{buf: bodies[ci]}
		chunk, err := decodeChunk(cr, defs, chunkSize)
		if err == nil && len(cr.buf) != 0 {
			err = fmt.Errorf("persistence: corrupt record: %d trailing bytes in chunk body", len(cr.buf))
		}
		chunks[ci], errs[ci] = chunk, err
	})
	for ci := range bodies {
		if errs[ci] != nil {
			return nil, fmt.Errorf("chunk %d: %w", ci, errs[ci])
		}
		t.AppendChunk(chunks[ci])
	}
	return t, nil
}

// decodeChunk decodes one chunk body (the unit encodeChunk writes) from r.
// Both snapshot versions share it; v2 calls it concurrently over disjoint
// body slices.
func decodeChunk(r *reader, defs []storage.ColumnDefinition, chunkSize int) (*storage.Chunk, error) {
	immutable := r.byte_() == 1
	rows := int(r.uvarint())
	if r.err != nil {
		return nil, r.err
	}
	segs := make([]storage.Segment, len(defs))
	for i := range defs {
		seg, rest, err := encoding.DecodeSegment(r.buf)
		if err != nil {
			return nil, fmt.Errorf("column %d: %w", i, err)
		}
		if seg.Len() != rows {
			return nil, fmt.Errorf("column %d: segment has %d rows, want %d", i, seg.Len(), rows)
		}
		segs[i] = seg
		r.buf = rest
	}
	var mvcc *storage.MvccData
	hasMvcc := r.byte_() == 1
	if hasMvcc {
		committed := r.bitmap()
		deleted := r.bitmap()
		if r.err != nil {
			return nil, r.err
		}
		if len(committed) != rows || len(deleted) != rows {
			// bitmap() returns nil for zero-length maps, which matches
			// rows == 0; anything else is corruption.
			if !(rows == 0 && committed == nil && deleted == nil) {
				return nil, fmt.Errorf("MVCC bitmap length mismatch")
			}
		}
		capacity := rows
		if !immutable {
			capacity = chunkSize // mutable tail keeps growing after restore
		}
		mvcc = storage.NewMvccData(capacity)
		for i := 0; i < rows; i++ {
			off := types.ChunkOffset(i)
			mvcc.EnsureCapacity(off)
			if committed[i] {
				mvcc.SetBegin(off, 0)
			}
			if deleted[i] {
				mvcc.SetEnd(off, 0)
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	chunk := storage.NewChunk(segs, mvcc)
	if immutable {
		chunk.Finalize()
	}
	return chunk, nil
}

// writeSnapshotFile atomically replaces the snapshot in dir: write to a temp
// file, fsync, rename, fsync the directory.
func writeSnapshotFile(dir string, buf []byte) error {
	final := filepath.Join(dir, SnapshotFileName)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	syncDir(final)
	return nil
}
