package persistence

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"hyrise/internal/encoding"
	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// Snapshot file layout: 8-byte magic, a body of primitive encodings, and a
// trailing little-endian CRC32 over the body. Segments are serialized in
// whatever physical form they currently have (value, dictionary, run-length,
// frame-of-reference), so an encoded immutable chunk restores encoded.
//
// MVCC state collapses to two bitmaps per chunk — committed (begin != ∞)
// and deleted (end != ∞). Restored rows are stamped begin=0 (visible since
// the beginning of time) or left invisible; WAL replay over the snapshot
// re-stamps rows whose commits landed after the snapshot cut.
const (
	snapMagic = "HYSNAP01"
	// SnapshotFileName is the name of the snapshot inside the data directory.
	SnapshotFileName = "snapshot.db"
	// WALFileName is the name of the write-ahead log inside the data directory.
	WALFileName = "wal.log"
)

// encodeSnapshot serializes all tables and views into a snapshot body tagged
// with the WAL cut (lsn, lastCID).
func encodeSnapshot(sm *storage.StorageManager, lsn int64, lastCID types.CommitID) ([]byte, error) {
	w := &writer{buf: make([]byte, 0, 1<<16)}
	w.bytes([]byte(snapMagic))
	w.uvarint(uint64(lsn))
	w.uvarint(uint64(lastCID))

	names := sm.TableNames()
	w.uvarint(uint64(len(names)))
	for _, name := range names {
		t, err := sm.GetTable(name)
		if err != nil {
			return nil, err
		}
		if err := encodeTable(w, t); err != nil {
			return nil, fmt.Errorf("persistence: snapshot table %q: %w", name, err)
		}
	}

	views := sm.Views()
	w.uvarint(uint64(len(views)))
	for _, name := range sortedKeys(views) {
		w.string_(name)
		w.string_(views[name])
	}

	crc := crc32.ChecksumIEEE(w.buf[len(snapMagic):])
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc)
	return w.buf, nil
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func encodeTable(w *writer, t *storage.Table) error {
	w.string_(t.Name())
	w.uvarint(uint64(t.TargetChunkSize()))
	if t.UsesMvcc() {
		w.byte(1)
	} else {
		w.byte(0)
	}
	defs := t.ColumnDefinitions()
	w.uvarint(uint64(len(defs)))
	for _, d := range defs {
		w.string_(d.Name)
		w.byte(byte(d.Type))
		if d.Nullable {
			w.byte(1)
		} else {
			w.byte(0)
		}
	}

	chunks := t.Chunks()
	w.uvarint(uint64(len(chunks)))
	for _, c := range chunks {
		segs, rows := c.SnapshotSegments()
		if c.IsImmutable() {
			w.byte(1)
		} else {
			w.byte(0)
		}
		w.uvarint(uint64(rows))
		for _, seg := range segs {
			buf, err := encoding.AppendSegment(w.buf, seg)
			if err != nil {
				return err
			}
			w.buf = buf
		}
		mvcc := c.MvccData()
		if mvcc == nil {
			w.byte(0)
			continue
		}
		w.byte(1)
		committed := make([]bool, rows)
		deleted := make([]bool, rows)
		for i := 0; i < rows; i++ {
			off := types.ChunkOffset(i)
			committed[i] = mvcc.Begin(off) != types.MaxCommitID
			deleted[i] = mvcc.End(off) != types.MaxCommitID
		}
		w.bitmap(committed)
		w.bitmap(deleted)
	}
	return nil
}

// readSnapshot loads the snapshot file into the (empty) storage manager and
// returns the WAL cut it was taken at. A missing file returns (0, 0, nil).
func readSnapshot(path string, sm *storage.StorageManager) (lsn int64, lastCID types.CommitID, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, err
	}
	lsn, lastCID, err = DecodeSnapshot(buf, sm)
	if err != nil {
		return 0, 0, fmt.Errorf("persistence: snapshot %s: %w", path, err)
	}
	return lsn, lastCID, nil
}

// DecodeSnapshot loads serialized snapshot bytes — a snapshot file's exact
// contents, or the stream a replication primary ships for bootstrap — into
// the (empty) storage manager and returns the WAL cut they were taken at.
func DecodeSnapshot(buf []byte, sm *storage.StorageManager) (lsn int64, lastCID types.CommitID, err error) {
	if len(buf) < len(snapMagic)+4 || string(buf[:len(snapMagic)]) != snapMagic {
		return 0, 0, fmt.Errorf("not a snapshot image")
	}
	body := buf[len(snapMagic) : len(buf)-4]
	wantCRC := binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(body) != wantCRC {
		return 0, 0, fmt.Errorf("snapshot fails CRC check")
	}

	r := &reader{buf: body}
	lsn = int64(r.uvarint())
	lastCID = types.CommitID(r.uvarint())

	nTables := r.uvarint()
	if r.err == nil && nTables > uint64(len(body)) {
		r.fail("table count exceeds snapshot size")
	}
	for i := uint64(0); i < nTables && r.err == nil; i++ {
		t, err := decodeTable(r)
		if err != nil {
			return 0, 0, fmt.Errorf("persistence: snapshot table %d: %w", i, err)
		}
		if t == nil {
			break // r.err set
		}
		if err := sm.AddTable(t); err != nil {
			return 0, 0, err
		}
	}

	nViews := r.uvarint()
	if r.err == nil && nViews > uint64(len(body)) {
		r.fail("view count exceeds snapshot size")
	}
	for i := uint64(0); i < nViews && r.err == nil; i++ {
		name := r.string_()
		sql := r.string_()
		if r.err == nil {
			if err := sm.AddView(name, sql); err != nil {
				return 0, 0, err
			}
		}
	}
	if r.err != nil {
		return 0, 0, r.err
	}
	return lsn, lastCID, nil
}

func decodeTable(r *reader) (*storage.Table, error) {
	name := r.string_()
	chunkSize := int(r.uvarint())
	useMvcc := r.byte_() == 1
	nCols := r.uvarint()
	if r.err == nil && nCols > uint64(len(r.buf))+1 {
		r.fail("column count exceeds snapshot size")
	}
	if r.err != nil {
		return nil, r.err
	}
	defs := make([]storage.ColumnDefinition, 0, nCols)
	for i := uint64(0); i < nCols && r.err == nil; i++ {
		n := r.string_()
		ty := types.DataType(r.byte_())
		nullable := r.byte_() == 1
		defs = append(defs, storage.ColumnDefinition{Name: n, Type: ty, Nullable: nullable})
	}
	if r.err != nil {
		return nil, r.err
	}

	t := storage.NewTable(name, defs, chunkSize, useMvcc)
	nChunks := r.uvarint()
	if r.err == nil && nChunks > uint64(len(r.buf))+1 {
		r.fail("chunk count exceeds snapshot size")
	}
	for ci := uint64(0); ci < nChunks && r.err == nil; ci++ {
		immutable := r.byte_() == 1
		rows := int(r.uvarint())
		if r.err != nil {
			return nil, r.err
		}
		segs := make([]storage.Segment, len(defs))
		for i := range defs {
			seg, rest, err := encoding.DecodeSegment(r.buf)
			if err != nil {
				return nil, fmt.Errorf("chunk %d column %d: %w", ci, i, err)
			}
			if seg.Len() != rows {
				return nil, fmt.Errorf("chunk %d column %d: segment has %d rows, want %d", ci, i, seg.Len(), rows)
			}
			segs[i] = seg
			r.buf = rest
		}
		var mvcc *storage.MvccData
		hasMvcc := r.byte_() == 1
		if hasMvcc {
			committed := r.bitmap()
			deleted := r.bitmap()
			if r.err != nil {
				return nil, r.err
			}
			if len(committed) != rows || len(deleted) != rows {
				// bitmap() returns nil for zero-length maps, which matches
				// rows == 0; anything else is corruption.
				if !(rows == 0 && committed == nil && deleted == nil) {
					return nil, fmt.Errorf("chunk %d: MVCC bitmap length mismatch", ci)
				}
			}
			capacity := rows
			if !immutable {
				capacity = chunkSize // mutable tail keeps growing after restore
			}
			mvcc = storage.NewMvccData(capacity)
			for i := 0; i < rows; i++ {
				off := types.ChunkOffset(i)
				mvcc.EnsureCapacity(off)
				if committed[i] {
					mvcc.SetBegin(off, 0)
				}
				if deleted[i] {
					mvcc.SetEnd(off, 0)
				}
			}
		}
		chunk := storage.NewChunk(segs, mvcc)
		if immutable {
			chunk.Finalize()
		}
		t.AppendChunk(chunk)
	}
	if r.err != nil {
		return nil, r.err
	}
	return t, nil
}

// writeSnapshotFile atomically replaces the snapshot in dir: write to a temp
// file, fsync, rename, fsync the directory.
func writeSnapshotFile(dir string, buf []byte) error {
	final := filepath.Join(dir, SnapshotFileName)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	syncDir(final)
	return nil
}
