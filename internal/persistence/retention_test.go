package persistence

import (
	"errors"
	"testing"

	"hyrise/internal/concurrency"
	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// TestRetentionPinBlocksTruncation is the regression test for the follower
// starvation bug: a checkpoint used to truncate the WAL front uncon-
// ditionally, deleting log a replication follower had not shipped yet. A pin
// must hold the front, Move must slide it, and Release must let the next
// checkpoint reclaim the prefix.
func TestRetentionPinBlocksTruncation(t *testing.T) {
	dir := t.TempDir()
	sm, tm, m := openTestManager(t, dir, SyncCommit)
	defer m.Close()

	table := storage.NewTable("t", testDefs(), 0, true)
	if err := sm.AddTable(table); err != nil {
		t.Fatal(err)
	}
	if err := m.LogCreateTable(table); err != nil {
		t.Fatal(err)
	}
	insertTx(t, tm, table, [][]types.Value{{types.Int(1), types.Str("a"), types.Float(1.0)}})
	mid := m.WALEndLSN()
	insertTx(t, tm, table, [][]types.Value{{types.Int(2), types.Str("b"), types.Float(2.0)}})

	pin := m.PinWAL(0)
	if err := m.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got := m.WALStartLSN(); got != 0 {
		t.Fatalf("pinned checkpoint truncated the log: start = %d, want 0", got)
	}
	if _, _, err := m.ReadWAL(0, 1<<20); err != nil {
		t.Fatalf("ReadWAL(0) under pin: %v", err)
	}

	// Sliding the pin forward releases only the prefix below it.
	pin.Move(mid)
	if err := m.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got := m.WALStartLSN(); got != mid {
		t.Fatalf("after Move(%d): start = %d, want %d", mid, got, mid)
	}
	if _, _, err := m.ReadWAL(0, 1<<20); !errors.Is(err, ErrWALTrimmed) {
		t.Fatalf("ReadWAL(0) below moved pin: err = %v, want ErrWALTrimmed", err)
	}
	if _, _, err := m.ReadWAL(mid, 1<<20); err != nil {
		t.Fatalf("ReadWAL(mid) at pin: %v", err)
	}

	pin.Release()
	if err := m.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got, want := m.WALStartLSN(), m.WALEndLSN(); got != want {
		t.Fatalf("after Release: start = %d, want full truncation to %d", got, want)
	}
	if _, _, err := m.ReadWAL(mid, 1<<20); !errors.Is(err, ErrWALTrimmed) {
		t.Fatalf("ReadWAL(mid) after release: err = %v, want ErrWALTrimmed", err)
	}
}

// TestReadWALStreamApplier streams the log in small chunks through the
// exported frame reader and replays it into a second catalog via an Applier,
// exactly the way a replication follower tails a primary. The follower's
// visible rows must match the primary's.
func TestReadWALStreamApplier(t *testing.T) {
	dir := t.TempDir()
	sm, tm, m := openTestManager(t, dir, SyncCommit)
	defer m.Close()

	table := storage.NewTable("t", testDefs(), 4, true)
	if err := sm.AddTable(table); err != nil {
		t.Fatal(err)
	}
	if err := m.LogCreateTable(table); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		insertTx(t, tm, table, [][]types.Value{
			{types.Int(int64(i)), types.Str("row"), types.Float(float64(i))},
		})
	}
	tx := tm.New()
	if err := tx.TryInvalidate(table.GetChunk(0), 2); err != nil {
		t.Fatal(err)
	}
	tx.LogDelete("t", types.RowID{Chunk: 0, Offset: 2})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	sm2 := storage.NewStorageManager()
	tm2 := concurrency.NewTransactionManager()
	applier := NewApplier(sm2, tm2.PublishCommitID)

	// Tiny read quota forces many round trips and exercises the
	// whole-frames-only trim at every boundary.
	var lsn int64
	for {
		data, next, err := m.ReadWAL(lsn, 64)
		if err != nil {
			t.Fatalf("ReadWAL(%d): %v", lsn, err)
		}
		if next == lsn {
			break
		}
		if err := applier.ApplyFrames(data); err != nil {
			t.Fatalf("ApplyFrames at %d: %v", lsn, err)
		}
		lsn = next
	}
	if lsn != m.WALEndLSN() {
		t.Fatalf("stream stopped at %d, log ends at %d", lsn, m.WALEndLSN())
	}

	follower, err := sm2.GetTable("t")
	if err != nil {
		t.Fatalf("follower missed CREATE TABLE: %v", err)
	}
	want := visibleRows(tm, table)
	got := visibleRows(tm2, follower)
	if !rowsEqual(got, want) {
		t.Fatalf("follower rows = %v, want %v", got, want)
	}
	if cid, _ := applier.MaxIDs(); cid != tm.LastCommitID() {
		t.Fatalf("follower commit barrier = %d, primary = %d", cid, tm.LastCommitID())
	}
}

// TestSnapshotBytesDecode bootstraps a catalog from an in-memory snapshot
// image (the follower bootstrap path) and checks the cut and contents.
func TestSnapshotBytesDecode(t *testing.T) {
	dir := t.TempDir()
	sm, tm, m := openTestManager(t, dir, SyncCommit)
	defer m.Close()

	table := storage.NewTable("t", testDefs(), 0, true)
	if err := sm.AddTable(table); err != nil {
		t.Fatal(err)
	}
	if err := m.LogCreateTable(table); err != nil {
		t.Fatal(err)
	}
	insertTx(t, tm, table, [][]types.Value{
		{types.Int(1), types.Str("a"), types.Float(1.0)},
		{types.Int(2), types.Str("b"), types.Float(2.0)},
	})

	buf, lsn, cid, err := m.SnapshotBytes()
	if err != nil {
		t.Fatalf("SnapshotBytes: %v", err)
	}
	if lsn != m.WALEndLSN() {
		t.Fatalf("snapshot cut %d, log end %d", lsn, m.WALEndLSN())
	}
	if cid != tm.LastCommitID() {
		t.Fatalf("snapshot cid %d, last commit %d", cid, tm.LastCommitID())
	}

	sm2 := storage.NewStorageManager()
	gotLSN, gotCID, err := DecodeSnapshot(buf, sm2)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if gotLSN != lsn || gotCID != cid {
		t.Fatalf("decoded cut (%d, %d), want (%d, %d)", gotLSN, gotCID, lsn, cid)
	}
	tm2 := concurrency.NewTransactionManager()
	tm2.RecoverState(gotCID, 0)
	follower, err := sm2.GetTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if !rowsEqual(visibleRows(tm2, follower), visibleRows(tm, table)) {
		t.Fatalf("bootstrap rows differ from primary")
	}
}
