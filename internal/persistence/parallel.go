package persistence

import (
	"runtime"
	"sync"
)

// Recovery parallelism helpers. Recovery runs before the engine's scheduler
// exists, so the fan-out here uses plain bounded goroutines rather than
// scheduler tasks.

// resolveRecoveryWorkers maps an Options.RecoveryWorkers setting to a
// concrete worker count: 0 means one per CPU, negative means serial.
func resolveRecoveryWorkers(w int) int {
	if w == 0 {
		return runtime.NumCPU()
	}
	if w < 1 {
		return 1
	}
	return w
}

// runParallel invokes fn(0..n-1) with at most workers goroutines in flight.
// workers <= 1 (or n <= 1) degrades to a plain serial loop.
func runParallel(n, workers int, fn func(i int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}
