package persistence

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hyrise/internal/types"
)

// This file is the persistence manager's replication surface: retention pins
// that keep Checkpoint from truncating log a follower still needs, a
// streaming reader that serves raw framed WAL bytes by LSN, and an in-memory
// snapshot encoder for follower bootstrap. The shipped bytes are exactly the
// on-disk frames, so follower replay shares the CRC framing and record codec
// with crash recovery.

// ErrWALTrimmed reports that the requested LSN precedes the log's current
// start: the prefix was checkpointed away and the reader must catch up from
// a snapshot instead.
var ErrWALTrimmed = errors.New("persistence: requested LSN precedes WAL start")

// WALPin holds the log's front at or below an LSN. A shipper pins at its
// next-unshipped offset and moves the pin forward as batches go out; Release
// lets checkpoints reclaim the prefix again.
type WALPin struct {
	m  *Manager
	id int
}

// PinWAL registers a retention pin at lsn and returns it. Multiple pins may
// coexist; Checkpoint truncates only below the minimum of all pinned LSNs.
func (m *Manager) PinWAL(lsn int64) *WALPin {
	m.pinMu.Lock()
	defer m.pinMu.Unlock()
	if m.pins == nil {
		m.pins = make(map[int]int64)
	}
	m.pinSeq++
	id := m.pinSeq
	m.pins[id] = lsn
	return &WALPin{m: m, id: id}
}

// Move raises (or lowers) the pin to lsn.
func (p *WALPin) Move(lsn int64) {
	p.m.pinMu.Lock()
	defer p.m.pinMu.Unlock()
	if _, ok := p.m.pins[p.id]; ok {
		p.m.pins[p.id] = lsn
	}
}

// Release removes the pin. Releasing twice is a no-op.
func (p *WALPin) Release() {
	p.m.pinMu.Lock()
	defer p.m.pinMu.Unlock()
	delete(p.m.pins, p.id)
}

// minPinnedLSN returns the lowest pinned LSN, if any pin is registered.
func (m *Manager) minPinnedLSN() (int64, bool) {
	m.pinMu.Lock()
	defer m.pinMu.Unlock()
	min, ok := int64(0), false
	for _, lsn := range m.pins {
		if !ok || lsn < min {
			min, ok = lsn, true
		}
	}
	return min, ok
}

// WALStartLSN returns the logical offset of the first byte still in the log.
func (m *Manager) WALStartLSN() int64 { return m.wal.StartLSN() }

// WALEndLSN returns the logical end offset of the log (the next append
// position).
func (m *Manager) WALEndLSN() int64 { return m.wal.EndLSN() }

// ReadWAL returns up to maxBytes of raw framed log starting at LSN from,
// trimmed to whole frames, plus the LSN one past the returned bytes. It
// returns ErrWALTrimmed when from precedes the log's start (the caller must
// bootstrap from a snapshot) and (nil, from, nil) when the log has nothing
// new. The file is reopened on every call: front-truncation swaps the inode
// under a long-lived handle, while the path always names the current log.
func (m *Manager) ReadWAL(from int64, maxBytes int) (data []byte, next int64, err error) {
	// Capture the end before opening: appends past this point may be
	// mid-flush, and everything below it is fully flushed to the OS.
	end := m.wal.EndLSN()
	if from >= end {
		return nil, from, nil
	}
	f, err := os.Open(filepath.Join(m.opts.Dir, WALFileName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, from, nil
		}
		return nil, 0, err
	}
	defer f.Close()
	start, err := readWALHeader(f)
	if err != nil {
		return nil, 0, err
	}
	if from < start {
		return nil, 0, fmt.Errorf("%w (start %d, requested %d)", ErrWALTrimmed, start, from)
	}
	avail := end - from
	if avail > int64(maxBytes) {
		avail = int64(maxBytes)
	}
	buf := make([]byte, avail)
	n, err := f.ReadAt(buf, walHeaderLen+(from-start))
	if err != nil && err != io.EOF {
		return nil, 0, err
	}
	buf = buf[:CompleteFramesPrefix(buf[:n])]
	if len(buf) == 0 {
		return nil, from, nil
	}
	return buf, from + int64(len(buf)), nil
}

// SnapshotBytes encodes the whole catalog at a commit barrier and returns
// the serialized image plus its cut (lsn, lastCID) — the in-memory analog of
// Checkpoint, used to bootstrap a replication follower. Like Checkpoint, the
// encode runs after the barrier is released: rows committed during encoding
// may leak into the image, and replaying the log from the cut LSN re-stamps
// them idempotently.
func (m *Manager) SnapshotBytes() (buf []byte, lsn int64, cid types.CommitID, err error) {
	m.tm.CommitBarrier(func(highestCID types.CommitID) {
		lsn = m.wal.EndLSN()
		cid = highestCID
	})
	buf, err = encodeSnapshot(m.sm, lsn, cid)
	if err != nil {
		return nil, 0, 0, err
	}
	return buf, lsn, cid, nil
}
