package persistence

import (
	"os"
	"path/filepath"
	"testing"

	"hyrise/internal/concurrency"
	"hyrise/internal/storage"
	"hyrise/internal/types"
)

func testDefs() []storage.ColumnDefinition {
	return []storage.ColumnDefinition{
		{Name: "id", Type: types.TypeInt64},
		{Name: "name", Type: types.TypeString, Nullable: true},
		{Name: "score", Type: types.TypeFloat64, Nullable: true},
	}
}

func openTestManager(t *testing.T, dir string, mode SyncMode) (*storage.StorageManager, *concurrency.TransactionManager, *Manager) {
	t.Helper()
	sm := storage.NewStorageManager()
	tm := concurrency.NewTransactionManager()
	m, err := Open(sm, tm, Options{Dir: dir, Mode: mode})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return sm, tm, m
}

// insertTx appends rows in one transaction through the MVCC+WAL path,
// mirroring what the Insert operator does.
func insertTx(t *testing.T, tm *concurrency.TransactionManager, table *storage.Table, rows [][]types.Value) {
	t.Helper()
	tx := tm.New()
	for _, vals := range rows {
		rid, err := table.AppendRow(vals)
		if err != nil {
			t.Fatalf("AppendRow: %v", err)
		}
		tx.RegisterInsert(table.GetChunk(rid.Chunk), rid.Offset)
		tx.LogInsert(table.Name(), rid, vals)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

// visibleRows returns the rows of a table visible to a fresh transaction.
func visibleRows(tm *concurrency.TransactionManager, table *storage.Table) [][]types.Value {
	snapshot := tm.LastCommitID()
	var out [][]types.Value
	for _, c := range table.Chunks() {
		mvcc := c.MvccData()
		for o := 0; o < c.Size(); o++ {
			off := types.ChunkOffset(o)
			if mvcc != nil && !concurrency.Visible(mvcc, off, 0, snapshot) {
				continue
			}
			row := make([]types.Value, c.ColumnCount())
			for col := range row {
				row[col] = c.GetSegment(types.ColumnID(col)).ValueAt(off)
			}
			out = append(out, row)
		}
	}
	return out
}

func rowsEqual(a, b [][]types.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			x, y := a[i][j], b[i][j]
			if x.IsNull() != y.IsNull() {
				return false
			}
			if !x.IsNull() && x != y {
				return false
			}
		}
	}
	return true
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sm, tm, m := openTestManager(t, dir, SyncCommit)

	table := storage.NewTable("t", testDefs(), 4, true)
	if err := sm.AddTable(table); err != nil {
		t.Fatal(err)
	}
	if err := m.LogCreateTable(table); err != nil {
		t.Fatal(err)
	}

	insertTx(t, tm, table, [][]types.Value{
		{types.Int(1), types.Str("a"), types.Float(1.5)},
		{types.Int(2), types.NullValue, types.NullValue},
	})
	// Spill into a second chunk (capacity 4) and delete a row.
	insertTx(t, tm, table, [][]types.Value{
		{types.Int(3), types.Str("c"), types.Float(3.5)},
		{types.Int(4), types.Str("d"), types.Float(4.5)},
		{types.Int(5), types.Str("e"), types.Float(5.5)},
	})
	tx := tm.New()
	if err := tx.TryInvalidate(table.GetChunk(0), 1); err != nil {
		t.Fatal(err)
	}
	tx.LogDelete("t", types.RowID{Chunk: 0, Offset: 1})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	want := visibleRows(tm, table)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	sm2, tm2, m2 := openTestManager(t, dir, SyncCommit)
	defer m2.Close()
	got, err := sm2.GetTable("t")
	if err != nil {
		t.Fatalf("table not recovered: %v", err)
	}
	if !rowsEqual(visibleRows(tm2, got), want) {
		t.Fatalf("recovered rows = %v, want %v", visibleRows(tm2, got), want)
	}
	if got.TargetChunkSize() != 4 || !got.UsesMvcc() {
		t.Fatalf("table shape not recovered: chunkSize=%d mvcc=%v", got.TargetChunkSize(), got.UsesMvcc())
	}
}

func TestUncommittedInvisibleAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	sm, tm, m := openTestManager(t, dir, SyncOff)

	table := storage.NewTable("t", testDefs(), 0, true)
	if err := sm.AddTable(table); err != nil {
		t.Fatal(err)
	}
	if err := m.LogCreateTable(table); err != nil {
		t.Fatal(err)
	}
	insertTx(t, tm, table, [][]types.Value{{types.Int(1), types.Str("a"), types.Float(0)}})

	// A transaction that never commits: its rows hit the table but not the
	// WAL (the redo batch is only written at commit).
	tx := tm.New()
	rid, err := table.AppendRow([]types.Value{types.Int(99), types.Str("ghost"), types.Float(0)})
	if err != nil {
		t.Fatal(err)
	}
	tx.RegisterInsert(table.GetChunk(rid.Chunk), rid.Offset)
	tx.LogInsert("t", rid, []types.Value{types.Int(99), types.Str("ghost"), types.Float(0)})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	sm2, tm2, m2 := openTestManager(t, dir, SyncOff)
	defer m2.Close()
	got, err := sm2.GetTable("t")
	if err != nil {
		t.Fatal(err)
	}
	rows := visibleRows(tm2, got)
	if len(rows) != 1 || rows[0][0].I != 1 {
		t.Fatalf("uncommitted row leaked into recovery: %v", rows)
	}
}

func TestSnapshotRoundTripWithViewsAndDDL(t *testing.T) {
	dir := t.TempDir()
	sm, tm, m := openTestManager(t, dir, SyncCommit)

	table := storage.NewTable("t", testDefs(), 0, true)
	if err := sm.AddTable(table); err != nil {
		t.Fatal(err)
	}
	if err := m.LogCreateTable(table); err != nil {
		t.Fatal(err)
	}
	if err := sm.AddView("v", "SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}
	if err := m.LogCreateView("v", "SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}
	insertTx(t, tm, table, [][]types.Value{{types.Int(7), types.Str("x"), types.Float(7)}})

	if err := m.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// After truncation the WAL holds no records; state must come from the
	// snapshot alone. Drop the view *after* the checkpoint so the replayed
	// suffix carries the drop.
	if err := sm.DropView("v"); err != nil {
		t.Fatal(err)
	}
	if err := m.LogDropView("v"); err != nil {
		t.Fatal(err)
	}
	insertTx(t, tm, table, [][]types.Value{{types.Int(8), types.Str("y"), types.Float(8)}})
	want := visibleRows(tm, table)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	sm2, tm2, m2 := openTestManager(t, dir, SyncCommit)
	defer m2.Close()
	got, err := sm2.GetTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if !rowsEqual(visibleRows(tm2, got), want) {
		t.Fatalf("recovered rows = %v, want %v", visibleRows(tm2, got), want)
	}
	if _, ok := sm2.GetView("v"); ok {
		t.Fatal("dropped view resurrected by recovery")
	}
}

func TestTornTailTruncatedCleanly(t *testing.T) {
	dir := t.TempDir()
	sm, tm, m := openTestManager(t, dir, SyncOff)
	table := storage.NewTable("t", testDefs(), 0, true)
	if err := sm.AddTable(table); err != nil {
		t.Fatal(err)
	}
	if err := m.LogCreateTable(table); err != nil {
		t.Fatal(err)
	}
	insertTx(t, tm, table, [][]types.Value{{types.Int(1), types.Str("a"), types.Float(1)}})
	insertTx(t, tm, table, [][]types.Value{{types.Int(2), types.Str("b"), types.Float(2)}})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the last byte (simulates a torn write caught by the CRC).
	walPath := filepath.Join(dir, WALFileName)
	buf, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xFF
	if err := os.WriteFile(walPath, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	sm2, tm2, m2 := openTestManager(t, dir, SyncOff)
	got, err := sm2.GetTable("t")
	if err != nil {
		t.Fatal(err)
	}
	rows := visibleRows(tm2, got)
	if len(rows) != 1 || rows[0][0].I != 1 {
		t.Fatalf("want exactly the first committed row after torn tail, got %v", rows)
	}
	// The torn suffix must be gone so appending resumes from a valid tail.
	insertTx(t, tm2, got, [][]types.Value{{types.Int(3), types.Str("c"), types.Float(3)}})
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	sm3, tm3, m3 := openTestManager(t, dir, SyncOff)
	defer m3.Close()
	got3, err := sm3.GetTable("t")
	if err != nil {
		t.Fatal(err)
	}
	rows3 := visibleRows(tm3, got3)
	if len(rows3) != 2 {
		t.Fatalf("want rows 1 and 3 after re-append, got %v", rows3)
	}
}

func TestSyncModes(t *testing.T) {
	for _, mode := range []SyncMode{SyncOff, SyncCommit, SyncBatch} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			sm, tm, m := openTestManager(t, dir, mode)
			table := storage.NewTable("t", testDefs(), 0, true)
			if err := sm.AddTable(table); err != nil {
				t.Fatal(err)
			}
			if err := m.LogCreateTable(table); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				insertTx(t, tm, table, [][]types.Value{
					{types.Int(int64(i)), types.Str("r"), types.Float(float64(i))},
				})
			}
			if got := len(visibleRows(tm, table)); got != 10 {
				t.Fatalf("visible rows before close = %d, want 10", got)
			}
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			sm2, tm2, m2 := openTestManager(t, dir, mode)
			defer m2.Close()
			got, err := sm2.GetTable("t")
			if err != nil {
				t.Fatal(err)
			}
			if n := len(visibleRows(tm2, got)); n != 10 {
				t.Fatalf("recovered %d rows, want 10", n)
			}
		})
	}
}

func TestParseSyncMode(t *testing.T) {
	for name, want := range map[string]SyncMode{"off": SyncOff, "commit": SyncCommit, "batch": SyncBatch, "": SyncCommit} {
		got, err := ParseSyncMode(name)
		if err != nil || got != want {
			t.Fatalf("ParseSyncMode(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseSyncMode("bogus"); err == nil {
		t.Fatal("ParseSyncMode accepted garbage")
	}
}
