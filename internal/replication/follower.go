package replication

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"hyrise/internal/concurrency"
	"hyrise/internal/observe"
	"hyrise/internal/persistence"
	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// State is a follower's lifecycle phase.
type State string

// Follower states.
const (
	StateIdle          State = "idle"          // created, not started
	StateBootstrapping State = "bootstrapping" // loading a snapshot image
	StateStreaming     State = "streaming"     // applying the WAL tail
	StateDisconnected  State = "disconnected"  // lost the primary, reconnecting
	StatePromoted      State = "promoted"      // standalone read-write
	StateStopped       State = "stopped"
)

// Follower tails a primary: it bootstraps from a snapshot image when needed,
// replays shipped WAL frames into its catalog through the shared
// persistence.Applier, and publishes each replayed commit id so concurrent
// readers advance to the new commit barrier atomically. Reads are served by
// the follower's own engine while replay runs; the storage layer's chunk
// locks and atomic MVCC cells make that safe.
type Follower struct {
	sm   *storage.StorageManager
	tm   *concurrency.TransactionManager
	dial func() (io.ReadWriteCloser, error)

	applier *persistence.Applier

	mu           sync.Mutex
	state        State
	conn         io.ReadWriteCloser
	appliedLSN   int64
	appliedCID   types.CommitID
	primaryEnd   int64
	primaryCID   types.CommitID
	lagNS        int64
	bootstrapped bool
	bootstraps   int64
	waitCh       chan struct{}

	stopc chan struct{}
	wg    sync.WaitGroup

	appliedLSNGauge *observe.Gauge
	lagBytesGauge   *observe.Gauge
	lagNSGauge      *observe.Gauge
	appliedBytes    *observe.Counter
	bootstrapsCtr   *observe.Counter
}

// NewFollower creates a follower over an engine's catalog and transaction
// manager. dial opens a fresh transport to the primary (called on every
// connect and reconnect); reg receives replication.* metrics (may be nil).
func NewFollower(sm *storage.StorageManager, tm *concurrency.TransactionManager, reg *observe.Registry, dial func() (io.ReadWriteCloser, error)) *Follower {
	f := &Follower{
		sm:     sm,
		tm:     tm,
		dial:   dial,
		state:  StateIdle,
		waitCh: make(chan struct{}),
		stopc:  make(chan struct{}),
	}
	f.applier = persistence.NewApplier(sm, f.onCommit)
	if reg != nil {
		f.appliedLSNGauge = reg.Gauge("replication.applied_lsn")
		f.lagBytesGauge = reg.Gauge("replication.lag_bytes")
		f.lagNSGauge = reg.Gauge("replication.lag_ns")
		f.appliedBytes = reg.Counter("replication.applied_bytes")
		f.bootstrapsCtr = reg.Counter("replication.bootstraps")
	}
	return f
}

// onCommit runs inside ApplyFrames after one commit's rows are fully
// stamped: publish the commit id (advancing the read barrier) and wake
// barrier waiters.
func (f *Follower) onCommit(cid types.CommitID) {
	f.tm.PublishCommitID(cid)
	f.mu.Lock()
	f.appliedCID = cid
	close(f.waitCh)
	f.waitCh = make(chan struct{})
	f.mu.Unlock()
}

// Start launches the replication loop: connect, bootstrap if needed, stream,
// reconnect with backoff on failure.
func (f *Follower) Start() {
	f.wg.Add(1)
	go f.loop()
}

func (f *Follower) loop() {
	defer f.wg.Done()
	backoff := 10 * time.Millisecond
	for {
		if f.stopping() {
			return
		}
		start := time.Now()
		_ = f.streamOnce() // transport errors end the session; reconnect below
		if f.stopping() {
			return
		}
		f.setState(StateDisconnected)
		if time.Since(start) > time.Second {
			backoff = 10 * time.Millisecond // a healthy session resets the backoff
		}
		select {
		case <-f.stopc:
			return
		case <-time.After(backoff):
		}
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// streamOnce runs one session against the primary: hello, optional snapshot
// bootstrap, then continuous WAL replay until the transport fails or the
// follower stops.
func (f *Follower) streamOnce() error {
	conn, err := f.dial()
	if err != nil {
		return err
	}
	f.mu.Lock()
	if f.state == StateStopped || f.state == StatePromoted {
		f.mu.Unlock()
		conn.Close()
		return nil
	}
	f.conn = conn
	from := int64(-1)
	if f.bootstrapped {
		from = f.appliedLSN
	}
	f.mu.Unlock()
	defer func() {
		conn.Close()
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
	}()

	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	var hello [8]byte
	putU64(hello[:], uint64(from))
	if err := writeMsg(bw, msgHello, hello[:]); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	var snapImage []byte
	for {
		typ, payload, err := readMsg(br)
		if err != nil {
			return err
		}
		switch typ {
		case msgSnapBegin:
			if len(payload) < 8 {
				return fmt.Errorf("replication: short snapshot header")
			}
			f.setState(StateBootstrapping)
			snapImage = make([]byte, 0, getI64(payload, 0))
		case msgSnapChunk:
			snapImage = append(snapImage, payload...)
		case msgSnapEnd:
			if len(payload) < 16 {
				return fmt.Errorf("replication: short snapshot trailer")
			}
			cutLSN := getI64(payload, 0)
			cutCID := types.CommitID(getU64(payload, 1))
			if err := f.installSnapshot(snapImage, cutLSN, cutCID); err != nil {
				return err
			}
			snapImage = nil
			f.setState(StateStreaming)
		case msgWAL:
			if len(payload) < 8 {
				return fmt.Errorf("replication: short WAL batch")
			}
			startLSN := getI64(payload, 0)
			frames := payload[8:]
			f.mu.Lock()
			applied := f.appliedLSN
			f.mu.Unlock()
			if startLSN != applied {
				return fmt.Errorf("replication: batch starts at %d, follower at %d", startLSN, applied)
			}
			if err := f.applier.ApplyFrames(frames); err != nil {
				return err
			}
			f.mu.Lock()
			f.appliedLSN += int64(len(frames))
			applied = f.appliedLSN
			f.mu.Unlock()
			f.setState(StateStreaming)
			if f.appliedLSNGauge != nil {
				f.appliedLSNGauge.Set(applied)
				f.appliedBytes.Add(int64(len(frames)))
			}
			if err := f.sendAck(bw); err != nil {
				return err
			}
		case msgHeartbeat:
			if len(payload) < 24 {
				return fmt.Errorf("replication: short heartbeat")
			}
			f.mu.Lock()
			f.primaryEnd = getI64(payload, 0)
			f.primaryCID = types.CommitID(getU64(payload, 1))
			lagBytes := f.primaryEnd - f.appliedLSN
			if lagBytes < 0 {
				lagBytes = 0
			}
			f.lagNS = time.Now().UnixNano() - getI64(payload, 2)
			lagNS := f.lagNS
			f.mu.Unlock()
			if f.lagBytesGauge != nil {
				f.lagBytesGauge.Set(lagBytes)
				f.lagNSGauge.Set(lagNS)
			}
			if err := f.sendAck(bw); err != nil {
				return err
			}
		default:
			return fmt.Errorf("replication: unexpected message %q", typ)
		}
	}
}

// installSnapshot replaces the catalog with a shipped snapshot image. The
// swap is not atomic with respect to concurrent readers: queries racing a
// re-bootstrap may fail transiently (the router does not route to a
// bootstrapping follower).
func (f *Follower) installSnapshot(img []byte, cutLSN int64, cutCID types.CommitID) error {
	f.applier.Reset()
	for _, name := range f.sm.TableNames() {
		_ = f.sm.DropTable(name)
	}
	for name := range f.sm.Views() {
		_ = f.sm.DropView(name)
	}
	if _, _, err := persistence.DecodeSnapshot(img, f.sm); err != nil {
		return fmt.Errorf("replication: install snapshot: %w", err)
	}
	f.tm.PublishCommitID(cutCID)
	f.mu.Lock()
	f.appliedLSN = cutLSN
	if cutCID > f.appliedCID {
		f.appliedCID = cutCID
	}
	f.bootstrapped = true
	f.bootstraps++
	close(f.waitCh)
	f.waitCh = make(chan struct{})
	f.mu.Unlock()
	if f.bootstrapsCtr != nil {
		f.bootstrapsCtr.Inc()
		f.appliedLSNGauge.Set(cutLSN)
	}
	return nil
}

func (f *Follower) sendAck(bw *bufio.Writer) error {
	f.mu.Lock()
	lsn, cid := f.appliedLSN, f.appliedCID
	f.mu.Unlock()
	var ack [16]byte
	putU64(ack[:], uint64(lsn), uint64(cid))
	if err := writeMsg(bw, msgAck, ack[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// WaitForCommit blocks until the follower has applied commit id cid (the
// consistent-read barrier: capture the primary's LastCommitID, wait here,
// then read). It fails when ctx expires first.
func (f *Follower) WaitForCommit(ctx context.Context, cid types.CommitID) error {
	for {
		f.mu.Lock()
		cur, ch := f.appliedCID, f.waitCh
		f.mu.Unlock()
		if cur >= cid {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// Promote detaches the follower from its primary and turns it into a
// standalone read-write node: the stream stops, and the transaction manager
// is fast-forwarded past every replayed transaction so new writes get fresh
// ids. The caller flips its engine out of read-only mode.
func (f *Follower) Promote() {
	f.mu.Lock()
	if f.state == StatePromoted || f.state == StateStopped {
		f.mu.Unlock()
		return
	}
	f.state = StatePromoted
	conn := f.conn
	f.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	f.wg.Wait()
	_, maxTID := f.applier.MaxIDs()
	f.mu.Lock()
	cid := f.appliedCID
	f.mu.Unlock()
	f.tm.RecoverState(cid, maxTID)
}

// Repoint re-targets the follower at a different primary (failover: a peer
// was promoted). The current session is dropped and the next connect forces
// a snapshot bootstrap — the new primary's LSN space need not line up with
// the old one's.
func (f *Follower) Repoint(dial func() (io.ReadWriteCloser, error)) {
	f.mu.Lock()
	f.dial = dial
	f.bootstrapped = false
	conn := f.conn
	f.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// Stop ends replication permanently (shutdown, not failover).
func (f *Follower) Stop() {
	f.mu.Lock()
	if f.state == StateStopped {
		f.mu.Unlock()
		return
	}
	prev := f.state
	f.state = StateStopped
	conn := f.conn
	f.mu.Unlock()
	close(f.stopc)
	if conn != nil {
		conn.Close()
	}
	if prev != StatePromoted { // Promote already waited for the loop
		f.wg.Wait()
	}
}

func (f *Follower) setState(s State) {
	f.mu.Lock()
	// Terminal states win races against the streaming goroutine.
	if f.state != StateStopped && f.state != StatePromoted {
		f.state = s
	}
	f.mu.Unlock()
}

func (f *Follower) stopping() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state == StateStopped || f.state == StatePromoted
}

// Status is a point-in-time view of the follower, surfaced in
// meta_replication and the facade.
type Status struct {
	State      State
	AppliedLSN int64
	AppliedCID types.CommitID
	PrimaryEnd int64
	PrimaryCID types.CommitID
	LagBytes   int64
	LagNS      int64
	Bootstraps int64
}

// Status snapshots the follower's position.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	lag := f.primaryEnd - f.appliedLSN
	if lag < 0 {
		lag = 0
	}
	return Status{
		State:      f.state,
		AppliedLSN: f.appliedLSN,
		AppliedCID: f.appliedCID,
		PrimaryEnd: f.primaryEnd,
		PrimaryCID: f.primaryCID,
		LagBytes:   lag,
		LagNS:      f.lagNS,
		Bootstraps: f.bootstraps,
	}
}

// AppliedLSN returns the follower's replay position.
func (f *Follower) AppliedLSN() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appliedLSN
}

// AppliedCID returns the follower's commit barrier.
func (f *Follower) AppliedCID() types.CommitID {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appliedCID
}
