package replication

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"hyrise/internal/concurrency"
	"hyrise/internal/persistence"
	"hyrise/internal/storage"
	"hyrise/internal/types"
)

func testDefs() []storage.ColumnDefinition {
	return []storage.ColumnDefinition{
		{Name: "id", Type: types.TypeInt64},
		{Name: "name", Type: types.TypeString, Nullable: true},
	}
}

// primaryStack is a minimal durable "engine": catalog + transactions + WAL.
type primaryStack struct {
	sm *storage.StorageManager
	tm *concurrency.TransactionManager
	pm *persistence.Manager
	p  *Primary
}

func newPrimaryStack(t *testing.T) *primaryStack {
	t.Helper()
	sm := storage.NewStorageManager()
	tm := concurrency.NewTransactionManager()
	pm, err := persistence.Open(sm, tm, persistence.Options{Dir: t.TempDir(), Mode: persistence.SyncCommit})
	if err != nil {
		t.Fatalf("persistence.Open: %v", err)
	}
	s := &primaryStack{sm: sm, tm: tm, pm: pm, p: NewPrimary(pm, tm, nil)}
	t.Cleanup(func() { s.p.Close(); _ = pm.Close() })
	return s
}

// pipeDial connects a follower to the primary through an in-memory pipe —
// the single-process topology. The bytes on the pipe are identical to what
// the TCP transport carries.
func (s *primaryStack) pipeDial() func() (io.ReadWriteCloser, error) {
	return func() (io.ReadWriteCloser, error) {
		c1, c2 := net.Pipe()
		go func() { _ = s.p.ServeConn(c2, "pipe") }()
		return c1, nil
	}
}

func (s *primaryStack) createTable(t *testing.T, name string) *storage.Table {
	t.Helper()
	table := storage.NewTable(name, testDefs(), 4, true)
	if err := s.sm.AddTable(table); err != nil {
		t.Fatal(err)
	}
	if err := s.pm.LogCreateTable(table); err != nil {
		t.Fatal(err)
	}
	return table
}

func (s *primaryStack) insert(t *testing.T, table *storage.Table, id int64, name string) {
	t.Helper()
	tx := s.tm.New()
	vals := []types.Value{types.Int(id), types.Str(name)}
	rid, err := table.AppendRow(vals)
	if err != nil {
		t.Fatal(err)
	}
	tx.RegisterInsert(table.GetChunk(rid.Chunk), rid.Offset)
	tx.LogInsert(table.Name(), rid, vals)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// visible returns the rows of a table visible at the manager's last commit.
func visible(tm *concurrency.TransactionManager, table *storage.Table) [][]types.Value {
	snapshot := tm.LastCommitID()
	var out [][]types.Value
	for _, c := range table.Chunks() {
		mvcc := c.MvccData()
		for o := 0; o < c.Size(); o++ {
			off := types.ChunkOffset(o)
			if mvcc != nil && !concurrency.Visible(mvcc, off, 0, snapshot) {
				continue
			}
			row := make([]types.Value, c.ColumnCount())
			for col := range row {
				row[col] = c.GetSegment(types.ColumnID(col)).ValueAt(off)
			}
			out = append(out, row)
		}
	}
	return out
}

func sameRows(a, b [][]types.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for j := range a[i] {
			if !a[i][j].Equal(b[i][j]) {
				return false
			}
		}
	}
	return true
}

// newFollower creates a blank follower engine attached through dial.
func newFollower(dial func() (io.ReadWriteCloser, error)) (*Follower, *storage.StorageManager, *concurrency.TransactionManager) {
	sm := storage.NewStorageManager()
	tm := concurrency.NewTransactionManager()
	f := NewFollower(sm, tm, nil, dial)
	return f, sm, tm
}

// waitCaughtUp blocks until the follower's barrier reaches the primary's
// current commit.
func waitCaughtUp(t *testing.T, s *primaryStack, f *Follower) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.WaitForCommit(ctx, s.tm.LastCommitID()); err != nil {
		t.Fatalf("follower never reached commit %d (at %d): %v", s.tm.LastCommitID(), f.AppliedCID(), err)
	}
}

func TestBootstrapAndTail(t *testing.T) {
	s := newPrimaryStack(t)
	table := s.createTable(t, "t")
	for i := 0; i < 20; i++ {
		s.insert(t, table, int64(i), "before-attach")
	}
	// Checkpoint so part of the history is only in the snapshot: the
	// follower must combine image + tail.
	if err := s.pm.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 30; i++ {
		s.insert(t, table, int64(i), "after-checkpoint")
	}

	f, fsm, ftm := newFollower(s.pipeDial())
	f.Start()
	defer f.Stop()

	// Writes racing the attach must also arrive.
	for i := 30; i < 40; i++ {
		s.insert(t, table, int64(i), "after-attach")
	}
	waitCaughtUp(t, s, f)

	ftable, err := fsm.GetTable("t")
	if err != nil {
		t.Fatalf("follower missing table: %v", err)
	}
	if got, want := visible(ftm, ftable), visible(s.tm, table); !sameRows(got, want) {
		t.Fatalf("follower rows diverge: got %d rows, want %d", len(got), len(want))
	}
	if st := f.Status(); st.State != StateStreaming || st.Bootstraps != 1 {
		t.Fatalf("status = %+v, want streaming after 1 bootstrap", st)
	}
}

// limitedConn kills the transport after a byte budget is read — the fault
// injector: sessions die at arbitrary WAL/snapshot offsets.
type limitedConn struct {
	io.ReadWriteCloser
	mu        sync.Mutex
	remaining int
}

func (c *limitedConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	rem := c.remaining
	c.mu.Unlock()
	if rem <= 0 {
		c.Close()
		return 0, fmt.Errorf("injected transport failure")
	}
	if len(p) > rem {
		p = p[:rem]
	}
	n, err := c.ReadWriteCloser.Read(p)
	c.mu.Lock()
	c.remaining -= n
	c.mu.Unlock()
	return n, err
}

// TestFlakyTransportConverges reconnects through a transport that dies after
// ever-larger byte budgets; every session is killed at a different offset —
// mid-snapshot, mid-batch, mid-frame — and replay must still converge to the
// primary's exact state.
func TestFlakyTransportConverges(t *testing.T) {
	s := newPrimaryStack(t)
	table := s.createTable(t, "t")
	for i := 0; i < 50; i++ {
		s.insert(t, table, int64(i), "payload-padding-to-make-frames-wide")
	}

	var mu sync.Mutex
	budget := 64 // grows per attempt; first sessions die inside the snapshot
	base := s.pipeDial()
	dial := func() (io.ReadWriteCloser, error) {
		conn, err := base()
		if err != nil {
			return nil, err
		}
		mu.Lock()
		b := budget
		budget *= 2
		mu.Unlock()
		return &limitedConn{ReadWriteCloser: conn, remaining: b}, nil
	}

	f, fsm, ftm := newFollower(dial)
	f.Start()
	defer f.Stop()
	for i := 50; i < 80; i++ {
		s.insert(t, table, int64(i), "written-while-flaky")
	}
	waitCaughtUp(t, s, f)

	ftable, err := fsm.GetTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := visible(ftm, ftable), visible(s.tm, table); !sameRows(got, want) {
		t.Fatalf("flaky follower diverged: %d rows vs %d", len(got), len(want))
	}
}

// TestCrashedFollowerCatchesUpViaSnapshot kills followers outright at
// arbitrary replay offsets (fresh engine each time — a crash loses all
// in-memory state), checkpoints the primary so the WAL the dead follower was
// reading gets truncated, and requires the replacement to converge through
// the snapshot path.
func TestCrashedFollowerCatchesUpViaSnapshot(t *testing.T) {
	s := newPrimaryStack(t)
	table := s.createTable(t, "t")
	row := int64(0)
	for ; row < 30; row++ {
		s.insert(t, table, row, "initial")
	}

	for attempt, budget := range []int{128, 700, 3000} {
		// A follower that dies mid-replay at this byte offset.
		doomed, _, _ := newFollower(func() (io.ReadWriteCloser, error) {
			conn, err := s.pipeDial()()
			if err != nil {
				return nil, err
			}
			return &limitedConn{ReadWriteCloser: conn, remaining: budget}, nil
		})
		doomed.Start()
		time.Sleep(20 * time.Millisecond) // let it get partway through replay
		doomed.Stop()                     // the crash: all state discarded

		// The primary moves on: more commits, then a checkpoint that
		// truncates the log the dead follower was reading.
		for i := 0; i < 10; i++ {
			s.insert(t, table, row, fmt.Sprintf("after-crash-%d", attempt))
			row++
		}
		if err := s.pm.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}

	// The replacement follower starts from nothing, far behind the trimmed
	// log: it must bootstrap from a snapshot and tail to convergence.
	f, fsm, ftm := newFollower(s.pipeDial())
	f.Start()
	defer f.Stop()
	waitCaughtUp(t, s, f)

	ftable, err := fsm.GetTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := visible(ftm, ftable), visible(s.tm, table); !sameRows(got, want) {
		t.Fatalf("replacement follower diverged: %d rows vs %d", len(got), len(want))
	}
	if st := f.Status(); st.Bootstraps != 1 {
		t.Fatalf("expected snapshot bootstrap, got %+v", st)
	}
}

// TestStaleFollowerForcedToBootstrap: a follower disconnects, the primary
// checkpoints (truncating the log past the follower's position — its pin
// died with the session), and the reconnecting follower must detect the gap
// and re-bootstrap rather than resume.
func TestStaleFollowerForcedToBootstrap(t *testing.T) {
	s := newPrimaryStack(t)
	table := s.createTable(t, "t")
	for i := 0; i < 10; i++ {
		s.insert(t, table, int64(i), "a")
	}

	// gate blocks reconnects so we control when the follower comes back.
	gate := make(chan struct{})
	var firstConn io.ReadWriteCloser
	var mu sync.Mutex
	attempts := 0
	base := s.pipeDial()
	dial := func() (io.ReadWriteCloser, error) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n > 1 {
			<-gate
		}
		conn, err := base()
		if n == 1 && err == nil {
			mu.Lock()
			firstConn = conn
			mu.Unlock()
		}
		return conn, err
	}

	f, fsm, ftm := newFollower(dial)
	f.Start()
	defer f.Stop()
	waitCaughtUp(t, s, f)

	// Sever the session, advance and truncate the log while it is away. The
	// primary drops the session's retention pin when it notices the
	// disconnect; wait for that before checkpointing.
	mu.Lock()
	firstConn.Close()
	mu.Unlock()
	for deadline := time.Now().Add(5 * time.Second); len(s.p.Followers()) > 0; {
		if time.Now().After(deadline) {
			t.Fatal("primary never noticed the disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 10; i < 20; i++ {
		s.insert(t, table, int64(i), "b")
	}
	if err := s.pm.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.pm.WALStartLSN() <= f.AppliedLSN() {
		t.Fatalf("setup failed: log start %d not past follower %d", s.pm.WALStartLSN(), f.AppliedLSN())
	}
	close(gate)
	waitCaughtUp(t, s, f)

	ftable, err := fsm.GetTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := visible(ftm, ftable), visible(s.tm, table); !sameRows(got, want) {
		t.Fatalf("re-bootstrapped follower diverged")
	}
	if st := f.Status(); st.Bootstraps != 2 {
		t.Fatalf("expected forced re-bootstrap (2 bootstraps), got %+v", st)
	}
}

// TestPromote turns a caught-up follower into a standalone writable node.
func TestPromote(t *testing.T) {
	s := newPrimaryStack(t)
	table := s.createTable(t, "t")
	for i := 0; i < 5; i++ {
		s.insert(t, table, int64(i), "from-primary")
	}

	f, fsm, ftm := newFollower(s.pipeDial())
	f.Start()
	waitCaughtUp(t, s, f)
	f.Promote()
	if st := f.Status(); st.State != StatePromoted {
		t.Fatalf("state = %v, want promoted", st.State)
	}

	// Writes committed on the ex-follower must get fresh transaction ids and
	// become visible locally.
	ftable, err := fsm.GetTable("t")
	if err != nil {
		t.Fatal(err)
	}
	before := len(visible(ftm, ftable))
	tx := ftm.New()
	vals := []types.Value{types.Int(100), types.Str("post-promote")}
	rid, err := ftable.AppendRow(vals)
	if err != nil {
		t.Fatal(err)
	}
	tx.RegisterInsert(ftable.GetChunk(rid.Chunk), rid.Offset)
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit on promoted node: %v", err)
	}
	if got := len(visible(ftm, ftable)); got != before+1 {
		t.Fatalf("promoted write not visible: %d rows, want %d", got, before+1)
	}
	f.Stop()
}

// TestReadYourWritesBarrier checks the consistent-read protocol: capture the
// primary's commit id, wait on the follower, read — the follower must serve
// at least that barrier.
func TestReadYourWritesBarrier(t *testing.T) {
	s := newPrimaryStack(t)
	table := s.createTable(t, "t")
	f, fsm, ftm := newFollower(s.pipeDial())
	f.Start()
	defer f.Stop()

	for i := 0; i < 25; i++ {
		s.insert(t, table, int64(i), "w")
		barrier := s.tm.LastCommitID()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := f.WaitForCommit(ctx, barrier)
		cancel()
		if err != nil {
			t.Fatalf("barrier wait %d: %v", barrier, err)
		}
		ftable, err := fsm.GetTable("t")
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if got := len(visible(ftm, ftable)); got < i+1 {
			t.Fatalf("read-your-writes violated: %d rows visible after commit %d", got, i+1)
		}
	}
}

// TestTCPTransport runs the same protocol over a real socket.
func TestTCPTransport(t *testing.T) {
	s := newPrimaryStack(t)
	table := s.createTable(t, "t")
	for i := 0; i < 10; i++ {
		s.insert(t, table, int64(i), "tcp")
	}
	addr, err := s.p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	f, fsm, ftm := newFollower(func() (io.ReadWriteCloser, error) {
		return net.DialTimeout("tcp", addr, time.Second)
	})
	f.Start()
	defer f.Stop()
	waitCaughtUp(t, s, f)
	ftable, err := fsm.GetTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := visible(ftm, ftable), visible(s.tm, table); !sameRows(got, want) {
		t.Fatalf("TCP follower diverged")
	}
	if got := len(s.p.Followers()); got != 1 {
		t.Fatalf("Followers() = %d, want 1", got)
	}
}
