package replication

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"hyrise/internal/concurrency"
	"hyrise/internal/observe"
	"hyrise/internal/persistence"
)

const (
	// shipBatchBytes caps one msgWAL payload.
	shipBatchBytes = 256 << 10
	// shipPollInterval is how often an idle shipper re-checks the log end.
	// The WAL flushes to the OS on every append, so new commits are visible
	// to the streaming reader within one poll.
	shipPollInterval = 2 * time.Millisecond
	// heartbeatInterval paces position reports while the shipper is idle.
	heartbeatInterval = 50 * time.Millisecond
	// snapChunkBytes slices a snapshot image for shipping.
	snapChunkBytes = 256 << 10
)

// Primary ships the WAL to followers. One goroutine per follower reads acks;
// the serving goroutine streams snapshot chunks, WAL batches, and
// heartbeats. Every follower session holds a retention pin so checkpoints
// never truncate log the follower has not received.
type Primary struct {
	pm *persistence.Manager
	tm *concurrency.TransactionManager

	mu        sync.Mutex
	ln        net.Listener
	conns     map[io.Closer]struct{}
	followers map[int64]*followerState
	seq       int64
	closed    bool
	wg        sync.WaitGroup

	followersGauge *observe.Gauge
	shippedBytes   *observe.Counter
	snapshotsSent  *observe.Counter
}

// followerState is the primary's view of one follower session, surfaced in
// meta_replication.
type followerState struct {
	id   int64
	peer string

	mu       sync.Mutex
	state    string
	sentLSN  int64
	ackedLSN int64
	ackedCID uint64
	lastAck  time.Time
}

// FollowerInfo is a snapshot of one follower session.
type FollowerInfo struct {
	ID       int64
	Peer     string
	State    string
	SentLSN  int64
	AckedLSN int64
	AckedCID uint64
	LastAck  time.Time
}

// NewPrimary creates a shipper over an engine's persistence manager and
// transaction manager. reg receives replication.* metrics (may be nil).
func NewPrimary(pm *persistence.Manager, tm *concurrency.TransactionManager, reg *observe.Registry) *Primary {
	p := &Primary{
		pm:        pm,
		tm:        tm,
		conns:     make(map[io.Closer]struct{}),
		followers: make(map[int64]*followerState),
	}
	if reg != nil {
		p.followersGauge = reg.Gauge("replication.followers")
		p.shippedBytes = reg.Counter("replication.shipped_bytes")
		p.snapshotsSent = reg.Counter("replication.snapshots_sent")
	}
	return p
}

// Listen binds the replication address and starts accepting followers in the
// background. It returns the actual address (useful with port 0).
func (p *Primary) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("replication: primary is closed")
	}
	p.ln = ln
	p.wg.Add(1)
	p.mu.Unlock()
	go func() {
		defer p.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				_ = p.ServeConn(conn, conn.RemoteAddr().String())
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// ServeConn runs one follower session over any transport (a net.Conn, or
// one end of a net.Pipe for the in-process topology) until the peer
// disconnects or the primary closes. It blocks.
func (p *Primary) ServeConn(conn io.ReadWriteCloser, peer string) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		conn.Close()
		return fmt.Errorf("replication: primary is closed")
	}
	p.conns[conn] = struct{}{}
	p.seq++
	st := &followerState{id: p.seq, peer: peer, state: "connected"}
	p.followers[st.id] = st
	p.mu.Unlock()
	if p.followersGauge != nil {
		p.followersGauge.Add(1)
	}
	defer func() {
		conn.Close()
		p.mu.Lock()
		delete(p.conns, conn)
		delete(p.followers, st.id)
		p.mu.Unlock()
		if p.followersGauge != nil {
			p.followersGauge.Add(-1)
		}
	}()
	return p.serve(conn, st)
}

func (p *Primary) serve(conn io.ReadWriteCloser, st *followerState) error {
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)

	typ, payload, err := readMsg(br)
	if err != nil {
		return err
	}
	if typ != msgHello || len(payload) < 8 {
		return fmt.Errorf("replication: expected hello, got %q", typ)
	}
	from := getI64(payload, 0)

	// Pin before deciding between tail and bootstrap: a checkpoint running
	// right now must not truncate the suffix we are about to ship. The pin
	// lands at the current start; re-reading the start afterwards closes the
	// race where truncation won between the read and the pin.
	pin := p.pm.PinWAL(p.pm.WALStartLSN())
	defer pin.Release()
	start := p.pm.WALStartLSN()

	if from < start || from > p.pm.WALEndLSN() {
		// Bootstrap: new follower (from < 0), trimmed-away suffix, or a
		// divergent position from a previous primary. Ship a snapshot image
		// and restart the tail at its cut.
		cut, err := p.sendSnapshot(bw, st)
		if err != nil {
			return err
		}
		pin.Move(cut)
		from = cut
	} else {
		pin.Move(from)
	}
	st.setState("streaming")

	// Ack reader: progress reports arrive asynchronously while we ship.
	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		for {
			typ, payload, err := readMsg(br)
			if err != nil {
				return
			}
			if typ == msgAck && len(payload) >= 16 {
				st.mu.Lock()
				st.ackedLSN = getI64(payload, 0)
				st.ackedCID = getU64(payload, 1)
				st.lastAck = time.Now()
				st.mu.Unlock()
			}
		}
	}()

	err = p.ship(bw, st, pin, from, ackDone)
	conn.Close() // unblocks the ack reader
	<-ackDone
	return err
}

// sendSnapshot encodes the catalog at a commit barrier and streams it in
// chunks. It returns the snapshot's cut LSN.
func (p *Primary) sendSnapshot(bw *bufio.Writer, st *followerState) (int64, error) {
	st.setState("snapshotting")
	img, cutLSN, cutCID, err := p.pm.SnapshotBytes()
	if err != nil {
		return 0, err
	}
	var hdr [8]byte
	putU64(hdr[:], uint64(len(img)))
	if err := writeMsg(bw, msgSnapBegin, hdr[:]); err != nil {
		return 0, err
	}
	for off := 0; off < len(img); off += snapChunkBytes {
		end := off + snapChunkBytes
		if end > len(img) {
			end = len(img)
		}
		if err := writeMsg(bw, msgSnapChunk, img[off:end]); err != nil {
			return 0, err
		}
	}
	var tail [16]byte
	putU64(tail[:], uint64(cutLSN), uint64(cutCID))
	if err := writeMsg(bw, msgSnapEnd, tail[:]); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	if p.snapshotsSent != nil {
		p.snapshotsSent.Inc()
	}
	return cutLSN, nil
}

// ship is the send loop: drain the log from `from`, heartbeat when idle.
// The session's retention pin trails the shipped position.
func (p *Primary) ship(bw *bufio.Writer, st *followerState, pin *persistence.WALPin, from int64, ackDone <-chan struct{}) error {
	var lastHeartbeat time.Time
	for {
		select {
		case <-ackDone:
			return nil // peer hung up
		default:
		}
		if p.isClosed() {
			return nil
		}
		// ErrWALTrimmed cannot happen while pinned; if it does anyway the
		// session ends and the follower reconnects into a bootstrap.
		data, next, err := p.pm.ReadWAL(from, shipBatchBytes)
		if err != nil {
			return err
		}
		if len(data) > 0 {
			payload := make([]byte, 8+len(data))
			putU64(payload[:8], uint64(from))
			copy(payload[8:], data)
			if err := writeMsg(bw, msgWAL, payload); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
			from = next
			pin.Move(from)
			st.mu.Lock()
			st.sentLSN = from
			st.mu.Unlock()
			if p.shippedBytes != nil {
				p.shippedBytes.Add(int64(len(data)))
			}
			continue
		}
		if time.Since(lastHeartbeat) >= heartbeatInterval {
			var hb [24]byte
			putU64(hb[:], uint64(p.pm.WALEndLSN()), uint64(p.tm.LastCommitID()), uint64(time.Now().UnixNano()))
			if err := writeMsg(bw, msgHeartbeat, hb[:]); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
			lastHeartbeat = time.Now()
		}
		time.Sleep(shipPollInterval)
	}
}

func (st *followerState) setState(s string) {
	st.mu.Lock()
	st.state = s
	st.mu.Unlock()
}

func (p *Primary) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Followers snapshots the connected follower sessions.
func (p *Primary) Followers() []FollowerInfo {
	p.mu.Lock()
	states := make([]*followerState, 0, len(p.followers))
	for _, st := range p.followers {
		states = append(states, st)
	}
	p.mu.Unlock()
	out := make([]FollowerInfo, 0, len(states))
	for _, st := range states {
		st.mu.Lock()
		out = append(out, FollowerInfo{
			ID:       st.id,
			Peer:     st.peer,
			State:    st.state,
			SentLSN:  st.sentLSN,
			AckedLSN: st.ackedLSN,
			AckedCID: st.ackedCID,
			LastAck:  st.lastAck,
		})
		st.mu.Unlock()
	}
	// Stable order for meta tables and tests.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// EndLSN returns the primary's current log end.
func (p *Primary) EndLSN() int64 { return p.pm.WALEndLSN() }

// Close stops accepting, disconnects all followers, and waits for their
// sessions to finish.
func (p *Primary) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	if p.ln != nil {
		_ = p.ln.Close()
	}
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}
