// Package replication implements primary/follower log shipping over the
// write-ahead log (ROADMAP item 4, the scale-out step): a primary-side
// shipper streams the WAL's CRC-framed commit batches — the exact on-disk
// bytes — to N followers, which replay them continuously and serve reads at
// a commit-barrier consistent snapshot. Followers that are too far behind
// (or brand new) bootstrap from an in-memory snapshot image and tail the log
// from its cut LSN.
//
// The transport is any io.ReadWriteCloser: a net.Conn for the TCP topology,
// or one end of a net.Pipe for the single-process multi-engine setup. The
// message framing is identical either way, so the in-process prototype
// exercises the same bytes the network carries.
package replication

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Message framing: [type byte][uint32 LE payload length][uint32 LE
// CRC32(payload)][payload]. Fixed-width little-endian integers inside
// payloads, matching the WAL's own framing conventions.
const (
	// msgHello (follower → primary) opens a session: int64 fromLSN, the first
	// log offset the follower wants. fromLSN < 0 requests a snapshot
	// bootstrap; so does any fromLSN outside the primary's retained log.
	msgHello = byte('H')
	// msgSnapBegin (primary → follower) announces a snapshot image:
	// int64 total size in bytes. Chunks follow.
	msgSnapBegin = byte('B')
	// msgSnapChunk carries one slice of the snapshot image.
	msgSnapChunk = byte('C')
	// msgSnapEnd closes the image: int64 cut LSN, uint64 cut commit id. The
	// follower decodes the image and tails the log from the cut.
	msgSnapEnd = byte('E')
	// msgWAL carries a run of whole WAL frames: int64 start LSN, then the raw
	// framed bytes exactly as they appear on the primary's disk.
	msgWAL = byte('W')
	// msgHeartbeat (primary → follower) reports the primary's position when
	// there is nothing to ship: int64 end LSN, uint64 last commit id,
	// int64 send time (unix nanoseconds) for lag measurement.
	msgHeartbeat = byte('T')
	// msgAck (follower → primary) reports apply progress: int64 applied LSN,
	// uint64 applied commit id.
	msgAck = byte('A')
)

// maxMsgLen bounds one message so a corrupt length field cannot trigger a
// giant allocation.
const maxMsgLen = 1 << 30

// writeMsg frames and writes one message. The writer is typically buffered;
// the caller flushes.
func writeMsg(w io.Writer, typ byte, payload []byte) error {
	var hdr [9]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readMsg reads and CRC-checks one message.
func readMsg(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[1:5])
	wantCRC := binary.LittleEndian.Uint32(hdr[5:9])
	if length > maxMsgLen {
		return 0, nil, fmt.Errorf("replication: message length %d exceeds limit", length)
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return 0, nil, fmt.Errorf("replication: message fails CRC check")
	}
	return hdr[0], payload, nil
}

func putU64(buf []byte, vs ...uint64) {
	for i, v := range vs {
		binary.LittleEndian.PutUint64(buf[8*i:], v)
	}
}

func getU64(buf []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(buf[8*i:])
}

func getI64(buf []byte, i int) int64 {
	return int64(getU64(buf, i))
}
