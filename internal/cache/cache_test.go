package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	c := NewLRU[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache should miss")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("Get(a) = %d, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" evicts it.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b should be evicted")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("a should survive, got %d, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Errorf("c missing: %d, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := NewLRU[string, int](2)
	c.Put("a", 1)
	c.Put("a", 10)
	if v, _ := c.Get("a"); v != 10 {
		t.Errorf("update failed: %d", v)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d after duplicate put", c.Len())
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := NewLRU[string, int](0)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Error("zero-capacity cache must store nothing")
	}
	if c.Len() != 0 {
		t.Error("Len should be 0")
	}
}

func TestLRUStatsAndClear(t *testing.T) {
	c := NewLRU[string, int](4)
	c.Put("a", 1)
	c.Get("a")
	c.Get("nope")
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
	c.Clear()
	if c.Len() != 0 {
		t.Error("Clear failed")
	}
	// Clear starts a fresh statistics generation: the counters reset, and
	// only accesses after the Clear are counted.
	if hits, misses := c.Stats(); hits != 0 || misses != 0 {
		t.Errorf("stats after Clear = %d/%d, want 0/0", hits, misses)
	}
	if _, ok := c.Get("a"); ok {
		t.Error("cleared entry still present")
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 1 {
		t.Errorf("stats after post-Clear miss = %d/%d, want 0/1", hits, misses)
	}
}

func TestLRUConcurrentAccess(t *testing.T) {
	c := NewLRU[int, int](64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Put(i%100, i)
				c.Get((i + w) % 100)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("capacity exceeded: %d", c.Len())
	}
}

func TestLRUEvictionOrderProperty(t *testing.T) {
	const cap = 8
	c := NewLRU[int, string](cap)
	for i := 0; i < 100; i++ {
		c.Put(i, fmt.Sprint(i))
	}
	// Only the last `cap` keys survive.
	for i := 0; i < 100-cap; i++ {
		if _, ok := c.Get(i); ok {
			t.Fatalf("key %d should be evicted", i)
		}
	}
	for i := 100 - cap; i < 100; i++ {
		if _, ok := c.Get(i); !ok {
			t.Fatalf("key %d should be cached", i)
		}
	}
}
