// Package cache provides the bounded LRU cache backing Hyrise's query plan
// cache (paper §2.6: "the query plan cache is limited and automatic
// eviction takes place"; prepared statements and implicitly cached queries
// share the same structure).
package cache

import (
	"container/list"
	"sync"
)

// LRU is a thread-safe least-recently-used cache.
type LRU[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[K]*list.Element

	hits, misses int64
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// NewLRU creates a cache; capacity <= 0 disables storage entirely.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	return &LRU[K, V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[K]*list.Element),
	}
}

// Get returns the cached value and refreshes its recency.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var zero V
	if c.capacity <= 0 {
		c.misses++
		return zero, false
	}
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return zero, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*entry[K, V]).val, true
}

// Put stores a value, evicting the least recently used entry when full.
func (c *LRU[K, V]) Put(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[K, V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&entry[K, V]{key: key, val: val})
	c.items[key] = el
	if c.ll.Len() > c.capacity {
		last := c.ll.Back()
		if last != nil {
			c.ll.Remove(last)
			delete(c.items, last.Value.(*entry[K, V]).key)
		}
	}
}

// Len returns the number of cached entries.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Clear drops all entries and resets the hit/miss counters, so statistics
// read after a Clear describe only the new cache generation.
func (c *LRU[K, V]) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll = list.New()
	c.items = make(map[K]*list.Element)
	c.hits, c.misses = 0, 0
}

// Stats returns hit/miss counters.
func (c *LRU[K, V]) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
