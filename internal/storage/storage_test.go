package storage

import (
	"strings"
	"testing"
	"testing/quick"

	"hyrise/internal/types"
)

func testDefs() []ColumnDefinition {
	return []ColumnDefinition{
		{Name: "id", Type: types.TypeInt64},
		{Name: "price", Type: types.TypeFloat64, Nullable: true},
		{Name: "name", Type: types.TypeString},
	}
}

func TestValueSegmentAppendAndAccess(t *testing.T) {
	s := NewValueSegment[int64](4, true)
	s.Append(10, false)
	s.Append(0, true)
	s.Append(30, false)

	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if v := s.ValueAt(0); v.I != 10 {
		t.Errorf("ValueAt(0) = %v", v)
	}
	if !s.IsNullAt(1) || !s.ValueAt(1).IsNull() {
		t.Error("row 1 should be NULL")
	}
	if v, null := s.Get(2); null || v != 30 {
		t.Errorf("Get(2) = (%d, %v)", v, null)
	}
	if s.DataType() != types.TypeInt64 {
		t.Errorf("DataType = %v", s.DataType())
	}
}

func TestValueSegmentNonNullablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic appending NULL to non-nullable segment")
		}
	}()
	s := NewValueSegment[string](1, false)
	s.Append("", true)
}

func TestValueSegmentFromSliceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched nulls length")
		}
	}()
	ValueSegmentFromSlice([]int64{1, 2}, []bool{false})
}

func TestValueSegmentMemoryUsage(t *testing.T) {
	s := ValueSegmentFromSlice([]int64{1, 2, 3}, nil)
	if s.MemoryUsage() < 24 {
		t.Errorf("MemoryUsage = %d, want >= 24", s.MemoryUsage())
	}
	str := ValueSegmentFromSlice([]string{"abc", "de"}, nil)
	if got := str.MemoryUsage(); got < 16*2+5 {
		t.Errorf("string MemoryUsage = %d, want >= 37", got)
	}
}

func TestTableAppendCreatesChunks(t *testing.T) {
	table := NewTable("t", testDefs(), 2, false)
	for i := 0; i < 5; i++ {
		rid, err := table.AppendRow([]types.Value{types.Int(int64(i)), types.Float(float64(i) / 2), types.Str("row")})
		if err != nil {
			t.Fatal(err)
		}
		wantChunk := types.ChunkID(i / 2)
		wantOffset := types.ChunkOffset(i % 2)
		if rid.Chunk != wantChunk || rid.Offset != wantOffset {
			t.Errorf("row %d: RowID = %+v, want chunk %d offset %d", i, rid, wantChunk, wantOffset)
		}
	}
	if table.ChunkCount() != 3 {
		t.Fatalf("ChunkCount = %d, want 3", table.ChunkCount())
	}
	if table.RowCount() != 5 {
		t.Fatalf("RowCount = %d, want 5", table.RowCount())
	}
	// Full chunks must be immutable; the trailing chunk mutable.
	if !table.GetChunk(0).IsImmutable() || !table.GetChunk(1).IsImmutable() {
		t.Error("full chunks should be immutable")
	}
	if table.GetChunk(2).IsImmutable() {
		t.Error("trailing chunk should be mutable")
	}
}

func TestTableAppendValidation(t *testing.T) {
	table := NewTable("t", testDefs(), 0, false)
	if _, err := table.AppendRow([]types.Value{types.Int(1)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := table.AppendRow([]types.Value{types.NullValue, types.Float(1), types.Str("x")}); err == nil {
		t.Error("NULL in non-nullable column should fail")
	}
	if _, err := table.AppendRow([]types.Value{types.Str("no"), types.Float(1), types.Str("x")}); err == nil {
		t.Error("type mismatch should fail")
	}
	if _, err := table.AppendRow([]types.Value{types.Int(1), types.NullValue, types.Str("x")}); err != nil {
		t.Errorf("NULL in nullable column should succeed: %v", err)
	}
}

func TestTableColumnLookup(t *testing.T) {
	table := NewTable("t", testDefs(), 0, false)
	id, err := table.ColumnID("PRICE")
	if err != nil || id != 1 {
		t.Errorf("ColumnID(PRICE) = (%d, %v)", id, err)
	}
	if _, err := table.ColumnID("nope"); err == nil {
		t.Error("unknown column should fail")
	}
	if table.ColumnType(2) != types.TypeString {
		t.Error("ColumnType(2) wrong")
	}
}

func TestTableGetValueAndRowAsValues(t *testing.T) {
	table := NewTable("t", testDefs(), 2, false)
	rid, _ := table.AppendRow([]types.Value{types.Int(7), types.NullValue, types.Str("seven")})
	if v := table.GetValue(0, rid); v.I != 7 {
		t.Errorf("GetValue = %v", v)
	}
	row := table.RowAsValues(rid)
	if row[0].I != 7 || !row[1].IsNull() || row[2].S != "seven" {
		t.Errorf("RowAsValues = %v", row)
	}
}

func TestReferenceSegment(t *testing.T) {
	table := NewTable("base", testDefs(), 2, false)
	for i := 0; i < 4; i++ {
		_, err := table.AppendRow([]types.Value{types.Int(int64(i * 10)), types.Float(0), types.Str("s")})
		if err != nil {
			t.Fatal(err)
		}
	}
	pos := types.PosList{
		{Chunk: 1, Offset: 1},
		{Chunk: 0, Offset: 0},
		types.NullRowID,
	}
	rs := NewReferenceSegment(table, 0, pos)
	if rs.Len() != 3 {
		t.Fatalf("Len = %d", rs.Len())
	}
	if v := rs.ValueAt(0); v.I != 30 {
		t.Errorf("ValueAt(0) = %v, want 30", v)
	}
	if v := rs.ValueAt(1); v.I != 0 {
		t.Errorf("ValueAt(1) = %v, want 0", v)
	}
	if !rs.IsNullAt(2) {
		t.Error("NullRowID should read as NULL")
	}
	if rs.DataType() != types.TypeInt64 {
		t.Error("DataType wrong")
	}
	if rs.ReferencedTable() != table || rs.ReferencedColumn() != 0 {
		t.Error("referenced table/column wrong")
	}
}

func TestTableView(t *testing.T) {
	table := NewTable("base", testDefs(), 2, false)
	for i := 0; i < 6; i++ {
		_, _ = table.AppendRow([]types.Value{types.Int(int64(i)), types.Float(0), types.Str("s")})
	}
	view := NewTableView(table, []*Chunk{table.GetChunk(0), table.GetChunk(2)}, nil)
	if view.ChunkCount() != 2 || view.RowCount() != 4 {
		t.Errorf("view chunks=%d rows=%d", view.ChunkCount(), view.RowCount())
	}
	if v := view.GetValue(0, types.RowID{Chunk: 1, Offset: 0}); v.I != 4 {
		t.Errorf("view cell = %v, want 4", v)
	}
	renamed := NewTableView(table, table.Chunks(), []ColumnDefinition{
		{Name: "a", Type: types.TypeInt64},
		{Name: "b", Type: types.TypeFloat64, Nullable: true},
		{Name: "c", Type: types.TypeString},
	})
	if id, err := renamed.ColumnID("b"); err != nil || id != 1 {
		t.Errorf("renamed lookup = (%d, %v)", id, err)
	}
}

func TestChunkImmutabilityRules(t *testing.T) {
	table := NewTable("t", testDefs(), 4, false)
	_, _ = table.AppendRow([]types.Value{types.Int(1), types.Float(1), types.Str("a")})
	c := table.GetChunk(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ReplaceSegment on mutable chunk should panic")
			}
		}()
		c.ReplaceSegment(0, NewValueSegment[int64](0, false))
	}()
	c.Finalize()
	if !c.IsImmutable() {
		t.Error("chunk should be immutable after Finalize")
	}
	// Replacement of wrong length panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong-length replacement should panic")
			}
		}()
		c.ReplaceSegment(0, NewValueSegment[int64](0, false))
	}()
	// Correct replacement works.
	c.ReplaceSegment(0, ValueSegmentFromSlice([]int64{42}, nil))
	if got := c.GetSegment(0).ValueAt(0); got.I != 42 {
		t.Errorf("after replacement ValueAt = %v", got)
	}
}

func TestMvccDataClaims(t *testing.T) {
	m := NewMvccData(4)
	if m.Begin(0) != types.MaxCommitID || m.End(0) != types.MaxCommitID {
		t.Error("fresh rows must have MaxCommitID begin/end")
	}
	if !m.ClaimTID(1, 77) {
		t.Error("first claim should succeed")
	}
	if !m.ClaimTID(1, 77) {
		t.Error("re-claim by owner should succeed")
	}
	if m.ClaimTID(1, 88) {
		t.Error("claim by other transaction should fail")
	}
	m.ReleaseTID(1, 88) // wrong owner: no-op
	if m.TID(1) != 77 {
		t.Error("release by non-owner must not clear tid")
	}
	m.ReleaseTID(1, 77)
	if m.TID(1) != 0 {
		t.Error("release by owner must clear tid")
	}
	m.SetBegin(2, 5)
	m.SetEnd(2, 9)
	if m.Begin(2) != 5 || m.End(2) != 9 {
		t.Error("begin/end roundtrip failed")
	}
}

func TestChunkIndexFilterAttachment(t *testing.T) {
	table := NewTable("t", testDefs(), 1, false)
	_, _ = table.AppendRow([]types.Value{types.Int(1), types.Float(1), types.Str("a")})
	_, _ = table.AppendRow([]types.Value{types.Int(2), types.Float(2), types.Str("b")})
	c := table.GetChunk(0) // immutable (capacity 1)
	if !c.IsImmutable() {
		t.Fatal("chunk 0 should be immutable")
	}
	fi := fakeIndex{col: 2}
	c.AddIndex(fi)
	if got := c.GetIndex(2); got == nil || got.IndexType() != "fake" {
		t.Error("GetIndex(2) did not return the attached index")
	}
	if c.GetIndex(0) != nil {
		t.Error("GetIndex(0) should be nil")
	}
	ff := fakeFilter{col: 0}
	c.AddFilter(ff)
	if got := c.Filters(0); len(got) != 1 {
		t.Errorf("Filters(0) = %d entries", len(got))
	}
	if got := c.Filters(1); len(got) != 0 {
		t.Error("Filters(1) should be empty")
	}
	if len(c.Indexes()) != 1 || len(c.AllFilters()) != 1 {
		t.Error("Indexes/AllFilters wrong")
	}
	_, meta := c.MemoryUsage()
	if meta < 100 {
		t.Errorf("metadata usage = %d, want >= 100", meta)
	}
}

type fakeIndex struct{ col types.ColumnID }

func (f fakeIndex) IndexType() string                             { return "fake" }
func (f fakeIndex) ColumnID() types.ColumnID                      { return f.col }
func (f fakeIndex) Equals(types.Value) []types.ChunkOffset        { return nil }
func (f fakeIndex) Range(lo, hi *types.Value) []types.ChunkOffset { return nil }
func (f fakeIndex) MemoryUsage() int64                            { return 10 }

type fakeFilter struct{ col types.ColumnID }

func (f fakeFilter) FilterType() string                     { return "fake" }
func (f fakeFilter) ColumnID() types.ColumnID               { return f.col }
func (f fakeFilter) CanPruneEquals(types.Value) bool        { return false }
func (f fakeFilter) CanPruneRange(lo, hi *types.Value) bool { return false }
func (f fakeFilter) MemoryUsage() int64                     { return 10 }

func TestStorageManagerCatalog(t *testing.T) {
	sm := NewStorageManager()
	table := NewTable("orders", testDefs(), 0, false)
	if err := sm.AddTable(table); err != nil {
		t.Fatal(err)
	}
	if err := sm.AddTable(table); err == nil {
		t.Error("duplicate AddTable should fail")
	}
	if err := sm.AddTable(NewTable("", testDefs(), 0, false)); err == nil {
		t.Error("unnamed table should fail")
	}
	got, err := sm.GetTable("ORDERS")
	if err != nil || got != table {
		t.Error("case-insensitive lookup failed")
	}
	if !sm.HasTable("orders") || sm.HasTable("nope") {
		t.Error("HasTable wrong")
	}
	if names := sm.TableNames(); len(names) != 1 || names[0] != "orders" {
		t.Errorf("TableNames = %v", names)
	}
	if err := sm.DropTable("orders"); err != nil {
		t.Error(err)
	}
	if err := sm.DropTable("orders"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestStorageManagerViews(t *testing.T) {
	sm := NewStorageManager()
	if err := sm.AddView("v", "SELECT 1"); err != nil {
		t.Fatal(err)
	}
	if err := sm.AddView("V", "SELECT 2"); err == nil {
		t.Error("duplicate view should fail")
	}
	sql, ok := sm.GetView("V")
	if !ok || sql != "SELECT 1" {
		t.Errorf("GetView = (%q, %v)", sql, ok)
	}
	if err := sm.DropView("v"); err != nil {
		t.Error(err)
	}
	if err := sm.DropView("v"); err == nil {
		t.Error("double view drop should fail")
	}
}

func TestLoadCSV(t *testing.T) {
	sm := NewStorageManager()
	data := "1,2.5,alpha\n2,,beta\n3,7.25,gamma\n"
	table, err := sm.LoadCSV("csvtab", testDefs(), strings.NewReader(data), ',', 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if table.RowCount() != 3 {
		t.Fatalf("RowCount = %d", table.RowCount())
	}
	if v := table.GetValue(1, types.RowID{Chunk: 0, Offset: 1}); !v.IsNull() {
		t.Error("empty nullable field should be NULL")
	}
	if v := table.GetValue(2, types.RowID{Chunk: 1, Offset: 0}); v.S != "gamma" {
		t.Errorf("cell = %v", v)
	}
	if !table.GetChunk(1).IsImmutable() {
		t.Error("LoadCSV should finalize the last chunk")
	}
	// Bad rows fail.
	if _, err := sm.LoadCSV("bad", testDefs(), strings.NewReader("x,y\n"), ',', 2, false); err == nil {
		t.Error("short row should fail")
	}
	if _, err := sm.LoadCSV("bad2", testDefs(), strings.NewReader("oops,1.0,z\n"), ',', 2, false); err == nil {
		t.Error("unparsable int should fail")
	}
}

// Property: appending any sequence of int64 values and reading them back via
// RowIDs preserves order and content, regardless of chunk size.
func TestTableAppendReadbackProperty(t *testing.T) {
	f := func(vals []int64, chunkSizeSeed uint8) bool {
		chunkSize := int(chunkSizeSeed)%7 + 1
		table := NewTable("p", []ColumnDefinition{{Name: "v", Type: types.TypeInt64}}, chunkSize, false)
		rids := make([]types.RowID, len(vals))
		for i, v := range vals {
			rid, err := table.AppendRow([]types.Value{types.Int(v)})
			if err != nil {
				return false
			}
			rids[i] = rid
		}
		for i, v := range vals {
			if got := table.GetValue(0, rids[i]); got.I != v {
				return false
			}
		}
		return table.RowCount() == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	table := NewTable("c", []ColumnDefinition{{Name: "v", Type: types.TypeInt64}}, 16, true)
	const workers, per = 8, 200
	done := make(chan bool)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				if _, err := table.AppendRow([]types.Value{types.Int(int64(w*per + i))}); err != nil {
					t.Error(err)
				}
			}
			done <- true
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if table.RowCount() != workers*per {
		t.Fatalf("RowCount = %d, want %d", table.RowCount(), workers*per)
	}
	// Every value 0..workers*per-1 must be present exactly once.
	seen := make(map[int64]int)
	for ci := 0; ci < table.ChunkCount(); ci++ {
		c := table.GetChunk(types.ChunkID(ci))
		for o := 0; o < c.Size(); o++ {
			seen[c.GetSegment(0).ValueAt(types.ChunkOffset(o)).I]++
		}
	}
	for i := 0; i < workers*per; i++ {
		if seen[int64(i)] != 1 {
			t.Fatalf("value %d seen %d times", i, seen[int64(i)])
		}
	}
}
