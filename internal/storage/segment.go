// Package storage implements Hyrise's storage layout (paper §2.2): tables
// are horizontally partitioned into fixed-capacity chunks; within a chunk,
// vertical partitions called segments hold the data of one column each.
// Chunks start mutable and append-only; once full they become immutable and
// may be encoded, indexed, and filtered asynchronously.
package storage

import (
	"fmt"

	"hyrise/internal/types"
)

// Segment is one column's worth of data within one chunk.
//
// The methods on this interface form the *dynamic* access path: one virtual
// call per value. Operators should prefer the static path — resolving the
// concrete segment type once (see encoding.Resolve*) and running a
// monomorphic loop — which is the Go analog of the paper's template-based
// iterator resolution. The dynamic path is retained both as a fallback for
// unspecialized operators and as the baseline of the Figure 3b experiment.
type Segment interface {
	// DataType returns the column type stored in this segment.
	DataType() types.DataType
	// Len returns the number of rows.
	Len() int
	// ValueAt returns the value at the offset (NullValue for NULL rows).
	ValueAt(i types.ChunkOffset) types.Value
	// IsNullAt reports whether the row is NULL.
	IsNullAt(i types.ChunkOffset) bool
	// MemoryUsage returns the estimated heap footprint in bytes.
	MemoryUsage() int64
}

// ValueSegment is the unencoded, mutable segment type backed by a plain
// slice. Freshly appended chunks consist of value segments; encodings are
// applied only after the chunk becomes immutable.
type ValueSegment[T types.Ordered] struct {
	values   []T
	nulls    []bool // nil when the column is NOT NULL
	nullable bool
}

// preallocCap bounds the eager allocation of fresh segments; very large
// target chunk sizes (e.g. the "unchunked" benchmark configuration) grow
// naturally instead of reserving gigabytes up front.
const preallocCap = 1 << 16

// NewValueSegment creates an empty value segment with the given capacity.
func NewValueSegment[T types.Ordered](capacity int, nullable bool) *ValueSegment[T] {
	if capacity > preallocCap {
		capacity = preallocCap
	}
	vs := &ValueSegment[T]{
		values:   make([]T, 0, capacity),
		nullable: nullable,
	}
	if nullable {
		vs.nulls = make([]bool, 0, capacity)
	}
	return vs
}

// ValueSegmentFromSlice wraps an existing slice (not copied) in a segment.
// nulls may be nil for a NOT NULL column.
func ValueSegmentFromSlice[T types.Ordered](values []T, nulls []bool) *ValueSegment[T] {
	if nulls != nil && len(nulls) != len(values) {
		panic("storage: nulls length does not match values length")
	}
	return &ValueSegment[T]{values: values, nulls: nulls, nullable: nulls != nil}
}

// Append adds a value to the end of the segment.
func (s *ValueSegment[T]) Append(v T, null bool) {
	if null && !s.nullable {
		panic("storage: NULL appended to non-nullable segment")
	}
	s.values = append(s.values, v)
	if s.nullable {
		s.nulls = append(s.nulls, null)
	}
}

// Values exposes the underlying data slice for tight loops and encoders.
func (s *ValueSegment[T]) Values() []T { return s.values }

// Nulls exposes the null flags (nil if the column is NOT NULL).
func (s *ValueSegment[T]) Nulls() []bool { return s.nulls }

// Nullable reports whether the segment may contain NULLs.
func (s *ValueSegment[T]) Nullable() bool { return s.nullable }

// snapshot returns a read-only view of the first size rows. The caller
// must hold the owning chunk's lock; the returned segment stays valid even
// if later appends reallocate the underlying slices.
func (s *ValueSegment[T]) snapshot(size int) *ValueSegment[T] {
	if size > len(s.values) {
		size = len(s.values)
	}
	view := &ValueSegment[T]{values: s.values[:size:size], nullable: s.nullable}
	if s.nulls != nil {
		n := size
		if n > len(s.nulls) {
			n = len(s.nulls)
		}
		view.nulls = s.nulls[:n:n]
	}
	return view
}

// Get returns the value and null flag at i (static access path).
func (s *ValueSegment[T]) Get(i types.ChunkOffset) (T, bool) {
	if s.nulls != nil && s.nulls[i] {
		var z T
		return z, true
	}
	return s.values[i], false
}

// DataType implements Segment.
func (s *ValueSegment[T]) DataType() types.DataType { return types.Native[T]() }

// Len implements Segment.
func (s *ValueSegment[T]) Len() int { return len(s.values) }

// ValueAt implements Segment (dynamic path).
func (s *ValueSegment[T]) ValueAt(i types.ChunkOffset) types.Value {
	if s.nulls != nil && s.nulls[i] {
		return types.NullValue
	}
	return types.FromNative(s.values[i])
}

// IsNullAt implements Segment.
func (s *ValueSegment[T]) IsNullAt(i types.ChunkOffset) bool {
	return s.nulls != nil && s.nulls[i]
}

// MemoryUsage implements Segment.
func (s *ValueSegment[T]) MemoryUsage() int64 {
	var elem int64
	var z T
	switch any(z).(type) {
	case int64, float64:
		elem = 8 * int64(cap(s.values))
	case string:
		elem = 16 * int64(cap(s.values)) // string headers
		for _, v := range s.values {
			elem += int64(len(any(v).(string)))
		}
	}
	if s.nulls != nil {
		elem += int64(cap(s.nulls))
	}
	return elem
}

// ReferenceSegment is a segment that does not store data but positions into
// another (data) table. All reference segments of one chunk usually share a
// single PosList, so producing an N-column intermediate costs one position
// list, not N copies (paper §2.6, "avoids expensive materializations").
type ReferenceSegment struct {
	table    *Table
	column   types.ColumnID
	posList  types.PosList
	dataType types.DataType
}

// NewReferenceSegment creates a reference segment pointing into table's
// column at the given positions.
func NewReferenceSegment(table *Table, column types.ColumnID, posList types.PosList) *ReferenceSegment {
	return &ReferenceSegment{
		table:    table,
		column:   column,
		posList:  posList,
		dataType: table.ColumnDefinitions()[column].Type,
	}
}

// ReferencedTable returns the data table the positions point into.
func (s *ReferenceSegment) ReferencedTable() *Table { return s.table }

// ReferencedColumn returns the column id within the referenced table.
func (s *ReferenceSegment) ReferencedColumn() types.ColumnID { return s.column }

// PosList returns the shared position list.
func (s *ReferenceSegment) PosList() types.PosList { return s.posList }

// DataType implements Segment.
func (s *ReferenceSegment) DataType() types.DataType { return s.dataType }

// Len implements Segment.
func (s *ReferenceSegment) Len() int { return len(s.posList) }

// ValueAt implements Segment by chasing the reference (dynamic path).
func (s *ReferenceSegment) ValueAt(i types.ChunkOffset) types.Value {
	rowID := s.posList[i]
	if rowID.IsNull() {
		return types.NullValue
	}
	return s.table.GetChunk(rowID.Chunk).GetSegment(s.column).ValueAt(rowID.Offset)
}

// IsNullAt implements Segment.
func (s *ReferenceSegment) IsNullAt(i types.ChunkOffset) bool {
	rowID := s.posList[i]
	if rowID.IsNull() {
		return true
	}
	return s.table.GetChunk(rowID.Chunk).GetSegment(s.column).IsNullAt(rowID.Offset)
}

// MemoryUsage implements Segment. The PosList is shared across the chunk's
// segments; it is accounted for here once per segment deliberately, since
// callers comparing footprints use data tables.
func (s *ReferenceSegment) MemoryUsage() int64 {
	return int64(cap(s.posList)) * 8
}

// AppendValueTo appends the dynamic value v to a value segment of matching
// type. It is the slow-path used by materializing operators.
func AppendValueTo(seg Segment, v types.Value) error {
	switch s := seg.(type) {
	case *ValueSegment[int64]:
		s.Append(v.AsInt(), v.IsNull())
	case *ValueSegment[float64]:
		s.Append(v.AsFloat(), v.IsNull())
	case *ValueSegment[string]:
		s.Append(v.S, v.IsNull())
	default:
		return fmt.Errorf("storage: cannot append to segment of type %T", seg)
	}
	return nil
}

// NewValueSegmentOfType creates an empty value segment for the dynamic type.
func NewValueSegmentOfType(t types.DataType, capacity int, nullable bool) Segment {
	switch t {
	case types.TypeInt64:
		return NewValueSegment[int64](capacity, nullable)
	case types.TypeFloat64:
		return NewValueSegment[float64](capacity, nullable)
	case types.TypeString:
		return NewValueSegment[string](capacity, nullable)
	default:
		panic(fmt.Sprintf("storage: no segment for type %s", t))
	}
}
