package storage

import (
	"fmt"
	"strings"
	"sync"

	"hyrise/internal/types"
)

// TableType distinguishes tables that own their data from tables whose
// chunks consist of reference segments into other tables.
type TableType uint8

const (
	// DataTable owns value/encoded segments.
	DataTable TableType = iota
	// ReferenceTable consists of reference segments (operator output).
	ReferenceTable
)

// ColumnDefinition describes one column of a table.
type ColumnDefinition struct {
	Name     string
	Type     types.DataType
	Nullable bool
}

// DefaultChunkSize is the default chunk capacity. The paper's evaluation
// (Figure 7) finds ~100k rows to be the throughput sweet spot and uses it as
// Hyrise's default setting.
const DefaultChunkSize = 100_000

// Table is a relation: an ordered list of column definitions plus a list of
// chunks. Appends go to the last chunk; when it reaches targetChunkSize it
// is finalized and a fresh mutable chunk is opened.
type Table struct {
	name            string
	defs            []ColumnDefinition
	tableType       TableType
	targetChunkSize int
	useMvcc         bool

	mu     sync.RWMutex // guards chunks slice growth
	chunks []*Chunk

	appendMu sync.Mutex // serializes row appends
}

// NewTable creates an empty data table. targetChunkSize <= 0 selects
// DefaultChunkSize. useMvcc controls whether chunks carry MVCC columns.
func NewTable(name string, defs []ColumnDefinition, targetChunkSize int, useMvcc bool) *Table {
	if targetChunkSize <= 0 {
		targetChunkSize = DefaultChunkSize
	}
	t := &Table{
		name:            name,
		defs:            defs,
		tableType:       DataTable,
		targetChunkSize: targetChunkSize,
		useMvcc:         useMvcc,
	}
	return t
}

// NewReferenceTable creates a table whose chunks hold reference segments.
// Reference tables are operator outputs; they have no chunk size limit and
// no MVCC data.
func NewReferenceTable(defs []ColumnDefinition, chunks []*Chunk) *Table {
	return &Table{
		defs:      defs,
		tableType: ReferenceTable,
		chunks:    chunks,
	}
}

// Name returns the table name ("" for intermediates).
func (t *Table) Name() string { return t.name }

// Type returns whether the table owns data or references.
func (t *Table) Type() TableType { return t.tableType }

// UsesMvcc reports whether chunks carry MVCC columns.
func (t *Table) UsesMvcc() bool { return t.useMvcc }

// TargetChunkSize returns the chunk capacity.
func (t *Table) TargetChunkSize() int { return t.targetChunkSize }

// ColumnDefinitions returns the schema.
func (t *Table) ColumnDefinitions() []ColumnDefinition { return t.defs }

// ColumnCount returns the number of columns.
func (t *Table) ColumnCount() int { return len(t.defs) }

// ColumnID resolves a column name (case-insensitive) to its id.
func (t *Table) ColumnID(name string) (types.ColumnID, error) {
	for i, d := range t.defs {
		if strings.EqualFold(d.Name, name) {
			return types.ColumnID(i), nil
		}
	}
	return 0, fmt.Errorf("storage: table %q has no column %q", t.name, name)
}

// ColumnType returns the data type of the column.
func (t *Table) ColumnType(id types.ColumnID) types.DataType { return t.defs[id].Type }

// ChunkCount returns the number of chunks.
func (t *Table) ChunkCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.chunks)
}

// GetChunk returns the chunk with the given id.
func (t *Table) GetChunk(id types.ChunkID) *Chunk {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.chunks[id]
}

// Chunks returns a snapshot of the chunk list.
func (t *Table) Chunks() []*Chunk {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Chunk, len(t.chunks))
	copy(out, t.chunks)
	return out
}

// AppendChunk attaches a pre-built chunk (bulk load path, reference tables).
func (t *Table) AppendChunk(c *Chunk) {
	t.mu.Lock()
	t.chunks = append(t.chunks, c)
	t.mu.Unlock()
}

// RowCount returns the total number of rows across chunks (including rows
// that MVCC has invalidated — visibility is the Validate operator's job).
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, c := range t.chunks {
		n += c.Size()
	}
	return n
}

// newMutableChunk opens a fresh append-target chunk.
func (t *Table) newMutableChunk() *Chunk {
	segs := make([]Segment, len(t.defs))
	for i, d := range t.defs {
		segs[i] = NewValueSegmentOfType(d.Type, t.targetChunkSize, d.Nullable)
	}
	var mvcc *MvccData
	if t.useMvcc {
		mvcc = NewMvccData(t.targetChunkSize)
	}
	return NewChunk(segs, mvcc)
}

// AppendRow appends one row, opening a new chunk when the current one is
// full, and returns the RowID of the new row. The previous chunk is
// finalized (made immutable) when it fills up.
func (t *Table) AppendRow(vals []types.Value) (types.RowID, error) {
	if t.tableType != DataTable {
		return types.NullRowID, fmt.Errorf("storage: cannot append to reference table")
	}
	if len(vals) != len(t.defs) {
		return types.NullRowID, fmt.Errorf("storage: row has %d values, table %q has %d columns", len(vals), t.name, len(t.defs))
	}
	for i, v := range vals {
		if v.IsNull() {
			if !t.defs[i].Nullable {
				return types.NullRowID, fmt.Errorf("storage: NULL in non-nullable column %q", t.defs[i].Name)
			}
			continue
		}
		if v.Type != t.defs[i].Type {
			return types.NullRowID, fmt.Errorf("storage: value type %s does not match column %q type %s", v.Type, t.defs[i].Name, t.defs[i].Type)
		}
	}

	t.appendMu.Lock()
	defer t.appendMu.Unlock()

	t.mu.RLock()
	n := len(t.chunks)
	var last *Chunk
	if n > 0 {
		last = t.chunks[n-1]
	}
	t.mu.RUnlock()

	if last == nil || last.Size() >= t.targetChunkSize || last.IsImmutable() {
		if last != nil {
			last.Finalize()
		}
		last = t.newMutableChunk()
		t.mu.Lock()
		t.chunks = append(t.chunks, last)
		n = len(t.chunks)
		t.mu.Unlock()
	}

	if err := last.appendRow(vals); err != nil {
		return types.NullRowID, err
	}
	return types.RowID{
		Chunk:  types.ChunkID(n - 1),
		Offset: types.ChunkOffset(last.Size() - 1),
	}, nil
}

// RestoreRowAt places a row at an exact RowID during log replay. Offsets
// skipped because their transactions never committed are padded with
// invisible placeholder rows (begin = MaxCommitID, end = 0), so the chunk
// geometry the log's RowIDs reference is reproduced exactly. It reports
// whether the row already existed (replay over a snapshot that already
// contains it is idempotent).
func (t *Table) RestoreRowAt(row types.RowID, vals []types.Value) (existed bool, err error) {
	if t.tableType != DataTable {
		return false, fmt.Errorf("storage: cannot restore into reference table")
	}
	if len(vals) != len(t.defs) {
		return false, fmt.Errorf("storage: restore row has %d values, table %q has %d columns", len(vals), t.name, len(t.defs))
	}
	if int(row.Offset) >= t.targetChunkSize {
		return false, fmt.Errorf("storage: restore offset %d exceeds chunk capacity %d of table %q", row.Offset, t.targetChunkSize, t.name)
	}
	for i, v := range vals {
		if v.IsNull() {
			if !t.defs[i].Nullable {
				return false, fmt.Errorf("storage: restore NULL in non-nullable column %q", t.defs[i].Name)
			}
			continue
		}
		if v.Type != t.defs[i].Type {
			return false, fmt.Errorf("storage: restore value type %s does not match column %q type %s", v.Type, t.defs[i].Name, t.defs[i].Type)
		}
	}

	t.appendMu.Lock()
	defer t.appendMu.Unlock()

	// Create missing chunks up to the target; like AppendRow, opening a new
	// chunk finalizes its predecessor.
	for t.ChunkCount() <= int(row.Chunk) {
		t.mu.Lock()
		if n := len(t.chunks); n > 0 {
			t.chunks[n-1].Finalize()
		}
		t.chunks = append(t.chunks, t.newMutableChunk())
		t.mu.Unlock()
	}

	chunk := t.GetChunk(row.Chunk)
	if int(row.Offset) < chunk.Size() {
		return true, nil
	}
	if chunk.IsImmutable() {
		return false, fmt.Errorf("storage: restore offset %d beyond immutable chunk %d of table %q", row.Offset, row.Chunk, t.name)
	}
	mvcc := chunk.MvccData()
	if mvcc == nil && chunk.Size() < int(row.Offset) {
		return false, fmt.Errorf("storage: cannot pad rows of table %q without MVCC data", t.name)
	}
	for chunk.Size() < int(row.Offset) {
		off := types.ChunkOffset(chunk.Size())
		if err := chunk.appendRow(t.placeholderRow()); err != nil {
			return false, err
		}
		// Placeholders stand in for aborted or uncommitted rows: never
		// visible to anyone.
		mvcc.SetEnd(off, 0)
	}
	if err := chunk.appendRow(vals); err != nil {
		return false, err
	}
	return false, nil
}

// placeholderRow builds a typed all-zero row used to pad recovery gaps.
func (t *Table) placeholderRow() []types.Value {
	vals := make([]types.Value, len(t.defs))
	for i, d := range t.defs {
		switch d.Type {
		case types.TypeFloat64:
			vals[i] = types.Float(0)
		case types.TypeString:
			vals[i] = types.Str("")
		default:
			vals[i] = types.Int(0)
		}
	}
	return vals
}

// FinalizeLastChunk makes the current mutable chunk immutable (e.g. after a
// bulk load) so that encodings, indexes, and filters can be applied.
func (t *Table) FinalizeLastChunk() {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.chunks) > 0 {
		t.chunks[len(t.chunks)-1].Finalize()
	}
}

// GetValue fetches a single cell by RowID (dynamic path, boundary use only).
func (t *Table) GetValue(col types.ColumnID, row types.RowID) types.Value {
	return t.GetChunk(row.Chunk).GetSegment(col).ValueAt(row.Offset)
}

// MemoryUsage returns the table's data and metadata footprints in bytes.
func (t *Table) MemoryUsage() (data, metadata int64) {
	for _, c := range t.Chunks() {
		d, m := c.MemoryUsage()
		data += d
		metadata += m
	}
	return data, metadata
}

// RowAsValues materializes one full row (boundary use only).
func (t *Table) RowAsValues(row types.RowID) []types.Value {
	out := make([]types.Value, len(t.defs))
	c := t.GetChunk(row.Chunk)
	for i := range t.defs {
		out[i] = c.GetSegment(types.ColumnID(i)).ValueAt(row.Offset)
	}
	return out
}

// NewTableView creates a table that shares the given chunks of src (used
// by GetTable after chunk pruning and by Alias for column renames). The
// view has src's type; segments are shared, not copied.
func NewTableView(src *Table, chunks []*Chunk, defs []ColumnDefinition) *Table {
	if defs == nil {
		defs = src.defs
	}
	return &Table{
		name:            src.name,
		defs:            defs,
		tableType:       src.tableType,
		targetChunkSize: src.targetChunkSize,
		useMvcc:         src.useMvcc,
		chunks:          chunks,
	}
}
