package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hyrise/internal/types"
)

// MetaTableProvider materializes a virtual system table on demand. Each
// call produces a fresh snapshot, so successive queries over a meta-table
// observe advancing telemetry (real Hyrise exposes its internals the same
// way, as meta_* tables).
type MetaTableProvider func() (*Table, error)

// StorageManager is the central catalog of named tables and views
// (paper Figure 1: "Storage Manager"). It is safe for concurrent use.
type StorageManager struct {
	mu     sync.RWMutex
	tables map[string]*Table
	views  map[string]string // view name -> SQL text (embedded at planning time)
	meta   map[string]MetaTableProvider

	// epoch counts catalog mutations (table/view add/drop). Cached plans
	// embed table pointers; consumers record the epoch at build time and
	// rebuild when it moved, so no plan ever executes against a dropped or
	// re-created table.
	epoch atomic.Int64
}

// NewStorageManager creates an empty catalog.
func NewStorageManager() *StorageManager {
	return &StorageManager{
		tables: make(map[string]*Table),
		views:  make(map[string]string),
		meta:   make(map[string]MetaTableProvider),
	}
}

// AddTable registers a table under its name. Re-registering a name fails,
// as does shadowing a meta-table.
func (sm *StorageManager) AddTable(t *Table) error {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	key := strings.ToLower(t.Name())
	if key == "" {
		return fmt.Errorf("storage: cannot register unnamed table")
	}
	if _, ok := sm.tables[key]; ok {
		return fmt.Errorf("storage: table %q already exists", t.Name())
	}
	if _, ok := sm.meta[key]; ok {
		return fmt.Errorf("storage: %q is a reserved meta-table name", t.Name())
	}
	sm.tables[key] = t
	sm.epoch.Add(1)
	return nil
}

// Epoch returns the catalog mutation counter. It advances on every table or
// view registration/removal; plan caches compare it to detect staleness.
func (sm *StorageManager) Epoch() int64 { return sm.epoch.Load() }

// GetTable looks a table up by name (case-insensitive). Meta-table names
// resolve to a freshly materialized snapshot; base tables shadow them.
func (sm *StorageManager) GetTable(name string) (*Table, error) {
	key := strings.ToLower(name)
	sm.mu.RLock()
	t, ok := sm.tables[key]
	provider := sm.meta[key]
	sm.mu.RUnlock()
	if ok {
		return t, nil
	}
	if provider != nil {
		// Materialized outside the catalog lock: providers read other
		// locked subsystems (tables, scheduler, metrics registry).
		return provider()
	}
	return nil, fmt.Errorf("storage: no table named %q", name)
}

// RegisterMetaTable installs a virtual system table under the given name
// (conventionally prefixed "meta_"). Re-registering replaces the provider.
func (sm *StorageManager) RegisterMetaTable(name string, p MetaTableProvider) {
	sm.mu.Lock()
	sm.meta[strings.ToLower(name)] = p
	sm.mu.Unlock()
}

// MetaTableNames returns the sorted names of the registered meta-tables.
func (sm *StorageManager) MetaTableNames() []string {
	sm.mu.RLock()
	names := make([]string, 0, len(sm.meta))
	for name := range sm.meta {
		names = append(names, name)
	}
	sm.mu.RUnlock()
	sort.Strings(names)
	return names
}

// HasTable reports whether a table with the name exists.
func (sm *StorageManager) HasTable(name string) bool {
	sm.mu.RLock()
	defer sm.mu.RUnlock()
	_, ok := sm.tables[strings.ToLower(name)]
	return ok
}

// DropTable removes a table from the catalog.
func (sm *StorageManager) DropTable(name string) error {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := sm.tables[key]; !ok {
		return fmt.Errorf("storage: no table named %q", name)
	}
	delete(sm.tables, key)
	sm.epoch.Add(1)
	return nil
}

// TableNames returns the sorted names of all registered tables.
func (sm *StorageManager) TableNames() []string {
	sm.mu.RLock()
	defer sm.mu.RUnlock()
	names := make([]string, 0, len(sm.tables))
	for _, t := range sm.tables {
		names = append(names, t.Name())
	}
	sort.Strings(names)
	return names
}

// AddView stores a named view as its SQL text; the SQL translator embeds the
// view's plan when the name is referenced.
func (sm *StorageManager) AddView(name, sql string) error {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := sm.views[key]; ok {
		return fmt.Errorf("storage: view %q already exists", name)
	}
	sm.views[key] = sql
	sm.epoch.Add(1)
	return nil
}

// Views returns a snapshot of all views (name -> SQL text).
func (sm *StorageManager) Views() map[string]string {
	sm.mu.RLock()
	defer sm.mu.RUnlock()
	out := make(map[string]string, len(sm.views))
	for name, sql := range sm.views {
		out[name] = sql
	}
	return out
}

// GetView returns the SQL text of a view.
func (sm *StorageManager) GetView(name string) (string, bool) {
	sm.mu.RLock()
	defer sm.mu.RUnlock()
	sql, ok := sm.views[strings.ToLower(name)]
	return sql, ok
}

// DropView removes a view.
func (sm *StorageManager) DropView(name string) error {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := sm.views[key]; !ok {
		return fmt.Errorf("storage: no view named %q", name)
	}
	delete(sm.views, key)
	sm.epoch.Add(1)
	return nil
}

// LoadCSV bulk-loads delimiter-separated values into a new table with the
// given schema and registers it. Empty fields in nullable columns load as
// NULL. This backs the benchmark runner's "provide your own .csv" feature
// (paper §2.10).
func (sm *StorageManager) LoadCSV(name string, defs []ColumnDefinition, r io.Reader, delim rune, chunkSize int, useMvcc bool) (*Table, error) {
	table := NewTable(name, defs, chunkSize, useMvcc)
	cr := csv.NewReader(r)
	cr.Comma = delim
	cr.ReuseRecord = true
	row := make([]types.Value, len(defs))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("storage: csv read: %w", err)
		}
		if len(rec) != len(defs) {
			return nil, fmt.Errorf("storage: csv row has %d fields, want %d", len(rec), len(defs))
		}
		for i, field := range rec {
			if field == "" && defs[i].Nullable {
				row[i] = types.NullValue
				continue
			}
			v, err := types.ParseValue(defs[i].Type, field)
			if err != nil {
				return nil, fmt.Errorf("storage: csv field %d: %w", i, err)
			}
			row[i] = v
		}
		if _, err := table.AppendRow(row); err != nil {
			return nil, err
		}
	}
	table.FinalizeLastChunk()
	if err := sm.AddTable(table); err != nil {
		return nil, err
	}
	return table, nil
}
