package storage

import (
	"sync"
	"sync/atomic"

	"hyrise/internal/types"
)

// mvccBlockShift sizes the lazily allocated MVCC blocks (8k rows each):
// large enough for negligible indirection cost, small enough that the
// partially filled trailing chunk of a table wastes at most 8k slots.
const mvccBlockShift = 13
const mvccBlockSize = 1 << mvccBlockShift

type mvccBlock struct {
	begin []atomic.Uint64
	end   []atomic.Uint64
	tid   []atomic.Uint64
}

func newMvccBlock(size int) *mvccBlock {
	b := &mvccBlock{
		begin: make([]atomic.Uint64, size),
		end:   make([]atomic.Uint64, size),
		tid:   make([]atomic.Uint64, size),
	}
	for i := 0; i < size; i++ {
		b.begin[i].Store(uint64(types.MaxCommitID))
		b.end[i].Store(uint64(types.MaxCommitID))
	}
	return b
}

// MvccData holds the per-chunk concurrency-control columns (paper §2.8):
// for every row a begin commit id, an end commit id, and the id of the
// transaction currently owning the row. Cells are accessed atomically so
// readers never block writers; storage grows in blocks as rows are
// appended (EnsureCapacity runs under the table's append lock before the
// row becomes visible through the chunk's row count).
type MvccData struct {
	blocks []atomic.Pointer[mvccBlock]
	rows   int
}

// NewMvccData prepares MVCC columns for up to capacity rows; blocks are
// allocated on first use.
func NewMvccData(capacity int) *MvccData {
	nBlocks := (capacity + mvccBlockSize - 1) / mvccBlockSize
	if nBlocks < 1 {
		nBlocks = 1
	}
	return &MvccData{blocks: make([]atomic.Pointer[mvccBlock], nBlocks), rows: capacity}
}

// blockSizeFor returns the allocation size of block b: full blocks except
// for the (possibly short) last one, so small chunks pay only for their
// capacity.
func (m *MvccData) blockSizeFor(b int) int {
	size := m.rows - b*mvccBlockSize
	if size > mvccBlockSize {
		size = mvccBlockSize
	}
	if size < 1 {
		size = 1
	}
	return size
}

// EnsureCapacity makes the cells for row i usable. Called under the table
// append lock before the row is published.
func (m *MvccData) EnsureCapacity(i types.ChunkOffset) {
	b := int(i) >> mvccBlockShift
	if m.blocks[b].Load() == nil {
		m.blocks[b].CompareAndSwap(nil, newMvccBlock(m.blockSizeFor(b)))
	}
}

func (m *MvccData) block(i types.ChunkOffset) (*mvccBlock, int) {
	b := int(i) >> mvccBlockShift
	blk := m.blocks[b].Load()
	if blk == nil {
		// Reads may race with the first append into a block; allocate
		// idempotently (all cells start at MaxCommitID either way).
		m.blocks[b].CompareAndSwap(nil, newMvccBlock(m.blockSizeFor(b)))
		blk = m.blocks[b].Load()
	}
	return blk, int(i) & (mvccBlockSize - 1)
}

// Begin returns the begin commit id of the row.
func (m *MvccData) Begin(i types.ChunkOffset) types.CommitID {
	b, o := m.block(i)
	return types.CommitID(b.begin[o].Load())
}

// SetBegin stores the begin commit id of the row.
func (m *MvccData) SetBegin(i types.ChunkOffset, cid types.CommitID) {
	b, o := m.block(i)
	b.begin[o].Store(uint64(cid))
}

// End returns the end (invalidation) commit id of the row.
func (m *MvccData) End(i types.ChunkOffset) types.CommitID {
	b, o := m.block(i)
	return types.CommitID(b.end[o].Load())
}

// SetEnd stores the end commit id of the row.
func (m *MvccData) SetEnd(i types.ChunkOffset, cid types.CommitID) {
	b, o := m.block(i)
	b.end[o].Store(uint64(cid))
}

// TID returns the transaction id currently holding the row (0 = none).
func (m *MvccData) TID(i types.ChunkOffset) types.TransactionID {
	b, o := m.block(i)
	return types.TransactionID(b.tid[o].Load())
}

// ClaimTID atomically claims the row for tid if it is unclaimed or already
// held by tid. It returns false on a write-write conflict (paper §2.8: "if
// two transactions concurrently try to set the transaction id of a single
// row, only one can succeed and the other has to abort").
func (m *MvccData) ClaimTID(i types.ChunkOffset, tid types.TransactionID) bool {
	b, o := m.block(i)
	if b.tid[o].CompareAndSwap(0, uint64(tid)) {
		return true
	}
	return b.tid[o].Load() == uint64(tid)
}

// ReleaseTID clears the row's transaction id if held by tid.
func (m *MvccData) ReleaseTID(i types.ChunkOffset, tid types.TransactionID) {
	b, o := m.block(i)
	b.tid[o].CompareAndSwap(uint64(tid), 0)
}

// SetTID unconditionally stores a transaction id (used for fresh inserts
// where the slot cannot be contended).
func (m *MvccData) SetTID(i types.ChunkOffset, tid types.TransactionID) {
	b, o := m.block(i)
	b.tid[o].Store(uint64(tid))
}

// MemoryUsage returns the heap footprint of the allocated MVCC columns.
func (m *MvccData) MemoryUsage() int64 {
	var allocated int64
	for i := range m.blocks {
		if blk := m.blocks[i].Load(); blk != nil {
			allocated += int64(len(blk.begin)) * 24
		}
	}
	return allocated + int64(len(m.blocks))*8
}

// ChunkIndex is the minimal interface the storage layer needs from a
// per-chunk secondary index (implemented in internal/index). Indexes yield
// qualifying chunk offsets for a predicate.
type ChunkIndex interface {
	// IndexType names the index implementation ("ART", "BTree", "GroupKey").
	IndexType() string
	// ColumnID returns the indexed column.
	ColumnID() types.ColumnID
	// Equals returns the offsets whose value equals v, in ascending order.
	Equals(v types.Value) []types.ChunkOffset
	// Range returns the offsets with lo <= value <= hi. Nil bounds are open.
	Range(lo, hi *types.Value) []types.ChunkOffset
	// MemoryUsage returns the estimated heap footprint in bytes.
	MemoryUsage() int64
}

// ChunkFilter is the minimal interface for per-chunk pruning filters
// (implemented in internal/filter). Filters support approximate membership
// queries: CanPrune may only return true if the predicate definitely matches
// no row of the chunk (no false pruning).
type ChunkFilter interface {
	// FilterType names the implementation ("MinMax", "CQF", "RangeHist").
	FilterType() string
	// ColumnID returns the filtered column.
	ColumnID() types.ColumnID
	// CanPruneEquals reports that no row equals v.
	CanPruneEquals(v types.Value) bool
	// CanPruneRange reports that no row falls in [lo, hi]; nil bounds open.
	CanPruneRange(lo, hi *types.Value) bool
	// MemoryUsage returns the estimated heap footprint in bytes.
	MemoryUsage() int64
}

// Chunk is a horizontal partition of a table holding one segment per
// column. Chunks are append-only while mutable and become immutable when
// they reach their target size; only immutable chunks carry encodings,
// indexes, and filters.
type Chunk struct {
	segments []Segment
	mvcc     *MvccData

	mu        sync.RWMutex // guards segments replacement, indexes, filters
	immutable atomic.Bool
	indexes   []ChunkIndex
	filters   []ChunkFilter

	// rowCount is maintained explicitly because appends to the individual
	// value segments happen under the table's append lock.
	rowCount atomic.Int64
}

// NewChunk creates a chunk over the given segments. mvcc may be nil when
// concurrency control is disabled.
func NewChunk(segments []Segment, mvcc *MvccData) *Chunk {
	c := &Chunk{segments: segments, mvcc: mvcc}
	if len(segments) > 0 {
		c.rowCount.Store(int64(segments[0].Len()))
	}
	return c
}

// Size returns the number of rows in the chunk.
func (c *Chunk) Size() int { return int(c.rowCount.Load()) }

// ColumnCount returns the number of segments.
func (c *Chunk) ColumnCount() int { return len(c.segments) }

// GetSegment returns the segment of the given column. For mutable chunks
// it returns a length-consistent snapshot: appends run under the chunk
// lock and may grow (or reallocate) the value slices, so readers get a
// view truncated to the row count at snapshot time — the appender only
// ever writes beyond that point or into a fresh backing array, never into
// the snapshot.
func (c *Chunk) GetSegment(col types.ColumnID) Segment {
	c.mu.RLock()
	defer c.mu.RUnlock()
	seg := c.segments[col]
	if c.immutable.Load() {
		return seg
	}
	size := int(c.rowCount.Load())
	switch vs := seg.(type) {
	case *ValueSegment[int64]:
		return vs.snapshot(size)
	case *ValueSegment[float64]:
		return vs.snapshot(size)
	case *ValueSegment[string]:
		return vs.snapshot(size)
	default:
		return seg
	}
}

// SnapshotSegments returns every segment truncated to one consistent row
// count, taken under a single lock acquisition. Serialization (snapshots)
// uses it so all columns of a mutable chunk are captured at the same row
// boundary even while appends continue.
func (c *Chunk) SnapshotSegments() ([]Segment, int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	size := int(c.rowCount.Load())
	immutable := c.immutable.Load()
	out := make([]Segment, len(c.segments))
	for i, seg := range c.segments {
		if !immutable {
			switch vs := seg.(type) {
			case *ValueSegment[int64]:
				out[i] = vs.snapshot(size)
				continue
			case *ValueSegment[float64]:
				out[i] = vs.snapshot(size)
				continue
			case *ValueSegment[string]:
				out[i] = vs.snapshot(size)
				continue
			}
		}
		out[i] = seg
	}
	return out, size
}

// ReplaceSegment swaps in a (typically encoded) segment for a column. Only
// legal on immutable chunks, where the data can no longer change underneath.
func (c *Chunk) ReplaceSegment(col types.ColumnID, seg Segment) {
	if !c.IsImmutable() {
		panic("storage: cannot replace segment of mutable chunk")
	}
	if seg.Len() != c.Size() {
		panic("storage: replacement segment has wrong length")
	}
	c.mu.Lock()
	c.segments[col] = seg
	c.mu.Unlock()
}

// MvccData returns the chunk's MVCC columns (nil if MVCC is disabled).
func (c *Chunk) MvccData() *MvccData { return c.mvcc }

// IsImmutable reports whether the chunk has been finalized.
func (c *Chunk) IsImmutable() bool { return c.immutable.Load() }

// Finalize marks the chunk immutable. Idempotent.
func (c *Chunk) Finalize() { c.immutable.Store(true) }

// AddIndex attaches a secondary index to the chunk.
func (c *Chunk) AddIndex(idx ChunkIndex) {
	if !c.IsImmutable() {
		panic("storage: indexes may only be added to immutable chunks")
	}
	c.mu.Lock()
	c.indexes = append(c.indexes, idx)
	c.mu.Unlock()
}

// GetIndex returns an index on the column, or nil.
func (c *Chunk) GetIndex(col types.ColumnID) ChunkIndex {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, idx := range c.indexes {
		if idx.ColumnID() == col {
			return idx
		}
	}
	return nil
}

// Indexes returns all indexes attached to the chunk.
func (c *Chunk) Indexes() []ChunkIndex {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]ChunkIndex, len(c.indexes))
	copy(out, c.indexes)
	return out
}

// AddFilter attaches a pruning filter to the chunk.
func (c *Chunk) AddFilter(f ChunkFilter) {
	if !c.IsImmutable() {
		panic("storage: filters may only be added to immutable chunks")
	}
	c.mu.Lock()
	c.filters = append(c.filters, f)
	c.mu.Unlock()
}

// Filters returns the filters of the given column.
func (c *Chunk) Filters(col types.ColumnID) []ChunkFilter {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []ChunkFilter
	for _, f := range c.filters {
		if f.ColumnID() == col {
			out = append(out, f)
		}
	}
	return out
}

// AllFilters returns every filter attached to the chunk.
func (c *Chunk) AllFilters() []ChunkFilter {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]ChunkFilter, len(c.filters))
	copy(out, c.filters)
	return out
}

// MemoryUsage returns the heap footprint of the chunk, split into data and
// metadata (MVCC columns, indexes, filters, bookkeeping). The metadata share
// is what §2.2 of the paper argues becomes negligible for large chunks.
func (c *Chunk) MemoryUsage() (data, metadata int64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, s := range c.segments {
		data += s.MemoryUsage()
	}
	if c.mvcc != nil {
		metadata += c.mvcc.MemoryUsage()
	}
	for _, idx := range c.indexes {
		metadata += idx.MemoryUsage()
	}
	for _, f := range c.filters {
		metadata += f.MemoryUsage()
	}
	metadata += 128 // struct headers, slice headers, atomics
	return data, metadata
}

// appendRow adds one row to the chunk's value segments. Caller must hold
// the table's append lock and have verified capacity; the chunk lock is
// taken so concurrent readers snapshot consistent segment states.
func (c *Chunk) appendRow(vals []types.Value) error {
	if c.mvcc != nil {
		c.mvcc.EnsureCapacity(types.ChunkOffset(c.Size()))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, v := range vals {
		if err := AppendValueTo(c.segments[i], v); err != nil {
			return err
		}
	}
	c.rowCount.Add(1)
	return nil
}
