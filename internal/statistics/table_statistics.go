package statistics

import (
	"math"
	"sync"

	"hyrise/internal/encoding"
	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// DefaultHistogramBins is the bin budget for column histograms.
const DefaultHistogramBins = 64

// ColumnStatistics summarizes one column for the cardinality estimator.
type ColumnStatistics struct {
	Type          types.DataType
	RowCount      float64
	NullCount     float64
	DistinctCount float64
	Min, Max      float64 // domain-mapped for strings
	Hist          *Histogram
}

// NullFraction returns the fraction of NULL rows.
func (c *ColumnStatistics) NullFraction() float64 {
	if c.RowCount == 0 {
		return 0
	}
	return c.NullCount / c.RowCount
}

// TableStatistics summarizes a table. Statistics are built lazily by the
// optimizer and cached per table (invalidation on row-count change).
type TableStatistics struct {
	RowCount float64
	Columns  []*ColumnStatistics
}

// ValueToDomain maps a dynamic value into the float64 estimation domain.
func ValueToDomain(v types.Value) (float64, bool) {
	switch v.Type {
	case types.TypeInt64:
		return float64(v.I), true
	case types.TypeFloat64:
		return v.F, true
	case types.TypeString:
		return StringToDomain(v.S), true
	default:
		return 0, false
	}
}

// BuildTableStatistics scans a data table and builds statistics for every
// column using the given histogram type.
func BuildTableStatistics(t *storage.Table, kind HistogramType) *TableStatistics {
	defs := t.ColumnDefinitions()
	ts := &TableStatistics{
		RowCount: float64(t.RowCount()),
		Columns:  make([]*ColumnStatistics, len(defs)),
	}
	chunks := t.Chunks()
	for col := range defs {
		counts := make(map[float64]int)
		nullCount := 0
		// The float domain embedding truncates strings to eight bytes, which
		// collapses long shared prefixes; distinct counts for strings are
		// therefore tracked on the exact values.
		var strDistinct map[string]struct{}
		if defs[col].Type == types.TypeString {
			strDistinct = make(map[string]struct{})
		}
		for _, c := range chunks {
			seg := c.GetSegment(types.ColumnID(col))
			switch defs[col].Type {
			case types.TypeInt64:
				vals, nulls := encoding.Materialize[int64](seg)
				for i, v := range vals {
					if nulls != nil && nulls[i] {
						nullCount++
						continue
					}
					counts[float64(v)]++
				}
			case types.TypeFloat64:
				vals, nulls := encoding.Materialize[float64](seg)
				for i, v := range vals {
					if nulls != nil && nulls[i] {
						nullCount++
						continue
					}
					counts[v]++
				}
			case types.TypeString:
				vals, nulls := encoding.Materialize[string](seg)
				for i, v := range vals {
					if nulls != nil && nulls[i] {
						nullCount++
						continue
					}
					counts[StringToDomain(v)]++
					strDistinct[v] = struct{}{}
				}
			}
		}
		distinct := float64(len(counts))
		if strDistinct != nil {
			distinct = float64(len(strDistinct))
		}
		cs := &ColumnStatistics{
			Type:          defs[col].Type,
			RowCount:      ts.RowCount,
			NullCount:     float64(nullCount),
			DistinctCount: distinct,
			Hist:          BuildHistogram(kind, counts, DefaultHistogramBins),
		}
		cs.Min, cs.Max = math.Inf(1), math.Inf(-1)
		for v := range counts {
			cs.Min = math.Min(cs.Min, v)
			cs.Max = math.Max(cs.Max, v)
		}
		ts.Columns[col] = cs
	}
	return ts
}

// EstimateEquals estimates the selectivity (0..1) of column = v.
func (ts *TableStatistics) EstimateEquals(col types.ColumnID, v types.Value) float64 {
	cs := ts.Columns[col]
	if ts.RowCount == 0 || cs == nil {
		return 0
	}
	d, ok := ValueToDomain(v)
	if !ok {
		return 0 // NULL never matches equality
	}
	return clampSel(cs.Hist.EstimateEquals(d) / ts.RowCount)
}

// EstimateRange estimates the selectivity of lo <= column <= hi (nil = open).
func (ts *TableStatistics) EstimateRange(col types.ColumnID, lo, hi *types.Value) float64 {
	cs := ts.Columns[col]
	if ts.RowCount == 0 || cs == nil {
		return 0
	}
	loF, hiF := math.Inf(-1), math.Inf(1)
	if lo != nil {
		d, ok := ValueToDomain(*lo)
		if !ok {
			return 0
		}
		loF = d
	}
	if hi != nil {
		d, ok := ValueToDomain(*hi)
		if !ok {
			return 0
		}
		hiF = d
	}
	return clampSel(cs.Hist.EstimateRange(loF, hiF) / ts.RowCount)
}

// EstimateNotEquals estimates the selectivity of column <> v.
func (ts *TableStatistics) EstimateNotEquals(col types.ColumnID, v types.Value) float64 {
	cs := ts.Columns[col]
	if cs == nil || ts.RowCount == 0 {
		return 1
	}
	return clampSel(1 - ts.EstimateEquals(col, v) - cs.NullFraction())
}

// EstimateJoinCardinality estimates |R join S| on an equi-join between this
// table's column and another table's column using the textbook formula
// |R|*|S| / max(ndv(R.a), ndv(S.b)).
func EstimateJoinCardinality(left *TableStatistics, leftCol types.ColumnID, right *TableStatistics, rightCol types.ColumnID) float64 {
	ndv := math.Max(distinctOrOne(left, leftCol), distinctOrOne(right, rightCol))
	return left.RowCount * right.RowCount / ndv
}

func distinctOrOne(ts *TableStatistics, col types.ColumnID) float64 {
	if ts == nil || int(col) >= len(ts.Columns) || ts.Columns[col] == nil || ts.Columns[col].DistinctCount < 1 {
		return 1
	}
	return ts.Columns[col].DistinctCount
}

func clampSel(s float64) float64 {
	if s < 0 || math.IsNaN(s) {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// Cache caches TableStatistics per table, invalidated when the row count
// changes (cheap heuristic; statistics need not be exact).
type Cache struct {
	mu      sync.Mutex
	entries map[*storage.Table]cacheEntry
	kind    HistogramType
}

type cacheEntry struct {
	stats    *TableStatistics
	rowCount int
}

// NewCache creates a statistics cache using the given histogram type.
func NewCache(kind HistogramType) *Cache {
	return &Cache{entries: make(map[*storage.Table]cacheEntry), kind: kind}
}

// Peek returns the cached statistics of a table without building anything —
// the executor's parallelism cost gates call this per scan, so it must stay
// a map lookup. Stale entries (row count drifted since the build) are still
// returned: a slightly off selectivity only skews a serial-vs-parallel
// choice, never a result. Returns nil when the optimizer has not built
// statistics for the table yet.
func (c *Cache) Peek(t *storage.Table) *TableStatistics {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[t]; ok {
		return e.stats
	}
	return nil
}

// Get returns (building if needed) the statistics of a table.
func (c *Cache) Get(t *storage.Table) *TableStatistics {
	c.mu.Lock()
	defer c.mu.Unlock()
	rc := t.RowCount()
	if e, ok := c.entries[t]; ok && e.rowCount == rc {
		return e.stats
	}
	stats := BuildTableStatistics(t, c.kind)
	c.entries[t] = cacheEntry{stats: stats, rowCount: rc}
	return stats
}
