package statistics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"hyrise/internal/storage"
	"hyrise/internal/types"
)

func uniformCounts(n, copies int) map[float64]int {
	m := make(map[float64]int, n)
	for i := 0; i < n; i++ {
		m[float64(i)] = copies
	}
	return m
}

func TestHistogramTypesBasics(t *testing.T) {
	counts := uniformCounts(100, 10) // 0..99, 10 rows each, 1000 rows
	for _, kind := range []HistogramType{EqualHeight, EqualWidth, EqualDistinctCount} {
		h := BuildHistogram(kind, counts, 10)
		if h.Kind() != kind {
			t.Errorf("%v: Kind wrong", kind)
		}
		if h.BinCount() < 5 || h.BinCount() > 20 {
			t.Errorf("%v: BinCount = %d", kind, h.BinCount())
		}
		if h.TotalRows() != 1000 {
			t.Errorf("%v: TotalRows = %f", kind, h.TotalRows())
		}
		if got := h.EstimateEquals(42); got < 5 || got > 20 {
			t.Errorf("%v: EstimateEquals(42) = %f, want ~10", kind, got)
		}
		if got := h.EstimateEquals(-5); got != 0 {
			t.Errorf("%v: EstimateEquals(absent) = %f", kind, got)
		}
		if got := h.EstimateRange(0, 49); got < 350 || got > 650 {
			t.Errorf("%v: EstimateRange(0,49) = %f, want ~500", kind, got)
		}
		if got := h.EstimateRange(math.Inf(-1), math.Inf(1)); math.Abs(got-1000) > 1 {
			t.Errorf("%v: full range = %f, want 1000", kind, got)
		}
		if got := h.EstimateRange(10, 5); got != 0 {
			t.Errorf("%v: inverted range = %f", kind, got)
		}
	}
}

func TestHistogramSkewedData(t *testing.T) {
	counts := map[float64]int{1: 1000, 2: 1, 3: 1, 100: 1}
	// Equal-height puts the heavy hitter alone in its bin, so its estimate
	// is much better than equal-width's average.
	eh := BuildHistogram(EqualHeight, counts, 4)
	if got := eh.EstimateEquals(1); got < 500 {
		t.Errorf("EqualHeight EstimateEquals(1) = %f, want >= 500", got)
	}
	ew := BuildHistogram(EqualWidth, counts, 4)
	// Equal-width still sums correctly over the whole domain.
	if got := ew.EstimateRange(math.Inf(-1), math.Inf(1)); math.Abs(got-1003) > 1 {
		t.Errorf("EqualWidth full range = %f", got)
	}
}

func TestHistogramSingleValueAndEmpty(t *testing.T) {
	h := BuildHistogram(EqualWidth, map[float64]int{7: 42}, 8)
	if h.BinCount() != 1 {
		t.Errorf("BinCount = %d", h.BinCount())
	}
	if got := h.EstimateEquals(7); got != 42 {
		t.Errorf("EstimateEquals(7) = %f", got)
	}
	empty := BuildHistogram(EqualHeight, nil, 8)
	if empty.BinCount() != 0 || empty.EstimateEquals(1) != 0 || empty.EstimateRange(0, 1) != 0 {
		t.Error("empty histogram should estimate 0")
	}
}

func TestHistogramNameStrings(t *testing.T) {
	if EqualHeight.String() != "EqualHeight" || EqualWidth.String() != "EqualWidth" ||
		EqualDistinctCount.String() != "EqualDistinctCount" || HistogramType(9).String() != "?" {
		t.Error("names wrong")
	}
}

// Property: full-range estimates equal the true total for all histogram
// types, and equals-estimates are non-negative.
func TestHistogramMassConservationProperty(t *testing.T) {
	for _, kind := range []HistogramType{EqualHeight, EqualWidth, EqualDistinctCount} {
		kind := kind
		f := func(raw []uint8, bins uint8) bool {
			counts := make(map[float64]int)
			total := 0
			for _, r := range raw {
				counts[float64(r%50)]++
				total++
			}
			h := BuildHistogram(kind, counts, int(bins%16)+1)
			full := h.EstimateRange(math.Inf(-1), math.Inf(1))
			return math.Abs(full-float64(total)) < 1e-6
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
	}
}

func TestStringToDomainOrderProperty(t *testing.T) {
	f := func(a, b string) bool {
		da, db := StringToDomain(a), StringToDomain(b)
		if a < b {
			return da <= db
		}
		if a > b {
			return da >= db
		}
		return da == db
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestStringToDomainDistinguishesShortStrings pins collision regressions:
// the former zero-padded mapping collapsed a string with its NUL-extension
// and (via a low-bit shift) adjacent 8-byte values.
func TestStringToDomainDistinguishesShortStrings(t *testing.T) {
	increasing := []string{"", "\x00", "a", "a\x00", "a\x01", "ab", "abc", "abd", "aaaaaa", "aaaaaab"}
	sorted := append([]string(nil), increasing...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		a, b := sorted[i-1], sorted[i]
		da, db := StringToDomain(a), StringToDomain(b)
		if !(da < db) {
			t.Errorf("StringToDomain(%q) = %v not < StringToDomain(%q) = %v", a, da, b, db)
		}
	}
}

func buildTestTable(t *testing.T) *storage.Table {
	t.Helper()
	defs := []storage.ColumnDefinition{
		{Name: "id", Type: types.TypeInt64},
		{Name: "price", Type: types.TypeFloat64, Nullable: true},
		{Name: "status", Type: types.TypeString},
	}
	table := storage.NewTable("t", defs, 100, false)
	statuses := []string{"open", "closed", "pending"}
	for i := 0; i < 1000; i++ {
		price := types.Float(float64(i % 50))
		if i%10 == 0 {
			price = types.NullValue
		}
		_, err := table.AppendRow([]types.Value{
			types.Int(int64(i)), price, types.Str(statuses[i%3]),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return table
}

func TestBuildTableStatistics(t *testing.T) {
	table := buildTestTable(t)
	ts := BuildTableStatistics(table, EqualHeight)
	if ts.RowCount != 1000 {
		t.Fatalf("RowCount = %f", ts.RowCount)
	}
	id := ts.Columns[0]
	if id.DistinctCount != 1000 || id.NullCount != 0 || id.Min != 0 || id.Max != 999 {
		t.Errorf("id stats = %+v", id)
	}
	price := ts.Columns[1]
	// price = i%50, but every multiple of 10 is NULL (i%10==0 covers exactly
	// the residues 0,10,20,30,40), leaving 45 distinct non-NULL values.
	if price.DistinctCount != 45 {
		t.Errorf("price distinct = %f", price.DistinctCount)
	}
	if got := price.NullFraction(); math.Abs(got-0.1) > 0.01 {
		t.Errorf("price null fraction = %f", got)
	}
	status := ts.Columns[2]
	if status.DistinctCount != 3 {
		t.Errorf("status distinct = %f", status.DistinctCount)
	}
}

func TestEstimateSelectivities(t *testing.T) {
	table := buildTestTable(t)
	ts := BuildTableStatistics(table, EqualHeight)

	// id = 500: 1/1000.
	if got := ts.EstimateEquals(0, types.Int(500)); got < 0.0005 || got > 0.01 {
		t.Errorf("EstimateEquals(id=500) = %f", got)
	}
	// id in [0, 499]: ~0.5.
	lo, hi := types.Int(0), types.Int(499)
	if got := ts.EstimateRange(0, &lo, &hi); got < 0.4 || got > 0.6 {
		t.Errorf("EstimateRange(id 0..499) = %f", got)
	}
	// status = 'open': ~1/3.
	if got := ts.EstimateEquals(2, types.Str("open")); got < 0.2 || got > 0.5 {
		t.Errorf("EstimateEquals(status=open) = %f", got)
	}
	// NULL probe: never matches.
	if got := ts.EstimateEquals(0, types.NullValue); got != 0 {
		t.Errorf("NULL equals selectivity = %f", got)
	}
	// NotEquals on price accounts for the null fraction.
	got := ts.EstimateNotEquals(1, types.Float(1))
	if got < 0.8 || got > 0.95 {
		t.Errorf("EstimateNotEquals(price<>1) = %f", got)
	}
	// Open bounds.
	if got := ts.EstimateRange(0, nil, nil); got < 0.99 {
		t.Errorf("unbounded range selectivity = %f", got)
	}
}

func TestEstimateJoinCardinality(t *testing.T) {
	table := buildTestTable(t)
	ts := BuildTableStatistics(table, EqualHeight)
	// Self-join on unique id: |R|*|S|/1000 = 1000.
	got := EstimateJoinCardinality(ts, 0, ts, 0)
	if math.Abs(got-1000) > 1 {
		t.Errorf("join cardinality on id = %f, want 1000", got)
	}
	// Join on 3-distinct status: 1000*1000/3.
	got = EstimateJoinCardinality(ts, 2, ts, 2)
	if math.Abs(got-1000*1000.0/3) > 1 {
		t.Errorf("join cardinality on status = %f", got)
	}
}

func TestStatisticsCache(t *testing.T) {
	table := buildTestTable(t)
	cache := NewCache(EqualHeight)
	s1 := cache.Get(table)
	s2 := cache.Get(table)
	if s1 != s2 {
		t.Error("cache should return the same object for unchanged table")
	}
	_, _ = table.AppendRow([]types.Value{types.Int(9999), types.Float(1), types.Str("open")})
	s3 := cache.Get(table)
	if s3 == s1 {
		t.Error("cache must invalidate after row count change")
	}
	if s3.RowCount != 1001 {
		t.Errorf("rebuilt RowCount = %f", s3.RowCount)
	}
}
