// Package statistics implements the optimizer's auxiliary statistics
// (paper §2.1/§2.4): per-column histograms (equal-height, equal-width,
// equal-distinct-count), distinct counts, null fractions, and the
// table-level statistics objects the cardinality estimator consumes.
package statistics

import (
	"math"
	"sort"
)

// HistogramType selects a bin-splitting strategy.
type HistogramType uint8

const (
	// EqualHeight bins hold (approximately) equal row counts.
	EqualHeight HistogramType = iota
	// EqualWidth bins cover equal value ranges.
	EqualWidth
	// EqualDistinctCount bins hold equal numbers of distinct values.
	EqualDistinctCount
)

// String names the histogram type.
func (t HistogramType) String() string {
	switch t {
	case EqualHeight:
		return "EqualHeight"
	case EqualWidth:
		return "EqualWidth"
	case EqualDistinctCount:
		return "EqualDistinctCount"
	default:
		return "?"
	}
}

// Histogram estimates row counts for predicates over one column. All
// histograms operate on a float64 domain; strings are embedded order-
// preservingly via StringToDomain.
type Histogram struct {
	kind    HistogramType
	binLo   []float64 // inclusive lower edge (actual min value in bin)
	binHi   []float64 // inclusive upper edge (actual max value in bin)
	binRows []float64
	binDist []float64
	total   float64
}

// BuildHistogram builds a histogram of the given type with at most binCount
// bins from a value->row-count map.
func BuildHistogram(kind HistogramType, counts map[float64]int, binCount int) *Histogram {
	h := &Histogram{kind: kind}
	if len(counts) == 0 {
		return h
	}
	if binCount < 1 {
		binCount = 1
	}
	distinct := make([]float64, 0, len(counts))
	total := 0
	for v, c := range counts {
		distinct = append(distinct, v)
		total += c
	}
	sort.Float64s(distinct)
	h.total = float64(total)

	appendBin := func(lo, hi float64, rows, dist int) {
		if dist == 0 {
			return
		}
		h.binLo = append(h.binLo, lo)
		h.binHi = append(h.binHi, hi)
		h.binRows = append(h.binRows, float64(rows))
		h.binDist = append(h.binDist, float64(dist))
	}

	switch kind {
	case EqualWidth:
		minV, maxV := distinct[0], distinct[len(distinct)-1]
		width := (maxV - minV) / float64(binCount)
		if width == 0 {
			appendBin(minV, maxV, total, len(distinct))
			break
		}
		i := 0
		for b := 0; b < binCount; b++ {
			edge := minV + width*float64(b+1)
			if b == binCount-1 {
				edge = math.Inf(1)
			}
			start := i
			rows := 0
			for i < len(distinct) && (distinct[i] < edge || b == binCount-1) {
				rows += counts[distinct[i]]
				i++
			}
			if i > start {
				appendBin(distinct[start], distinct[i-1], rows, i-start)
			}
		}
	case EqualDistinctCount:
		perBin := (len(distinct) + binCount - 1) / binCount
		for i := 0; i < len(distinct); i += perBin {
			j := min(i+perBin, len(distinct))
			rows := 0
			for _, v := range distinct[i:j] {
				rows += counts[v]
			}
			appendBin(distinct[i], distinct[j-1], rows, j-i)
		}
	default: // EqualHeight
		targetRows := (total + binCount - 1) / binCount
		i := 0
		for i < len(distinct) {
			start := i
			rows := 0
			for i < len(distinct) && (rows < targetRows || i == start) {
				rows += counts[distinct[i]]
				i++
			}
			appendBin(distinct[start], distinct[i-1], rows, i-start)
		}
	}
	return h
}

// Kind returns the histogram's bin-splitting strategy.
func (h *Histogram) Kind() HistogramType { return h.kind }

// BinCount returns the number of bins.
func (h *Histogram) BinCount() int { return len(h.binLo) }

// TotalRows returns the number of rows the histogram covers.
func (h *Histogram) TotalRows() float64 { return h.total }

// EstimateEquals estimates the rows equal to v (uniformity within bins).
func (h *Histogram) EstimateEquals(v float64) float64 {
	for i := range h.binLo {
		if v >= h.binLo[i] && v <= h.binHi[i] {
			return h.binRows[i] / h.binDist[i]
		}
	}
	return 0
}

// EstimateRange estimates the rows in [lo, hi]. Use math.Inf for open
// bounds.
func (h *Histogram) EstimateRange(lo, hi float64) float64 {
	if lo > hi {
		return 0
	}
	totalEst := 0.0
	for i := range h.binLo {
		bLo, bHi := h.binLo[i], h.binHi[i]
		if bHi < lo || bLo > hi {
			continue
		}
		if bLo >= lo && bHi <= hi {
			totalEst += h.binRows[i]
			continue
		}
		oLo, oHi := math.Max(bLo, lo), math.Min(bHi, hi)
		if bHi == bLo {
			totalEst += h.binRows[i]
			continue
		}
		frac := (oHi - oLo) / (bHi - bLo)
		// At least one distinct value's worth if the overlap is non-empty.
		est := frac * h.binRows[i]
		if est < h.binRows[i]/h.binDist[i] {
			est = h.binRows[i] / h.binDist[i]
		}
		totalEst += est
	}
	return totalEst
}

// StringToDomain embeds a string order-preservingly into the float64
// domain via its first seven bytes, read as digits in base 257 where an
// absent position is 0 and byte b is b+1. Reserving 0 for "past the end"
// keeps prefixes strictly below their extensions ("a" < "a\x00"), which a
// plain zero-pad would collapse. Strings sharing a 7-byte prefix still
// collapse, which is acceptable for selectivity estimation. The result
// stays below 257^7 < 2^57; uint64→float64 conversion is monotone there,
// so ordering is preserved.
func StringToDomain(s string) float64 {
	var u uint64
	for i := 0; i < 7; i++ {
		var d uint64
		if i < len(s) {
			d = uint64(s[i]) + 1
		}
		u = u*257 + d
	}
	return float64(u)
}
