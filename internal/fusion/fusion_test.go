package fusion_test

import (
	"fmt"
	"strings"
	"testing"

	"hyrise/internal/encoding"
	"hyrise/internal/expression"
	"hyrise/internal/fusion"
	"hyrise/internal/operators"
	"hyrise/internal/pipeline"
	"hyrise/internal/storage"
	"hyrise/internal/types"
)

func fusionEngine(t *testing.T, useFusion bool) (*pipeline.Engine, *pipeline.Session) {
	t.Helper()
	cfg := pipeline.DefaultConfig()
	cfg.UseFusion = useFusion
	e := pipeline.NewEngine(cfg, nil)
	t.Cleanup(e.Close)
	s := e.NewSession()
	if _, err := s.ExecuteOne(`CREATE TABLE items (
		qty FLOAT NOT NULL, price FLOAT NOT NULL, disc FLOAT NOT NULL,
		tag VARCHAR(10) NOT NULL, grp INT NOT NULL)`); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO items VALUES ")
	for i := 0; i < 500; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d.0, %d.5, 0.0%d, 'tag%d', %d)", i%50+1, i%100, i%10, i%3, i%7)
	}
	if _, err := s.ExecuteOne(sb.String()); err != nil {
		t.Fatal(err)
	}
	return e, s
}

func query(t *testing.T, s *pipeline.Session, sql string) []string {
	t.Helper()
	res, err := s.ExecuteOne(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	var out []string
	for _, r := range pipeline.RowStrings(res.Table) {
		out = append(out, strings.Join(r, "|"))
	}
	return out
}

// Fused and traditional execution must agree on every supported pattern.
func TestFusedAgreesWithTraditional(t *testing.T) {
	_, fused := fusionEngine(t, true)
	_, plain := fusionEngine(t, false)
	queries := []string{
		"SELECT sum(qty) FROM items",
		"SELECT count(*), sum(price * (1 - disc)), avg(qty), min(price), max(price) FROM items",
		"SELECT sum(price) FROM items WHERE qty > 25 AND disc BETWEEN 0.02 AND 0.08",
		"SELECT sum(CASE WHEN tag LIKE 'tag1%' THEN price ELSE 0 END) FROM items",
		"SELECT count(*) FROM items WHERE grp IN (1, 3, 5) AND NOT (qty < 10)",
		"SELECT sum(qty * price - disc * 100) / count(*) FROM items WHERE tag <> 'tag0'",
	}
	for _, q := range queries {
		got := query(t, fused, q)
		want := query(t, plain, q)
		if len(got) != len(want) {
			t.Fatalf("%s: row count %d vs %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s:\n  fused: %s\n  plain: %s", q, got[i], want[i])
			}
		}
	}
}

func TestTryFusePatterns(t *testing.T) {
	col := func(i int) *expression.BoundColumn { return &expression.BoundColumn{Index: i, DT: types.TypeFloat64} }
	get := &operators.GetTable{TableName: "items"}
	scan := operators.NewTableScan(get, &expression.Comparison{Op: expression.Gt, Left: col(0), Right: expression.NewLiteral(types.Float(1))})
	agg := operators.NewAggregate(scan, nil,
		[]*expression.Aggregate{{Fn: expression.AggSum, Arg: col(1)}},
		[]string{"s"}, []types.DataType{types.TypeFloat64})

	fused, ok := fusion.TryFuse(agg)
	if !ok {
		t.Fatal("scan+aggregate should fuse")
	}
	if _, isFused := fused.(*fusion.ScanAggregate); !isFused {
		t.Fatalf("got %T", fused)
	}
	if !strings.Contains(fused.Name(), "FusedScanAggregate") {
		t.Errorf("name = %s", fused.Name())
	}

	// Projection on top fuses through.
	proj := operators.NewProjection(agg, []expression.Expression{col(0)}, []string{"x"}, []types.DataType{types.TypeFloat64})
	if _, ok := fusion.TryFuse(proj); !ok {
		t.Error("projection over fused aggregate should fuse")
	}

	// Grouped aggregates do not fuse.
	grouped := operators.NewAggregate(scan, []expression.Expression{col(0)},
		[]*expression.Aggregate{{Fn: expression.AggSum, Arg: col(1)}},
		[]string{"g", "s"}, []types.DataType{types.TypeFloat64, types.TypeFloat64})
	if _, ok := fusion.TryFuse(grouped); ok {
		t.Error("grouped aggregate must not fuse")
	}

	// COUNT DISTINCT does not fuse.
	cd := operators.NewAggregate(scan, nil,
		[]*expression.Aggregate{{Fn: expression.AggCountDistinct, Arg: col(1)}},
		[]string{"cd"}, []types.DataType{types.TypeInt64})
	if _, ok := fusion.TryFuse(cd); ok {
		t.Error("count distinct must not fuse")
	}

	// Joins below do not fuse.
	join := operators.NewHashJoin(operators.JoinModeInner, get, get, col(0), col(0), nil)
	aggOverJoin := operators.NewAggregate(join, nil,
		[]*expression.Aggregate{{Fn: expression.AggCountStar}},
		[]string{"n"}, []types.DataType{types.TypeInt64})
	if _, ok := fusion.TryFuse(aggOverJoin); ok {
		t.Error("aggregate over join must not fuse")
	}
}

func TestCompileNumericAndBool(t *testing.T) {
	src := fusion.NewColumnSource(func(int) types.DataType { return types.TypeFloat64 })
	src.Floats[0] = []float64{1, 2, 3}
	src.Ints[1] = []int64{10, 20, 30}
	src.Nulls[1] = []bool{false, true, false}
	src.Strs[2] = []string{"alpha", "beta", "gamma"}

	colF := &expression.BoundColumn{Index: 0, DT: types.TypeFloat64}
	colI := &expression.BoundColumn{Index: 1, DT: types.TypeInt64}
	colS := &expression.BoundColumn{Index: 2, DT: types.TypeString}

	sum, err := fusion.CompileNumeric(&expression.Arithmetic{Op: expression.Add, Left: colF, Right: colI}, src)
	if err != nil {
		t.Fatal(err)
	}
	if v, null := sum(0); null || v != 11 {
		t.Errorf("sum(0) = %f, %v", v, null)
	}
	if _, null := sum(1); !null {
		t.Error("null should propagate")
	}

	like, err := fusion.CompileBool(&expression.Comparison{Op: expression.Like, Left: colS, Right: expression.NewLiteral(types.Str("%eta"))}, src)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := like(1); !v {
		t.Error("beta should match the pattern")
	}
	if v, _ := like(0); v {
		t.Error("alpha should not match the pattern")
	}

	isNull, err := fusion.CompileBool(&expression.IsNull{Child: colI}, src)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := isNull(1); !v {
		t.Error("row 1 is NULL")
	}
	if v, _ := isNull(0); v {
		t.Error("row 0 is not NULL")
	}

	// Unsupported shapes report errors.
	if _, err := fusion.CompileNumeric(colS, src); err == nil {
		t.Error("string column as numeric should fail")
	}
	if _, err := fusion.CompileBool(&expression.Exists{Subquery: &expression.Subquery{}}, src); err == nil {
		t.Error("EXISTS should not compile")
	}
}

// TestScanAggregateRunDirect executes the fused operator directly (not
// through the SQL pipeline) over every supported aggregate and an encoded
// input, checking results against hand-computed values.
func TestScanAggregateRunDirect(t *testing.T) {
	sm := storage.NewStorageManager()
	table := storage.NewTable("direct", []storage.ColumnDefinition{
		{Name: "v", Type: types.TypeFloat64},
		{Name: "w", Type: types.TypeInt64, Nullable: true},
	}, 64, false)
	var wantSum, wantCount float64
	wantMin, wantMax := 1e18, -1e18
	for i := 0; i < 500; i++ {
		v := float64(i % 97)
		wv := types.Int(int64(i % 13))
		if i%10 == 0 {
			wv = types.NullValue
		}
		if _, err := table.AppendRow([]types.Value{types.Float(v), wv}); err != nil {
			t.Fatal(err)
		}
		if v > 20 { // predicate below
			wantSum += v * 2
			wantCount++
			if v*2 < wantMin {
				wantMin = v * 2
			}
			if v*2 > wantMax {
				wantMax = v * 2
			}
		}
	}
	table.FinalizeLastChunk()
	if err := encoding.EncodeTable(table, encoding.Spec{Encoding: encoding.Dictionary, Compression: encoding.FixedSizeByteAligned}, nil); err != nil {
		t.Fatal(err)
	}
	if err := sm.AddTable(table); err != nil {
		t.Fatal(err)
	}

	col0 := &expression.BoundColumn{Index: 0, DT: types.TypeFloat64}
	arg := &expression.Arithmetic{Op: expression.Mul, Left: col0, Right: expression.NewLiteral(types.Float(2))}
	pred := &expression.Comparison{Op: expression.Gt, Left: col0, Right: expression.NewLiteral(types.Float(20))}

	agg := operators.NewAggregate(
		operators.NewTableScan(&operators.GetTable{TableName: "direct"}, pred),
		nil,
		[]*expression.Aggregate{
			{Fn: expression.AggSum, Arg: arg},
			{Fn: expression.AggCountStar},
			{Fn: expression.AggMin, Arg: arg},
			{Fn: expression.AggMax, Arg: arg},
			{Fn: expression.AggAvg, Arg: arg},
			{Fn: expression.AggCount, Arg: &expression.BoundColumn{Index: 1, DT: types.TypeInt64}},
		},
		[]string{"s", "n", "mn", "mx", "a", "c"},
		[]types.DataType{types.TypeFloat64, types.TypeInt64, types.TypeFloat64, types.TypeFloat64, types.TypeFloat64, types.TypeInt64},
	)
	fused, ok := fusion.TryFuse(agg)
	if !ok {
		t.Fatal("should fuse")
	}
	ctx := operators.NewExecContext(sm, nil, nil)
	out, err := operators.Execute(fused, ctx)
	if err != nil {
		t.Fatal(err)
	}
	row := pipeline.RowStrings(out)[0]
	check := func(idx int, want float64) {
		var got float64
		if _, err := fmt.Sscan(row[idx], &got); err != nil {
			t.Fatalf("col %d: %v", idx, err)
		}
		if got < want-0.001 || got > want+0.001 {
			t.Errorf("col %d = %v, want %v", idx, got, want)
		}
	}
	check(0, wantSum)
	check(1, wantCount)
	check(2, wantMin)
	check(3, wantMax)
	check(4, wantSum/wantCount)
	// Column w: NULLs excluded from count; every 10th row of the matching
	// set is NULL — recompute directly.
	var wantC float64
	for i := 0; i < 500; i++ {
		if float64(i%97) > 20 && i%10 != 0 {
			wantC++
		}
	}
	check(5, wantC)

	// Empty input: one row, NULL sum, zero counts.
	emptyScan := operators.NewTableScan(&operators.GetTable{TableName: "direct"},
		&expression.Comparison{Op: expression.Gt, Left: col0, Right: expression.NewLiteral(types.Float(1e9))})
	emptyAgg := operators.NewAggregate(emptyScan, nil,
		[]*expression.Aggregate{{Fn: expression.AggSum, Arg: arg}, {Fn: expression.AggCountStar}},
		[]string{"s", "n"}, []types.DataType{types.TypeFloat64, types.TypeInt64})
	fusedEmpty, ok := fusion.TryFuse(emptyAgg)
	if !ok {
		t.Fatal("empty case should fuse")
	}
	out, err = operators.Execute(fusedEmpty, ctx)
	if err != nil {
		t.Fatal(err)
	}
	row = pipeline.RowStrings(out)[0]
	if row[0] != "NULL" || row[1] != "0" {
		t.Errorf("empty fused agg = %v", row)
	}
}
