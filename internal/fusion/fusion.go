// Package fusion is the reproduction's stand-in for Hyrise's LLVM-based
// just-in-time query compilation (paper §2.7; DESIGN.md substitution S3).
// Go cannot specialize LLVM bitcode at runtime, but the JIT's two measured
// effects are reproduced:
//
//  1. Code specialization: expression trees are compiled once into closure
//     trees over typed column slices — all type switches, operator
//     dispatch, and LIKE pattern compilation happen at compile time, none
//     per row (the analog of replacing virtual calls and type switches
//     with concrete code).
//  2. Operator fusion: scan→aggregate pipelines between pipeline breakers
//     collapse into a single pass per chunk with no intermediate position
//     lists or reference tables (the analog of "a single binary that
//     represents all logical operators between two pipeline breakers").
//
// Like the paper's JIT ("the JIT component has to be explicitly enabled"),
// fusion is off by default and enabled per engine configuration.
package fusion

import (
	"fmt"

	"hyrise/internal/expression"
	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// Numeric is a compiled numeric expression: evaluated per row with all
// dispatch resolved at compile time.
type Numeric func(row int) (val float64, null bool)

// Bool is a compiled predicate (SQL three-valued: null means UNKNOWN).
type Bool func(row int) (val bool, null bool)

// Str is a compiled string expression.
type Str func(row int) (val string, null bool)

// ColumnSource hands the compiler typed column slices for the current
// chunk. Materialization happens once per chunk, before the fused loop.
type ColumnSource struct {
	Ints    map[int][]int64
	Floats  map[int][]float64
	Strs    map[int][]string
	Nulls   map[int][]bool // nil entry = no NULLs in that column
	ColType func(index int) types.DataType
}

// NewColumnSource prepares an empty source with a type resolver.
func NewColumnSource(colType func(int) types.DataType) *ColumnSource {
	return &ColumnSource{
		Ints:    make(map[int][]int64),
		Floats:  make(map[int][]float64),
		Strs:    make(map[int][]string),
		Nulls:   make(map[int][]bool),
		ColType: colType,
	}
}

// CompileNumeric builds the closure tree for a numeric expression.
func CompileNumeric(e expression.Expression, src *ColumnSource) (Numeric, error) {
	switch x := e.(type) {
	case *expression.Literal:
		if x.Value.IsNull() {
			return func(int) (float64, bool) { return 0, true }, nil
		}
		if !x.Value.Type.IsNumeric() {
			return nil, fmt.Errorf("fusion: non-numeric literal %s", x)
		}
		v := x.Value.AsFloat()
		return func(int) (float64, bool) { return v, false }, nil

	case *expression.BoundColumn:
		dt := x.DT
		if dt == types.TypeNull && src.ColType != nil {
			dt = src.ColType(x.Index)
		}
		idx := x.Index
		switch dt {
		case types.TypeInt64:
			vals := src.Ints[idx]
			nulls := src.Nulls[idx]
			if nulls == nil {
				return func(row int) (float64, bool) { return float64(vals[row]), false }, nil
			}
			return func(row int) (float64, bool) { return float64(vals[row]), nulls[row] }, nil
		case types.TypeFloat64:
			vals := src.Floats[idx]
			nulls := src.Nulls[idx]
			if nulls == nil {
				return func(row int) (float64, bool) { return vals[row], false }, nil
			}
			return func(row int) (float64, bool) { return vals[row], nulls[row] }, nil
		default:
			return nil, fmt.Errorf("fusion: column %d is not numeric", idx)
		}

	case *expression.Negation:
		child, err := CompileNumeric(x.Child, src)
		if err != nil {
			return nil, err
		}
		return func(row int) (float64, bool) {
			v, null := child(row)
			return -v, null
		}, nil

	case *expression.Arithmetic:
		l, err := CompileNumeric(x.Left, src)
		if err != nil {
			return nil, err
		}
		r, err := CompileNumeric(x.Right, src)
		if err != nil {
			return nil, err
		}
		// The operator dispatch happens here, once.
		switch x.Op {
		case expression.Add:
			return func(row int) (float64, bool) {
				a, n1 := l(row)
				b, n2 := r(row)
				return a + b, n1 || n2
			}, nil
		case expression.Sub:
			return func(row int) (float64, bool) {
				a, n1 := l(row)
				b, n2 := r(row)
				return a - b, n1 || n2
			}, nil
		case expression.Mul:
			return func(row int) (float64, bool) {
				a, n1 := l(row)
				b, n2 := r(row)
				return a * b, n1 || n2
			}, nil
		case expression.Div:
			return func(row int) (float64, bool) {
				a, n1 := l(row)
				b, n2 := r(row)
				if b == 0 {
					return 0, true
				}
				return a / b, n1 || n2
			}, nil
		default:
			return nil, fmt.Errorf("fusion: unsupported arithmetic %s", x.Op)
		}

	case *expression.Case:
		type arm struct {
			when Bool
			then Numeric
		}
		arms := make([]arm, len(x.Whens))
		for i, w := range x.Whens {
			when, err := CompileBool(w.When, src)
			if err != nil {
				return nil, err
			}
			then, err := CompileNumeric(w.Then, src)
			if err != nil {
				return nil, err
			}
			arms[i] = arm{when, then}
		}
		var els Numeric
		if x.Else != nil {
			compiled, err := CompileNumeric(x.Else, src)
			if err != nil {
				return nil, err
			}
			els = compiled
		}
		return func(row int) (float64, bool) {
			for _, a := range arms {
				v, null := a.when(row)
				if !null && v {
					return a.then(row)
				}
			}
			if els != nil {
				return els(row)
			}
			return 0, true
		}, nil

	default:
		return nil, fmt.Errorf("fusion: cannot compile %T as numeric", e)
	}
}

// CompileStr builds the closure tree for a string expression.
func CompileStr(e expression.Expression, src *ColumnSource) (Str, error) {
	switch x := e.(type) {
	case *expression.Literal:
		if x.Value.IsNull() {
			return func(int) (string, bool) { return "", true }, nil
		}
		if x.Value.Type != types.TypeString {
			return nil, fmt.Errorf("fusion: non-string literal %s", x)
		}
		v := x.Value.S
		return func(int) (string, bool) { return v, false }, nil
	case *expression.BoundColumn:
		vals := src.Strs[x.Index]
		nulls := src.Nulls[x.Index]
		if vals == nil {
			return nil, fmt.Errorf("fusion: column %d is not a string column", x.Index)
		}
		if nulls == nil {
			return func(row int) (string, bool) { return vals[row], false }, nil
		}
		return func(row int) (string, bool) { return vals[row], nulls[row] }, nil
	default:
		return nil, fmt.Errorf("fusion: cannot compile %T as string", e)
	}
}

// CompileBool builds the closure tree for a predicate.
func CompileBool(e expression.Expression, src *ColumnSource) (Bool, error) {
	switch x := e.(type) {
	case *expression.Literal:
		if x.Value.IsNull() {
			return func(int) (bool, bool) { return false, true }, nil
		}
		v := x.Value.AsBool()
		return func(int) (bool, bool) { return v, false }, nil

	case *expression.Comparison:
		return compileComparison(x, src)

	case *expression.Logical:
		l, err := CompileBool(x.Left, src)
		if err != nil {
			return nil, err
		}
		r, err := CompileBool(x.Right, src)
		if err != nil {
			return nil, err
		}
		if x.Op == expression.And {
			return func(row int) (bool, bool) {
				lv, ln := l(row)
				if !ln && !lv {
					return false, false // short circuit
				}
				rv, rn := r(row)
				if !rn && !rv {
					return false, false
				}
				if ln || rn {
					return false, true
				}
				return true, false
			}, nil
		}
		return func(row int) (bool, bool) {
			lv, ln := l(row)
			if !ln && lv {
				return true, false
			}
			rv, rn := r(row)
			if !rn && rv {
				return true, false
			}
			if ln || rn {
				return false, true
			}
			return false, false
		}, nil

	case *expression.Not:
		child, err := CompileBool(x.Child, src)
		if err != nil {
			return nil, err
		}
		return func(row int) (bool, bool) {
			v, null := child(row)
			return !v, null
		}, nil

	case *expression.IsNull:
		child, err := compileAny(x.Child, src)
		if err != nil {
			return nil, err
		}
		negate := x.Negate
		return func(row int) (bool, bool) {
			null := child(row)
			return null != negate, false
		}, nil

	case *expression.Between:
		ge := &expression.Comparison{Op: expression.Ge, Left: x.Child, Right: x.Lo}
		le := &expression.Comparison{Op: expression.Le, Left: x.Child, Right: x.Hi}
		return CompileBool(&expression.Logical{Op: expression.And, Left: ge, Right: le}, src)

	case *expression.In:
		if x.Subquery != nil {
			return nil, fmt.Errorf("fusion: IN subquery not fusible")
		}
		child, err := CompileNumeric(x.Child, src)
		if err == nil {
			set := make(map[float64]bool, len(x.List))
			for _, el := range x.List {
				lit, ok := el.(*expression.Literal)
				if !ok || !lit.Value.Type.IsNumeric() {
					return nil, fmt.Errorf("fusion: non-literal IN list")
				}
				set[lit.Value.AsFloat()] = true
			}
			negate := x.Negate
			return func(row int) (bool, bool) {
				v, null := child(row)
				if null {
					return false, true
				}
				return set[v] != negate, false
			}, nil
		}
		strChild, err := CompileStr(x.Child, src)
		if err != nil {
			return nil, err
		}
		set := make(map[string]bool, len(x.List))
		for _, el := range x.List {
			lit, ok := el.(*expression.Literal)
			if !ok || lit.Value.Type != types.TypeString {
				return nil, fmt.Errorf("fusion: non-literal IN list")
			}
			set[lit.Value.S] = true
		}
		negate := x.Negate
		return func(row int) (bool, bool) {
			v, null := strChild(row)
			if null {
				return false, true
			}
			return set[v] != negate, false
		}, nil

	default:
		return nil, fmt.Errorf("fusion: cannot compile %T as predicate", e)
	}
}

func compileComparison(x *expression.Comparison, src *ColumnSource) (Bool, error) {
	// LIKE: pattern compiled once.
	if x.Op == expression.Like || x.Op == expression.NotLike {
		val, err := CompileStr(x.Left, src)
		if err != nil {
			return nil, err
		}
		lit, ok := x.Right.(*expression.Literal)
		if !ok || lit.Value.Type != types.TypeString {
			return nil, fmt.Errorf("fusion: LIKE needs a literal pattern")
		}
		matcher := expression.CompileLike(lit.Value.S)
		negate := x.Op == expression.NotLike
		return func(row int) (bool, bool) {
			s, null := val(row)
			if null {
				return false, true
			}
			return matcher.Match(s) != negate, false
		}, nil
	}
	// String comparison.
	if ls, err := CompileStr(x.Left, src); err == nil {
		rs, err := CompileStr(x.Right, src)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(row int) (bool, bool) {
			a, n1 := ls(row)
			b, n2 := rs(row)
			if n1 || n2 {
				return false, true
			}
			switch op {
			case expression.Eq:
				return a == b, false
			case expression.Ne:
				return a != b, false
			case expression.Lt:
				return a < b, false
			case expression.Le:
				return a <= b, false
			case expression.Gt:
				return a > b, false
			default:
				return a >= b, false
			}
		}, nil
	}
	// Numeric comparison.
	l, err := CompileNumeric(x.Left, src)
	if err != nil {
		return nil, err
	}
	r, err := CompileNumeric(x.Right, src)
	if err != nil {
		return nil, err
	}
	op := x.Op
	return func(row int) (bool, bool) {
		a, n1 := l(row)
		b, n2 := r(row)
		if n1 || n2 {
			return false, true
		}
		switch op {
		case expression.Eq:
			return a == b, false
		case expression.Ne:
			return a != b, false
		case expression.Lt:
			return a < b, false
		case expression.Le:
			return a <= b, false
		case expression.Gt:
			return a > b, false
		default:
			return a >= b, false
		}
	}, nil
}

// compileAny compiles just the null test of an arbitrary expression.
func compileAny(e expression.Expression, src *ColumnSource) (func(row int) bool, error) {
	if n, err := CompileNumeric(e, src); err == nil {
		return func(row int) bool { _, null := n(row); return null }, nil
	}
	if s, err := CompileStr(e, src); err == nil {
		return func(row int) bool { _, null := s(row); return null }, nil
	}
	if b, err := CompileBool(e, src); err == nil {
		return func(row int) bool { _, null := b(row); return null }, nil
	}
	return nil, fmt.Errorf("fusion: cannot compile %T", e)
}

// CollectColumns registers every BoundColumn of the expressions in the
// source, so the fused operator knows what to materialize.
func CollectColumns(src *ColumnSource, exprs ...expression.Expression) []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range exprs {
		if e == nil {
			continue
		}
		expression.VisitAll(e, func(x expression.Expression) {
			if bc, ok := x.(*expression.BoundColumn); ok && !seen[bc.Index] {
				seen[bc.Index] = true
				out = append(out, bc.Index)
			}
		})
	}
	return out
}

// MaterializeChunk loads the listed columns of a chunk into the source.
func MaterializeChunk(src *ColumnSource, chunk *storage.Chunk, cols []int) error {
	for _, col := range cols {
		seg := chunk.GetSegment(types.ColumnID(col))
		vec := expression.VectorFromSegment(seg)
		switch vec.DT {
		case types.TypeInt64:
			src.Ints[col] = vec.I
		case types.TypeFloat64:
			src.Floats[col] = vec.F
		case types.TypeString:
			src.Strs[col] = vec.S
		default:
			return fmt.Errorf("fusion: unsupported column type %s", vec.DT)
		}
		if vec.Nulls != nil {
			src.Nulls[col] = vec.Nulls
		} else {
			delete(src.Nulls, col)
		}
	}
	return nil
}
