package fusion

import (
	"fmt"
	"strings"

	"hyrise/internal/expression"
	"hyrise/internal/operators"
	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// ScanAggregate is the fused operator: scan, filter, expression evaluation,
// and aggregation execute as one loop per chunk, with no intermediate
// reference tables — the analog of the paper's fused "single binary that
// represents all logical operators between two pipeline breakers".
type ScanAggregate struct {
	Predicate expression.Expression // nil = no filter
	Aggs      []*expression.Aggregate
	Names     []string
	Types     []types.DataType

	source operators.Operator
}

// Name implements operators.Operator.
func (f *ScanAggregate) Name() string {
	parts := make([]string, len(f.Aggs))
	for i, a := range f.Aggs {
		parts[i] = a.String()
	}
	pred := ""
	if f.Predicate != nil {
		pred = ", " + f.Predicate.String()
	}
	return "FusedScanAggregate(" + strings.Join(parts, ", ") + pred + ")"
}

// Inputs implements operators.Operator.
func (f *ScanAggregate) Inputs() []operators.Operator { return []operators.Operator{f.source} }

type fusedState struct {
	sum   float64
	count int64
	min   float64
	max   float64
	seen  bool
}

// Run implements operators.Operator.
func (f *ScanAggregate) Run(ctx *operators.ExecContext, inputs []*storage.Table) (*storage.Table, error) {
	input := inputs[0]
	states := make([]fusedState, len(f.Aggs))

	var exprs []expression.Expression
	if f.Predicate != nil {
		exprs = append(exprs, f.Predicate)
	}
	for _, a := range f.Aggs {
		if a.Arg != nil {
			exprs = append(exprs, a.Arg)
		}
	}
	colType := func(i int) types.DataType {
		if i < input.ColumnCount() {
			return input.ColumnDefinitions()[i].Type
		}
		return types.TypeNull
	}

	for _, chunk := range input.Chunks() {
		n := chunk.Size()
		if n == 0 {
			continue
		}
		src := NewColumnSource(colType)
		cols := CollectColumns(src, exprs...)
		if err := MaterializeChunk(src, chunk, cols); err != nil {
			return nil, err
		}
		// Compile once per chunk: all dispatch is resolved before the loop.
		var pred Bool
		if f.Predicate != nil {
			compiled, err := CompileBool(f.Predicate, src)
			if err != nil {
				return nil, fmt.Errorf("fusion: %w", err)
			}
			pred = compiled
		}
		args := make([]Numeric, len(f.Aggs))
		for i, a := range f.Aggs {
			if a.Arg == nil {
				continue
			}
			compiled, err := CompileNumeric(a.Arg, src)
			if err != nil {
				return nil, fmt.Errorf("fusion: %w", err)
			}
			args[i] = compiled
		}

		for row := 0; row < n; row++ {
			if pred != nil {
				ok, null := pred(row)
				if null || !ok {
					continue
				}
			}
			for i, a := range f.Aggs {
				st := &states[i]
				if a.Fn == expression.AggCountStar {
					st.count++
					continue
				}
				v, null := args[i](row)
				if null {
					continue
				}
				switch a.Fn {
				case expression.AggCount:
					st.count++
				case expression.AggSum, expression.AggAvg:
					st.sum += v
					st.count++
					st.seen = true
				case expression.AggMin:
					if !st.seen || v < st.min {
						st.min = v
					}
					st.seen = true
				case expression.AggMax:
					if !st.seen || v > st.max {
						st.max = v
					}
					st.seen = true
				}
			}
		}
	}

	defs := make([]storage.ColumnDefinition, len(f.Aggs))
	row := make([]types.Value, len(f.Aggs))
	for i, a := range f.Aggs {
		dt := f.Types[i]
		if dt == types.TypeNull {
			dt = types.TypeFloat64
		}
		defs[i] = storage.ColumnDefinition{Name: f.Names[i], Type: dt, Nullable: true}
		st := states[i]
		switch a.Fn {
		case expression.AggCountStar, expression.AggCount:
			row[i] = coerceTo(types.Int(st.count), dt)
		case expression.AggSum:
			if !st.seen {
				row[i] = types.NullValue
			} else {
				row[i] = coerceTo(types.Float(st.sum), dt)
			}
		case expression.AggAvg:
			if st.count == 0 {
				row[i] = types.NullValue
			} else {
				row[i] = coerceTo(types.Float(st.sum/float64(st.count)), dt)
			}
		case expression.AggMin:
			if !st.seen {
				row[i] = types.NullValue
			} else {
				row[i] = coerceTo(types.Float(st.min), dt)
			}
		case expression.AggMax:
			if !st.seen {
				row[i] = types.NullValue
			} else {
				row[i] = coerceTo(types.Float(st.max), dt)
			}
		}
	}
	out := storage.NewTable("", defs, 1, false)
	if _, err := out.AppendRow(row); err != nil {
		return nil, err
	}
	out.FinalizeLastChunk()
	return out, nil
}

func coerceTo(v types.Value, dt types.DataType) types.Value {
	if v.IsNull() || v.Type == dt {
		return v
	}
	switch dt {
	case types.TypeInt64:
		return types.Int(v.AsInt())
	case types.TypeFloat64:
		return types.Float(v.AsFloat())
	default:
		return v
	}
}

// TryFuse pattern-matches a physical plan and replaces fusible
// scan→aggregate pipelines with the fused operator. It returns the
// (possibly unchanged) root and whether fusion applied. Patterns:
//
//	[Projection] -> Aggregate(no group-by) -> TableScan* -> GetTable
//
// Joins and grouped aggregates keep the traditional engine — the paper's
// JIT likewise falls back for not-yet-JITable operators ("the JIT-aware LQP
// translator automatically falls back to non-JITable implementations").
func TryFuse(root operators.Operator) (operators.Operator, bool) {
	switch op := root.(type) {
	case *operators.Projection:
		child, fused := TryFuse(op.Inputs()[0])
		if !fused {
			return root, false
		}
		return operators.NewProjection(child, op.Exprs, op.Names, op.Types), true
	case *operators.Aggregate:
		if len(op.GroupBy) != 0 {
			return root, false
		}
		for _, a := range op.Aggs {
			if a.Fn == expression.AggCountDistinct {
				return root, false
			}
			if a.Arg != nil && !compilable(a.Arg) {
				return root, false
			}
		}
		pred, source, ok := collapseScans(op.Inputs()[0])
		if !ok {
			return root, false
		}
		if pred != nil && !compilable(pred) {
			return root, false
		}
		return &ScanAggregate{
			Predicate: pred,
			Aggs:      op.Aggs,
			Names:     op.Names,
			Types:     op.Types,
			source:    source,
		}, true
	default:
		return root, false
	}
}

// collapseScans folds a chain of TableScans over a GetTable into one
// conjunctive predicate.
func collapseScans(op operators.Operator) (expression.Expression, operators.Operator, bool) {
	var preds []expression.Expression
	cur := op
	for {
		switch node := cur.(type) {
		case *operators.TableScan:
			preds = append(preds, node.Predicate)
			cur = node.Inputs()[0]
		case *operators.GetTable:
			return expression.JoinConjunction(preds), node, true
		default:
			return nil, nil, false
		}
	}
}

// compilable statically checks whether the fused compiler supports every
// node of the expression.
func compilable(e expression.Expression) bool {
	ok := true
	expression.VisitAll(e, func(x expression.Expression) {
		switch n := x.(type) {
		case *expression.BoundColumn, *expression.Literal, *expression.Arithmetic,
			*expression.Negation, *expression.Comparison, *expression.Logical,
			*expression.Not, *expression.IsNull, *expression.Between, *expression.Case:
		case *expression.In:
			if n.Subquery != nil {
				ok = false
			}
		default:
			ok = false
		}
	})
	return ok
}
