package sqlparser_test

import (
	"testing"

	"hyrise/internal/sqlparser"
	"hyrise/internal/tpch"
)

// FuzzParse feeds arbitrary byte strings to the SQL parser. The contract
// under test: Parse never panics and never loops forever — malformed input
// must surface as an error, not a crash. The corpus is seeded with all 22
// TPC-H queries (the dialect's full surface area) plus statements covering
// DDL, DML, transactions, and tricky lexical shapes.
//
// CI runs a short fuzzing smoke (`-fuzz=FuzzParse -fuzztime=10s`); run it
// longer locally to hunt deeper.
func FuzzParse(f *testing.F) {
	for _, q := range tpch.Queries(0.1) {
		f.Add(q)
	}
	for _, s := range []string{
		"",
		";",
		"SELECT",
		"SELECT * FROM t WHERE a = 'unterminated",
		"SELECT 1e999, -9223372036854775808, .5 FROM t",
		"CREATE TABLE t (a INT NOT NULL, b VARCHAR(20))",
		"INSERT INTO t VALUES (1, 'x'), (2, NULL)",
		"UPDATE t SET a = a + 1 WHERE b LIKE '%x%'",
		"DELETE FROM t WHERE a IN (SELECT a FROM u)",
		"BEGIN; COMMIT; ROLLBACK;",
		"SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 1 ORDER BY a DESC LIMIT 10",
		"SELECT * FROM a JOIN b ON a.x = b.y JOIN c ON b.z = c.w",
		"SELECT CASE WHEN a > 0 THEN 'p' ELSE 'n' END FROM t",
		"SELECT * FROM t WHERE d BETWEEN '1994-01-01' AND '1995-01-01'",
		"PREPARE p AS SELECT * FROM t WHERE a = ?",
		"select(((((((((1)))))))))",
		"SELECT /* comment */ 1 -- trailing",
		"\x00\xff\xfe",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		// Errors are fine; panics and hangs are the bugs we're hunting.
		_, _ = sqlparser.Parse(sql)
	})
}
