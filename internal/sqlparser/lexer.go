// Package sqlparser implements Hyrise's standalone SQL parser (paper §2.6):
// a hand-written lexer and recursive-descent parser that turn a SQL string
// into an abstract syntax tree of plain Go structs, independent of the rest
// of the database. The supported dialect covers the TPC-H workload in the
// paper's modified form (DECIMAL as FLOAT, DATE as CHAR(10)) plus the DDL
// and DML needed to run the system end to end.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOperator // = <> < <= > >= + - * / % ( ) , . ? ;
	tokParam    // $N positional parameter (text is the 1-based number)
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased, identifiers lower-cased
	pos  int
}

// lexer tokenizes a SQL string.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// keywords recognized by the lexer (everything else is an identifier).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "ASC": true, "DESC": true,
	"AS": true, "AND": true, "OR": true, "NOT": true, "IN": true,
	"BETWEEN": true, "LIKE": true, "IS": true, "NULL": true, "EXISTS": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "FULL": true, "OUTER": true,
	"ON": true, "CROSS": true, "DISTINCT": true, "ALL": true, "ANY": true,
	"CREATE": true, "TABLE": true, "VIEW": true, "DROP": true, "INSERT": true,
	"INTO": true, "VALUES": true, "UPDATE": true, "SET": true, "DELETE": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "TRUE": true,
	"FALSE": true, "DATE": true, "SUBSTRING": true, "FOR": true,
	"INT": true, "INTEGER": true, "BIGINT": true, "FLOAT": true,
	"DOUBLE": true, "DECIMAL": true, "VARCHAR": true, "CHAR": true,
	"TEXT": true, "PRIMARY": true, "KEY": true, "UNION": true,
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexWord(start)
		case c >= '0' && c <= '9':
			l.lexNumber(start)
		case c == '\'':
			if err := l.lexString(start); err != nil {
				return nil, err
			}
		case c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			l.lexNumber(start)
		case c == '$':
			if err := l.lexParam(start); err != nil {
				return nil, err
			}
		default:
			if err := l.lexOperator(start); err != nil {
				return nil, err
			}
		}
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func (l *lexer) lexWord(start int) {
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: upper, pos: start})
	} else {
		l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToLower(word), pos: start})
	}
}

func (l *lexer) lexNumber(start int) {
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

// lexParam consumes a PostgreSQL-style positional parameter ($1, $2, ...),
// the placeholder syntax every real Postgres driver emits over the extended
// query protocol. The '?' placeholder remains supported for hand-written SQL.
func (l *lexer) lexParam(start int) error {
	l.pos++ // '$'
	digits := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	if l.pos == digits {
		return fmt.Errorf("sqlparser: '$' must be followed by a parameter number at offset %d", start)
	}
	l.toks = append(l.toks, token{kind: tokParam, text: l.src[digits:l.pos], pos: start})
	return nil
}

func (l *lexer) lexString(start int) error {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlparser: unterminated string literal at offset %d", start)
}

func (l *lexer) lexOperator(start int) error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<>", "<=", ">=", "!=", "||":
		text := two
		if text == "!=" {
			text = "<>"
		}
		l.toks = append(l.toks, token{kind: tokOperator, text: text, pos: start})
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', '.', '?', ';':
		l.toks = append(l.toks, token{kind: tokOperator, text: string(c), pos: start})
		l.pos++
		return nil
	default:
		return fmt.Errorf("sqlparser: unexpected character %q at offset %d", c, l.pos)
	}
}
