package sqlparser

import "strings"

// Fingerprint normalizes a SQL statement for statement statistics
// (pg_stat_statements-style): literals are stripped to '?', whitespace and
// comments collapse, keywords upper-case and identifiers lower-case (the
// lexer's canonical forms), and VALUES lists collapse so multi-row inserts
// of any arity share one fingerprint. Unlexable input falls back to
// whitespace-collapsed text, so every statement — even a syntactically
// broken one — has a stable key.
func Fingerprint(sql string) string {
	toks, err := lex(sql)
	if err != nil {
		return strings.Join(strings.Fields(sql), " ")
	}
	// Render tokens with literals replaced by '?'.
	parts := make([]string, 0, len(toks))
	for _, tok := range toks {
		switch tok.kind {
		case tokEOF:
		case tokNumber, tokString, tokParam:
			parts = append(parts, "?")
		default:
			parts = append(parts, tok.text)
		}
	}
	// Drop a trailing statement terminator; "q" and "q;" are the same query.
	for len(parts) > 0 && parts[len(parts)-1] == ";" {
		parts = parts[:len(parts)-1]
	}
	parts = collapsePlaceholderLists(parts)
	return joinTokens(parts)
}

// collapsePlaceholderLists rewrites "?, ?, ?" runs as a single "?" and then
// "(?), (?)" tuple runs as a single "(?)", so INSERT ... VALUES (1,2),(3,4)
// and VALUES (5,6) fingerprint identically.
func collapsePlaceholderLists(parts []string) []string {
	// Pass 1: ? (, ?)* -> ?
	out := parts[:0]
	for i := 0; i < len(parts); i++ {
		out = append(out, parts[i])
		if parts[i] == "?" {
			for i+2 < len(parts) && parts[i+1] == "," && parts[i+2] == "?" {
				i += 2
			}
		}
	}
	// Pass 2: (?) (, (?))* -> (?)
	parts = out
	out = parts[:0]
	isTuple := func(i int) bool {
		return i+2 < len(parts) && parts[i] == "(" && parts[i+1] == "?" && parts[i+2] == ")"
	}
	for i := 0; i < len(parts); i++ {
		out = append(out, parts[i])
		if isTuple(i) {
			out = append(out, parts[i+1], parts[i+2])
			i += 2
			for i+4 < len(parts) && parts[i+1] == "," && isTuple(i+2) {
				i += 4
			}
		}
	}
	return out
}

// joinTokens renders the token texts with SQL-ish spacing: no space before
// commas, semicolons, closing parens, or dots, and none after opening parens
// or dots.
func joinTokens(parts []string) string {
	var b strings.Builder
	for i, p := range parts {
		if i > 0 {
			prev := parts[i-1]
			switch {
			case p == "," || p == ")" || p == ";" || p == ".":
			case prev == "(" || prev == ".":
			case p == "(" && prev != "" && (prev[0] == '_' || (prev[0] >= 'a' && prev[0] <= 'z')):
				// Function-call style: identifiers are lower-cased by the
				// lexer, keywords upper-cased, so "count(" keeps its paren
				// tight while "IN (" gets a space.
			default:
				b.WriteByte(' ')
			}
		}
		b.WriteString(p)
	}
	return b.String()
}
