package sqlparser

import (
	"hyrise/internal/expression"
	"hyrise/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface {
	statement()
}

// SelectStatement is a full SELECT query.
type SelectStatement struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef // cross-joined; explicit JOINs nest inside TableRef
	Where    expression.Expression
	GroupBy  []expression.Expression
	Having   expression.Expression
	OrderBy  []OrderItem
	Limit    int64 // -1 = none
}

func (*SelectStatement) statement() {}

// SelectItem is one projection of the select list.
type SelectItem struct {
	// Star selects all columns ("*" or "alias.*" via Qualifier).
	Star      bool
	Qualifier string
	Expr      expression.Expression
	Alias     string
}

// TableRef is a relation in the FROM clause: a named table, a derived
// table (subquery), or a join of two refs.
type TableRef struct {
	// Named table.
	Name  string
	Alias string
	// Derived table (subquery in FROM); Alias is mandatory then.
	Subquery *SelectStatement
	// Join node.
	Join *JoinRef
}

// JoinKind enumerates join types.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinCross
	JoinRight
	JoinFull
)

// String names the join kind.
func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "Inner"
	case JoinLeft:
		return "Left"
	case JoinCross:
		return "Cross"
	case JoinRight:
		return "Right"
	case JoinFull:
		return "Full"
	default:
		return "?"
	}
}

// JoinRef is an explicit JOIN ... ON ... between two table refs.
type JoinRef struct {
	Kind        JoinKind
	Left, Right TableRef
	On          expression.Expression // nil for CROSS JOIN
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr expression.Expression
	Desc bool
}

// CreateTableStatement is CREATE TABLE.
type CreateTableStatement struct {
	Name    string
	Columns []ColumnDef
}

func (*CreateTableStatement) statement() {}

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name     string
	Type     types.DataType
	Nullable bool
}

// CreateViewStatement is CREATE VIEW name AS select. The view body is kept
// as its SQL text and re-planned on use (paper §2.6 stores the view's LQP;
// re-planning from text is equivalent for our purposes).
type CreateViewStatement struct {
	Name string
	SQL  string
	Body *SelectStatement
}

func (*CreateViewStatement) statement() {}

// DropStatement is DROP TABLE/VIEW.
type DropStatement struct {
	Name   string
	IsView bool
}

func (*DropStatement) statement() {}

// InsertStatement is INSERT INTO ... VALUES (...), (...).
type InsertStatement struct {
	Table   string
	Columns []string // empty = all, in declaration order
	Rows    [][]expression.Expression
}

func (*InsertStatement) statement() {}

// UpdateStatement is UPDATE ... SET ... [WHERE ...].
type UpdateStatement struct {
	Table string
	Set   []SetClause
	Where expression.Expression
}

func (*UpdateStatement) statement() {}

// SetClause is one col = expr assignment.
type SetClause struct {
	Column string
	Expr   expression.Expression
}

// DeleteStatement is DELETE FROM ... [WHERE ...].
type DeleteStatement struct {
	Table string
	Where expression.Expression
}

func (*DeleteStatement) statement() {}

// TransactionStatement is BEGIN/COMMIT/ROLLBACK.
type TransactionStatement struct {
	Kind TransactionKind
}

func (*TransactionStatement) statement() {}

// TransactionKind enumerates transaction control statements.
type TransactionKind uint8

// Transaction control kinds.
const (
	TxBegin TransactionKind = iota
	TxCommit
	TxRollback
)
