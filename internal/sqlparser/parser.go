package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"hyrise/internal/expression"
	"hyrise/internal/types"
)

// Parse parses a SQL string that may contain several ';'-separated
// statements.
func Parse(sql string) ([]Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: sql}
	var stmts []Statement
	for {
		for p.acceptOp(";") {
		}
		if p.peek().kind == tokEOF {
			break
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.acceptOp(";") && p.peek().kind != tokEOF {
			return nil, p.errorf("expected ';' or end of input")
		}
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("sqlparser: empty statement")
	}
	return stmts, nil
}

// ParseOne parses exactly one statement.
func ParseOne(sql string) (Statement, error) {
	stmts, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sqlparser: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

type parser struct {
	toks       []token
	i          int
	src        string
	subqueryID int
	paramID    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) peek2() token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errorf(format string, args ...any) error {
	t := p.peek()
	ctx := p.src
	if t.pos < len(ctx) {
		end := min(t.pos+20, len(ctx))
		ctx = ctx[t.pos:end]
	}
	return fmt.Errorf("sqlparser: %s (near %q)", fmt.Sprintf(format, args...), ctx)
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s", kw)
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	if t := p.peek(); t.kind == tokOperator && t.text == op {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errorf("expected %q", op)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if t := p.peek(); t.kind == tokIdent {
		p.i++
		return t.text, nil
	}
	return "", p.errorf("expected identifier")
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword && !(t.kind == tokOperator && t.text == "(") {
		return nil, p.errorf("expected statement")
	}
	switch t.text {
	case "SELECT", "(":
		return p.parseSelect()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "BEGIN":
		p.i++
		return &TransactionStatement{Kind: TxBegin}, nil
	case "COMMIT":
		p.i++
		return &TransactionStatement{Kind: TxCommit}, nil
	case "ROLLBACK":
		p.i++
		return &TransactionStatement{Kind: TxRollback}, nil
	default:
		return nil, p.errorf("unsupported statement %s", t.text)
	}
}

// --- SELECT -----------------------------------------------------------------

func (p *parser) parseSelect() (*SelectStatement, error) {
	// Tolerate redundant parentheses around a whole SELECT.
	if p.peek().kind == tokOperator && p.peek().text == "(" {
		p.i++
		s, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return s, nil
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStatement{Limit: -1}
	s.Distinct = p.acceptKeyword("DISTINCT")
	p.acceptKeyword("ALL")

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}

	if p.acceptKeyword("FROM") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, ref)
			if !p.acceptOp(",") {
				break
			}
		}
	}

	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errorf("expected LIMIT count")
		}
		p.i++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad LIMIT %q", t.text)
		}
		s.Limit = n
	}
	return s, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptOp("*") {
		return SelectItem{Star: true}, nil
	}
	// qualifier.* form
	if p.peek().kind == tokIdent && p.peek2().kind == tokOperator && p.peek2().text == "." {
		save := p.i
		qual := p.next().text
		p.next() // '.'
		if p.acceptOp("*") {
			return SelectItem{Star: true, Qualifier: qual}, nil
		}
		p.i = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().kind == tokIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	ref, err := p.parseTablePrimary()
	if err != nil {
		return TableRef{}, err
	}
	for {
		kind, ok := p.acceptJoinKeyword()
		if !ok {
			return ref, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return TableRef{}, err
		}
		join := &JoinRef{Kind: kind, Left: ref, Right: right}
		if kind != JoinCross {
			if err := p.expectKeyword("ON"); err != nil {
				return TableRef{}, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return TableRef{}, err
			}
			join.On = on
		}
		ref = TableRef{Join: join}
	}
}

// acceptJoinKeyword consumes JOIN / INNER JOIN / LEFT [OUTER] JOIN /
// RIGHT [OUTER] JOIN / FULL [OUTER] JOIN / CROSS JOIN.
func (p *parser) acceptJoinKeyword() (JoinKind, bool) {
	switch {
	case p.acceptKeyword("JOIN"):
		return JoinInner, true
	case p.acceptKeyword("INNER"):
		_ = p.expectKeyword("JOIN")
		return JoinInner, true
	case p.acceptKeyword("LEFT"):
		p.acceptKeyword("OUTER")
		_ = p.expectKeyword("JOIN")
		return JoinLeft, true
	case p.acceptKeyword("RIGHT"):
		p.acceptKeyword("OUTER")
		_ = p.expectKeyword("JOIN")
		return JoinRight, true
	case p.acceptKeyword("FULL"):
		p.acceptKeyword("OUTER")
		_ = p.expectKeyword("JOIN")
		return JoinFull, true
	case p.acceptKeyword("CROSS"):
		_ = p.expectKeyword("JOIN")
		return JoinCross, true
	default:
		return JoinInner, false
	}
}

func (p *parser) parseTablePrimary() (TableRef, error) {
	if p.acceptOp("(") {
		// Derived table.
		if p.peek().kind == tokKeyword && p.peek().text == "SELECT" {
			sub, err := p.parseSelect()
			if err != nil {
				return TableRef{}, err
			}
			if err := p.expectOp(")"); err != nil {
				return TableRef{}, err
			}
			ref := TableRef{Subquery: sub}
			p.acceptKeyword("AS")
			alias, err := p.expectIdent()
			if err != nil {
				return TableRef{}, fmt.Errorf("sqlparser: derived table needs an alias: %w", err)
			}
			ref.Alias = alias
			return ref, nil
		}
		// Parenthesized join tree.
		ref, err := p.parseTableRef()
		if err != nil {
			return TableRef{}, err
		}
		if err := p.expectOp(")"); err != nil {
			return TableRef{}, err
		}
		return ref, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.peek().kind == tokIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// --- expressions --------------------------------------------------------------

func (p *parser) parseExpr() (expression.Expression, error) { return p.parseOr() }

func (p *parser) parseOr() (expression.Expression, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &expression.Logical{Op: expression.Or, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (expression.Expression, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &expression.Logical{Op: expression.And, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (expression.Expression, error) {
	if p.acceptKeyword("NOT") {
		child, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expression.Not{Child: child}, nil
	}
	return p.parsePredicate()
}

// parsePredicate parses comparisons and the IS/IN/BETWEEN/LIKE suffixes.
func (p *parser) parsePredicate() (expression.Expression, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		// Comparison operators.
		if op, ok := p.acceptComparisonOp(); ok {
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &expression.Comparison{Op: op, Left: left, Right: right}
			continue
		}
		negate := false
		save := p.i
		if p.acceptKeyword("NOT") {
			negate = true
		}
		switch {
		case p.acceptKeyword("BETWEEN"):
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			var e expression.Expression = &expression.Between{Child: left, Lo: lo, Hi: hi}
			if negate {
				e = &expression.Not{Child: e}
			}
			left = e
		case p.acceptKeyword("LIKE"):
			pattern, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			op := expression.Like
			if negate {
				op = expression.NotLike
			}
			left = &expression.Comparison{Op: op, Left: left, Right: pattern}
		case p.acceptKeyword("IN"):
			in, err := p.parseInSuffix(left, negate)
			if err != nil {
				return nil, err
			}
			left = in
		case !negate && p.acceptKeyword("IS"):
			neg := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			left = &expression.IsNull{Child: left, Negate: neg}
		default:
			if negate {
				p.i = save // NOT belongs to an outer context
			}
			return left, nil
		}
	}
}

func (p *parser) acceptComparisonOp() (expression.ComparisonOp, bool) {
	t := p.peek()
	if t.kind != tokOperator {
		return 0, false
	}
	var op expression.ComparisonOp
	switch t.text {
	case "=":
		op = expression.Eq
	case "<>":
		op = expression.Ne
	case "<":
		op = expression.Lt
	case "<=":
		op = expression.Le
	case ">":
		op = expression.Gt
	case ">=":
		op = expression.Ge
	default:
		return 0, false
	}
	p.i++
	return op, true
}

func (p *parser) parseInSuffix(left expression.Expression, negate bool) (expression.Expression, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	if p.peek().kind == tokKeyword && p.peek().text == "SELECT" {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		p.subqueryID++
		return &expression.In{
			Child:    left,
			Subquery: &expression.Subquery{Plan: sub, ID: p.subqueryID},
			Negate:   negate,
		}, nil
	}
	var list []expression.Expression
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &expression.In{Child: left, List: list, Negate: negate}, nil
}

func (p *parser) parseAdditive() (expression.Expression, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op expression.ArithmeticOp
		switch {
		case p.acceptOp("+"):
			op = expression.Add
		case p.acceptOp("-"):
			op = expression.Sub
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &expression.Arithmetic{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (expression.Expression, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op expression.ArithmeticOp
		switch {
		case p.acceptOp("*"):
			op = expression.Mul
		case p.acceptOp("/"):
			op = expression.Div
		case p.acceptOp("%"):
			op = expression.Mod
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &expression.Arithmetic{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (expression.Expression, error) {
	if p.acceptOp("-") {
		child, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := child.(*expression.Literal); ok {
			switch lit.Value.Type {
			case types.TypeInt64:
				return expression.NewLiteral(types.Int(-lit.Value.I)), nil
			case types.TypeFloat64:
				return expression.NewLiteral(types.Float(-lit.Value.F)), nil
			}
		}
		return &expression.Negation{Child: child}, nil
	}
	p.acceptOp("+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expression.Expression, error) {
	t := p.peek()
	switch t.kind {
	case tokParam:
		p.i++
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 1 {
			return nil, p.errorf("bad parameter number $%s", t.text)
		}
		// $N is 1-based on the wire; Parameter IDs are 0-based slots. Keep
		// the sequential '?' counter past the highest explicit number so the
		// two styles can mix without colliding.
		if n > p.paramID {
			p.paramID = n
		}
		return &expression.Parameter{ID: n - 1}, nil
	case tokNumber:
		p.i++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return expression.NewLiteral(types.Float(f)), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return expression.NewLiteral(types.Int(n)), nil
	case tokString:
		p.i++
		return expression.NewLiteral(types.Str(t.text)), nil
	case tokOperator:
		switch t.text {
		case "?":
			p.i++
			e := &expression.Parameter{ID: p.paramID}
			p.paramID++
			return e, nil
		case "(":
			p.i++
			if p.peek().kind == tokKeyword && p.peek().text == "SELECT" {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				p.subqueryID++
				return &expression.Subquery{Plan: sub, ID: p.subqueryID}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.i++
			return expression.NewLiteral(types.NullValue), nil
		case "TRUE":
			p.i++
			return expression.NewLiteral(types.Bool(true)), nil
		case "FALSE":
			p.i++
			return expression.NewLiteral(types.Bool(false)), nil
		case "DATE":
			// date 'YYYY-MM-DD' is a string in the paper's dialect.
			p.i++
			s := p.peek()
			if s.kind != tokString {
				return nil, p.errorf("expected string after DATE")
			}
			p.i++
			return expression.NewLiteral(types.Str(s.text)), nil
		case "CASE":
			return p.parseCase()
		case "EXISTS":
			p.i++
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			p.subqueryID++
			return &expression.Exists{Subquery: &expression.Subquery{Plan: sub, ID: p.subqueryID}}, nil
		case "SUBSTRING":
			return p.parseSubstring()
		}
	case tokIdent:
		// Function call or column reference.
		if p.peek2().kind == tokOperator && p.peek2().text == "(" {
			return p.parseFunctionCall()
		}
		p.i++
		name := t.text
		if p.acceptOp(".") {
			colTok := p.peek()
			if colTok.kind != tokIdent {
				return nil, p.errorf("expected column name after %q.", name)
			}
			p.i++
			return &expression.ColumnRef{Qualifier: name, Name: colTok.text}, nil
		}
		return &expression.ColumnRef{Name: name}, nil
	}
	return nil, p.errorf("unexpected token")
}

func (p *parser) parseCase() (expression.Expression, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &expression.Case{}
	for p.acceptKeyword("WHEN") {
		when, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, expression.CaseWhen{When: when, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.acceptKeyword("ELSE") {
		els, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = els
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) parseSubstring() (expression.Expression, error) {
	if err := p.expectKeyword("SUBSTRING"); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	str, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	var from, forLen expression.Expression
	if p.acceptKeyword("FROM") {
		if from, err = p.parseExpr(); err != nil {
			return nil, err
		}
		if p.acceptKeyword("FOR") {
			if forLen, err = p.parseExpr(); err != nil {
				return nil, err
			}
		}
	} else if p.acceptOp(",") {
		if from, err = p.parseExpr(); err != nil {
			return nil, err
		}
		if p.acceptOp(",") {
			if forLen, err = p.parseExpr(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if from == nil {
		return nil, p.errorf("SUBSTRING requires a start position")
	}
	if forLen == nil {
		forLen = expression.NewLiteral(types.Int(1 << 30))
	}
	return &expression.FunctionCall{Name: "substring", Args: []expression.Expression{str, from, forLen}}, nil
}

func (p *parser) parseFunctionCall() (expression.Expression, error) {
	name := strings.ToLower(p.next().text)
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	// Aggregates.
	switch name {
	case "count":
		if p.acceptOp("*") {
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &expression.Aggregate{Fn: expression.AggCountStar}, nil
		}
		distinct := p.acceptKeyword("DISTINCT")
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		fn := expression.AggCount
		if distinct {
			fn = expression.AggCountDistinct
		}
		return &expression.Aggregate{Fn: fn, Arg: arg}, nil
	case "sum", "avg", "min", "max":
		p.acceptKeyword("DISTINCT") // SUM(DISTINCT) unsupported, treated as SUM
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		fn := map[string]expression.AggregateFn{
			"sum": expression.AggSum, "avg": expression.AggAvg,
			"min": expression.AggMin, "max": expression.AggMax,
		}[name]
		return &expression.Aggregate{Fn: fn, Arg: arg}, nil
	}
	// Scalar functions.
	var args []expression.Expression
	if !p.acceptOp(")") {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	return &expression.FunctionCall{Name: name, Args: args}, nil
}

// --- DDL / DML ----------------------------------------------------------------

func (p *parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("VIEW") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AS"); err != nil {
			return nil, err
		}
		bodyStart := p.peek().pos
		body, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		bodyEnd := p.peek().pos
		sql := strings.TrimSpace(p.src[bodyStart:min(bodyEnd, len(p.src))])
		return &CreateViewStatement{Name: name, SQL: sql, Body: body}, nil
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	stmt := &CreateTableStatement{Name: name}
	for {
		colName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		dt, err := p.parseColumnType()
		if err != nil {
			return nil, err
		}
		col := ColumnDef{Name: colName, Type: dt, Nullable: true}
		for {
			switch {
			case p.acceptKeyword("NOT"):
				if err := p.expectKeyword("NULL"); err != nil {
					return nil, err
				}
				col.Nullable = false
			case p.acceptKeyword("PRIMARY"):
				if err := p.expectKeyword("KEY"); err != nil {
					return nil, err
				}
				col.Nullable = false
			case p.acceptKeyword("NULL"):
				// explicit NULL
			default:
				goto colDone
			}
		}
	colDone:
		stmt.Columns = append(stmt.Columns, col)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) parseColumnType() (types.DataType, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return 0, p.errorf("expected column type")
	}
	p.i++
	var dt types.DataType
	switch t.text {
	case "INT", "INTEGER", "BIGINT":
		dt = types.TypeInt64
	case "FLOAT", "DOUBLE", "DECIMAL":
		dt = types.TypeFloat64
	case "VARCHAR", "CHAR", "TEXT", "DATE":
		dt = types.TypeString
	default:
		return 0, p.errorf("unsupported column type %s", t.text)
	}
	// Optional (precision[, scale]).
	if p.acceptOp("(") {
		for p.peek().kind == tokNumber || (p.peek().kind == tokOperator && p.peek().text == ",") {
			p.i++
		}
		if err := p.expectOp(")"); err != nil {
			return 0, err
		}
	}
	return dt, nil
}

func (p *parser) parseDrop() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	isView := false
	if p.acceptKeyword("VIEW") {
		isView = true
	} else if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DropStatement{Name: name, IsView: isView}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStatement{Table: table}
	if p.acceptOp("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []expression.Expression
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return stmt, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	stmt := &UpdateStatement{Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, SetClause{Column: col, Expr: e})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStatement{Table: table}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}
