package sqlparser

import (
	"strings"
	"testing"

	"hyrise/internal/expression"
	"hyrise/internal/types"
)

func mustSelect(t *testing.T, sql string) *SelectStatement {
	t.Helper()
	stmt, err := ParseOne(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	sel, ok := stmt.(*SelectStatement)
	if !ok {
		t.Fatalf("parse %q: got %T", sql, stmt)
	}
	return sel
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex("SELECT a, 'it''s' FROM t -- comment\nWHERE x >= 1.5e3 /* block */ AND y <> 2;")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.kind == tokEOF {
			break
		}
		texts = append(texts, tok.text)
	}
	want := []string{"SELECT", "a", ",", "it's", "FROM", "t", "WHERE", "x", ">=", "1.5e3", "AND", "y", "<>", "2", ";"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Errorf("lex = %v, want %v", texts, want)
	}
	if _, err := lex("'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := lex("a # b"); err == nil {
		t.Error("unknown character should fail")
	}
}

func TestParseSimpleSelect(t *testing.T) {
	s := mustSelect(t, "SELECT a, b AS bee, t.c FROM t WHERE a > 5 ORDER BY b DESC LIMIT 10")
	if len(s.Items) != 3 || s.Items[1].Alias != "bee" {
		t.Errorf("items = %+v", s.Items)
	}
	if ref, ok := s.Items[2].Expr.(*expression.ColumnRef); !ok || ref.Qualifier != "t" || ref.Name != "c" {
		t.Errorf("qualified ref = %+v", s.Items[2].Expr)
	}
	if len(s.From) != 1 || s.From[0].Name != "t" {
		t.Errorf("from = %+v", s.From)
	}
	cmp, ok := s.Where.(*expression.Comparison)
	if !ok || cmp.Op != expression.Gt {
		t.Errorf("where = %v", s.Where)
	}
	if len(s.OrderBy) != 1 || !s.OrderBy[0].Desc {
		t.Errorf("order by = %+v", s.OrderBy)
	}
	if s.Limit != 10 {
		t.Errorf("limit = %d", s.Limit)
	}
}

func TestParseStarAndQualifiedStar(t *testing.T) {
	s := mustSelect(t, "SELECT *, t.* FROM t")
	if !s.Items[0].Star || s.Items[0].Qualifier != "" {
		t.Error("bare star wrong")
	}
	if !s.Items[1].Star || s.Items[1].Qualifier != "t" {
		t.Error("qualified star wrong")
	}
}

func TestParseSelectWithoutFrom(t *testing.T) {
	s := mustSelect(t, "SELECT 1 + 2 * 3")
	if len(s.From) != 0 {
		t.Error("FROM should be empty")
	}
	// Precedence: 1 + (2*3).
	add, ok := s.Items[0].Expr.(*expression.Arithmetic)
	if !ok || add.Op != expression.Add {
		t.Fatalf("expr = %v", s.Items[0].Expr)
	}
	if mul, ok := add.Right.(*expression.Arithmetic); !ok || mul.Op != expression.Mul {
		t.Errorf("precedence wrong: %v", s.Items[0].Expr)
	}
}

func TestParsePrecedenceAndOr(t *testing.T) {
	s := mustSelect(t, "SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := s.Where.(*expression.Logical)
	if !ok || or.Op != expression.Or {
		t.Fatalf("top = %v", s.Where)
	}
	if and, ok := or.Right.(*expression.Logical); !ok || and.Op != expression.And {
		t.Errorf("AND should bind tighter: %v", s.Where)
	}
}

func TestParseNotPrecedence(t *testing.T) {
	s := mustSelect(t, "SELECT 1 FROM t WHERE NOT a = 1 AND b = 2")
	and, ok := s.Where.(*expression.Logical)
	if !ok || and.Op != expression.And {
		t.Fatalf("top should be AND, got %v", s.Where)
	}
	if _, ok := and.Left.(*expression.Not); !ok {
		t.Errorf("NOT should bind to the comparison: %v", s.Where)
	}
}

func TestParseBetweenLikeInIsNull(t *testing.T) {
	s := mustSelect(t, `SELECT 1 FROM t WHERE a BETWEEN 1 AND 10
		AND b NOT BETWEEN 2 AND 3
		AND c LIKE 'x%' AND d NOT LIKE '%y'
		AND e IN (1, 2, 3) AND f NOT IN (4)
		AND g IS NULL AND h IS NOT NULL`)
	preds := expression.SplitConjunction(s.Where)
	if len(preds) != 8 {
		t.Fatalf("got %d predicates", len(preds))
	}
	if _, ok := preds[0].(*expression.Between); !ok {
		t.Error("pred 0 should be BETWEEN")
	}
	if n, ok := preds[1].(*expression.Not); !ok {
		t.Error("pred 1 should be NOT(BETWEEN)")
	} else if _, ok := n.Child.(*expression.Between); !ok {
		t.Error("pred 1 child should be BETWEEN")
	}
	if c, ok := preds[2].(*expression.Comparison); !ok || c.Op != expression.Like {
		t.Error("pred 2 should be LIKE")
	}
	if c, ok := preds[3].(*expression.Comparison); !ok || c.Op != expression.NotLike {
		t.Error("pred 3 should be NOT LIKE")
	}
	if in, ok := preds[4].(*expression.In); !ok || in.Negate || len(in.List) != 3 {
		t.Error("pred 4 should be IN list")
	}
	if in, ok := preds[5].(*expression.In); !ok || !in.Negate {
		t.Error("pred 5 should be NOT IN")
	}
	if n, ok := preds[6].(*expression.IsNull); !ok || n.Negate {
		t.Error("pred 6 should be IS NULL")
	}
	if n, ok := preds[7].(*expression.IsNull); !ok || !n.Negate {
		t.Error("pred 7 should be IS NOT NULL")
	}
}

func TestParseJoins(t *testing.T) {
	s := mustSelect(t, `SELECT * FROM a JOIN b ON a.x = b.x LEFT OUTER JOIN c ON b.y = c.y`)
	if len(s.From) != 1 || s.From[0].Join == nil {
		t.Fatalf("from = %+v", s.From)
	}
	outer := s.From[0].Join
	if outer.Kind != JoinLeft {
		t.Errorf("outer join kind = %v", outer.Kind)
	}
	inner := outer.Left.Join
	if inner == nil || inner.Kind != JoinInner || inner.Left.Name != "a" || inner.Right.Name != "b" {
		t.Errorf("inner join = %+v", inner)
	}
	if outer.Right.Name != "c" || outer.On == nil {
		t.Errorf("outer = %+v", outer)
	}
	// Comma joins stay as separate From entries.
	s2 := mustSelect(t, "SELECT * FROM a, b c, d AS e")
	if len(s2.From) != 3 || s2.From[1].Alias != "c" || s2.From[2].Alias != "e" {
		t.Errorf("comma from = %+v", s2.From)
	}
	// CROSS JOIN.
	s3 := mustSelect(t, "SELECT * FROM a CROSS JOIN b")
	if s3.From[0].Join == nil || s3.From[0].Join.Kind != JoinCross || s3.From[0].Join.On != nil {
		t.Errorf("cross join = %+v", s3.From[0].Join)
	}
}

func TestParseDerivedTable(t *testing.T) {
	s := mustSelect(t, "SELECT x FROM (SELECT a AS x FROM t) AS sub WHERE x > 1")
	if s.From[0].Subquery == nil || s.From[0].Alias != "sub" {
		t.Fatalf("derived = %+v", s.From[0])
	}
	if _, err := ParseOne("SELECT x FROM (SELECT a FROM t)"); err == nil {
		t.Error("derived table without alias should fail")
	}
}

func TestParseGroupByHaving(t *testing.T) {
	s := mustSelect(t, `SELECT status, count(*), sum(price * (1 - disc)) AS rev
		FROM orders GROUP BY status HAVING sum(price * (1 - disc)) > 100`)
	if len(s.GroupBy) != 1 {
		t.Fatalf("group by = %v", s.GroupBy)
	}
	if agg, ok := s.Items[1].Expr.(*expression.Aggregate); !ok || agg.Fn != expression.AggCountStar {
		t.Errorf("count(*) = %v", s.Items[1].Expr)
	}
	if agg, ok := s.Items[2].Expr.(*expression.Aggregate); !ok || agg.Fn != expression.AggSum {
		t.Errorf("sum = %v", s.Items[2].Expr)
	}
	if s.Having == nil {
		t.Error("having missing")
	}
}

func TestParseAggregates(t *testing.T) {
	s := mustSelect(t, "SELECT count(distinct a), avg(b), min(c), max(d), count(e) FROM t")
	fns := []expression.AggregateFn{
		expression.AggCountDistinct, expression.AggAvg, expression.AggMin,
		expression.AggMax, expression.AggCount,
	}
	for i, fn := range fns {
		agg, ok := s.Items[i].Expr.(*expression.Aggregate)
		if !ok || agg.Fn != fn {
			t.Errorf("item %d = %v, want %v", i, s.Items[i].Expr, fn)
		}
	}
}

func TestParseCase(t *testing.T) {
	s := mustSelect(t, `SELECT CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'many' END FROM t`)
	c, ok := s.Items[0].Expr.(*expression.Case)
	if !ok || len(c.Whens) != 2 || c.Else == nil {
		t.Fatalf("case = %v", s.Items[0].Expr)
	}
	if _, err := ParseOne("SELECT CASE END FROM t"); err == nil {
		t.Error("empty CASE should fail")
	}
}

func TestParseSubqueries(t *testing.T) {
	s := mustSelect(t, `SELECT a FROM t WHERE a > (SELECT avg(a) FROM t)
		AND b IN (SELECT b FROM u) AND EXISTS (SELECT 1 FROM v WHERE v.x = t.a)
		AND NOT EXISTS (SELECT 1 FROM w)`)
	preds := expression.SplitConjunction(s.Where)
	if len(preds) != 4 {
		t.Fatalf("%d preds", len(preds))
	}
	cmp := preds[0].(*expression.Comparison)
	sub, ok := cmp.Right.(*expression.Subquery)
	if !ok || sub.Plan == nil {
		t.Errorf("scalar subquery = %v", cmp.Right)
	}
	in := preds[1].(*expression.In)
	if in.Subquery == nil {
		t.Error("IN subquery missing")
	}
	if ex, ok := preds[2].(*expression.Exists); !ok || ex.Negate {
		t.Errorf("exists = %v", preds[2])
	}
	// NOT EXISTS parses as Not(Exists) via the NOT prefix.
	if n, ok := preds[3].(*expression.Not); !ok {
		t.Errorf("not exists = %v", preds[3])
	} else if _, ok := n.Child.(*expression.Exists); !ok {
		t.Errorf("not exists child = %v", n.Child)
	}
	// Subquery IDs are distinct.
	if sub.ID == in.Subquery.ID {
		t.Error("subquery IDs should differ")
	}
}

func TestParseDateAndSubstring(t *testing.T) {
	s := mustSelect(t, `SELECT substring(c_phone from 1 for 2), substring(x, 2, 3)
		FROM t WHERE d >= date '1995-01-01'`)
	f0 := s.Items[0].Expr.(*expression.FunctionCall)
	if f0.Name != "substring" || len(f0.Args) != 3 {
		t.Errorf("substring FROM/FOR = %v", f0)
	}
	f1 := s.Items[1].Expr.(*expression.FunctionCall)
	if f1.Name != "substring" || len(f1.Args) != 3 {
		t.Errorf("substring commas = %v", f1)
	}
	cmp := s.Where.(*expression.Comparison)
	lit, ok := cmp.Right.(*expression.Literal)
	if !ok || lit.Value.Type != types.TypeString || lit.Value.S != "1995-01-01" {
		t.Errorf("date literal = %v", cmp.Right)
	}
}

func TestParseParameters(t *testing.T) {
	s := mustSelect(t, "SELECT a FROM t WHERE a = ? AND b = ?")
	preds := expression.SplitConjunction(s.Where)
	p0 := preds[0].(*expression.Comparison).Right.(*expression.Parameter)
	p1 := preds[1].(*expression.Comparison).Right.(*expression.Parameter)
	if p0.ID != 0 || p1.ID != 1 {
		t.Errorf("param ids = %d, %d", p0.ID, p1.ID)
	}
}

func TestParseDollarParameters(t *testing.T) {
	// $N is the placeholder syntax Postgres drivers send; IDs are 0-based
	// slots, repeats share a slot, and out-of-order numbering works.
	s := mustSelect(t, "SELECT a FROM t WHERE a = $2 AND b = $1 AND c = $2")
	preds := expression.SplitConjunction(s.Where)
	ids := make([]int, len(preds))
	for i, p := range preds {
		ids[i] = p.(*expression.Comparison).Right.(*expression.Parameter).ID
	}
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 0 || ids[2] != 1 {
		t.Errorf("param ids = %v, want [1 0 1]", ids)
	}

	// Mixed styles: '?' continues past the highest explicit $N.
	s = mustSelect(t, "SELECT a FROM t WHERE a = $2 AND b = ?")
	preds = expression.SplitConjunction(s.Where)
	if got := preds[1].(*expression.Comparison).Right.(*expression.Parameter).ID; got != 2 {
		t.Errorf("'?' after $2 got ID %d, want 2", got)
	}

	if _, err := Parse("SELECT $ FROM t"); err == nil {
		t.Error("bare '$' should be a lex error")
	}
}

func TestFingerprintDollarParameters(t *testing.T) {
	if got, want := Fingerprint("SELECT a FROM t WHERE a = $1"), Fingerprint("SELECT a FROM t WHERE a = ?"); got != want {
		t.Errorf("fingerprint($1) = %q, want %q", got, want)
	}
}

func TestParseLiteralsAndNegation(t *testing.T) {
	s := mustSelect(t, "SELECT -5, -1.5, 'str', NULL, TRUE, FALSE, -(a)")
	if lit := s.Items[0].Expr.(*expression.Literal); lit.Value.I != -5 {
		t.Error("negative int literal folded wrong")
	}
	if lit := s.Items[1].Expr.(*expression.Literal); lit.Value.F != -1.5 {
		t.Error("negative float literal folded wrong")
	}
	if lit := s.Items[2].Expr.(*expression.Literal); lit.Value.S != "str" {
		t.Error("string literal wrong")
	}
	if lit := s.Items[3].Expr.(*expression.Literal); !lit.Value.IsNull() {
		t.Error("NULL literal wrong")
	}
	if lit := s.Items[4].Expr.(*expression.Literal); !lit.Value.AsBool() {
		t.Error("TRUE literal wrong")
	}
	if _, ok := s.Items[6].Expr.(*expression.Negation); !ok {
		t.Error("column negation should stay a Negation node")
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt, err := ParseOne(`CREATE TABLE nation (
		n_nationkey INTEGER NOT NULL,
		n_name CHAR(25) NOT NULL,
		n_regionkey INTEGER NOT NULL,
		n_comment VARCHAR(152),
		n_weight DECIMAL(15,2))`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStatement)
	if ct.Name != "nation" || len(ct.Columns) != 5 {
		t.Fatalf("create = %+v", ct)
	}
	if ct.Columns[0].Type != types.TypeInt64 || ct.Columns[0].Nullable {
		t.Error("nationkey wrong")
	}
	if ct.Columns[1].Type != types.TypeString {
		t.Error("name wrong")
	}
	if !ct.Columns[3].Nullable {
		t.Error("comment should be nullable")
	}
	if ct.Columns[4].Type != types.TypeFloat64 {
		t.Error("decimal should map to float")
	}
}

func TestParseInsertUpdateDelete(t *testing.T) {
	stmt, err := ParseOne("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStatement)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Errorf("insert = %+v", ins)
	}
	stmt, err = ParseOne("UPDATE t SET a = a + 1, b = 'z' WHERE a < 5")
	if err != nil {
		t.Fatal(err)
	}
	up := stmt.(*UpdateStatement)
	if up.Table != "t" || len(up.Set) != 2 || up.Where == nil {
		t.Errorf("update = %+v", up)
	}
	stmt, err = ParseOne("DELETE FROM t WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	del := stmt.(*DeleteStatement)
	if del.Table != "t" || del.Where == nil {
		t.Errorf("delete = %+v", del)
	}
}

func TestParseViewAndDropAndTx(t *testing.T) {
	stmt, err := ParseOne("CREATE VIEW revenue AS SELECT a FROM t WHERE a > 0")
	if err != nil {
		t.Fatal(err)
	}
	cv := stmt.(*CreateViewStatement)
	if cv.Name != "revenue" || cv.Body == nil || !strings.HasPrefix(cv.SQL, "SELECT") {
		t.Errorf("view = %+v", cv)
	}
	if d := mustParse(t, "DROP TABLE t").(*DropStatement); d.IsView || d.Name != "t" {
		t.Error("drop table wrong")
	}
	if d := mustParse(t, "DROP VIEW v").(*DropStatement); !d.IsView {
		t.Error("drop view wrong")
	}
	if tx := mustParse(t, "BEGIN").(*TransactionStatement); tx.Kind != TxBegin {
		t.Error("begin wrong")
	}
	if tx := mustParse(t, "COMMIT").(*TransactionStatement); tx.Kind != TxCommit {
		t.Error("commit wrong")
	}
	if tx := mustParse(t, "ROLLBACK").(*TransactionStatement); tx.Kind != TxRollback {
		t.Error("rollback wrong")
	}
}

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	stmt, err := ParseOne(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return stmt
}

func TestParseMultipleStatements(t *testing.T) {
	stmts, err := Parse("SELECT 1; SELECT 2;; SELECT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Errorf("got %d statements", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEKT 1",
		"SELECT",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t ORDER",
		"INSERT INTO t",
		"CREATE TABLE t (a BLOB)",
		"SELECT substring(a) FROM t",
		"SELECT 1 2",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("parse %q should fail", sql)
		}
	}
}

// A condensed TPC-H-style query exercising most features at once.
func TestParseTPCHStyleQuery(t *testing.T) {
	sql := `
select
	l_returnflag, l_linestatus,
	sum(l_quantity) as sum_qty,
	sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
	avg(l_discount) as avg_disc,
	count(*) as count_order
from lineitem
where l_shipdate <= '1998-09-02'
group by l_returnflag, l_linestatus
order by l_returnflag, l_linestatus`
	s := mustSelect(t, sql)
	if len(s.Items) != 6 || len(s.GroupBy) != 2 || len(s.OrderBy) != 2 {
		t.Errorf("shape: items=%d groupby=%d orderby=%d", len(s.Items), len(s.GroupBy), len(s.OrderBy))
	}
}

func TestParseCorrelatedTPCH17Style(t *testing.T) {
	sql := `
select sum(l_extendedprice) / 7.0 as avg_yearly
from lineitem, part
where p_partkey = l_partkey and p_brand = 'Brand#23'
	and l_quantity < (
		select 0.2 * avg(l_quantity) from lineitem where l_partkey = p_partkey)`
	s := mustSelect(t, sql)
	preds := expression.SplitConjunction(s.Where)
	if len(preds) != 3 {
		t.Fatalf("%d preds", len(preds))
	}
	cmp := preds[2].(*expression.Comparison)
	if _, ok := cmp.Right.(*expression.Subquery); !ok {
		t.Error("correlated scalar subquery missing")
	}
}
