package sqlparser

import "testing"

func TestFingerprint(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"SELECT a FROM t WHERE a = 3", "SELECT a FROM t WHERE a = ?"},
		{"select A from T where a = 42;", "SELECT a FROM t WHERE a = ?"},
		{"SELECT  a\n FROM t -- comment\n WHERE a = 'x'", "SELECT a FROM t WHERE a = ?"},
		{"SELECT a, b FROM t WHERE s = 'it''s' AND f > 1.5e3", "SELECT a, b FROM t WHERE s = ? AND f > ?"},
		{"INSERT INTO t VALUES (1, 'a'), (2, 'b')", "INSERT INTO t VALUES (?)"},
		{"INSERT INTO t VALUES (3, 'c')", "INSERT INTO t VALUES (?)"},
		{"SELECT x.a FROM x WHERE a IN (1, 2, 3)", "SELECT x.a FROM x WHERE a IN (?)"},
		{"UPDATE t SET a = 1, b = 'q' WHERE id = 9", "UPDATE t SET a = ?, b = ? WHERE id = ?"},
		{"SELECT count(*) FROM t GROUP BY g", "SELECT count(*) FROM t GROUP BY g"},
	}
	for _, c := range cases {
		if got := Fingerprint(c.in); got != c.want {
			t.Errorf("Fingerprint(%q) = %q, want %q", c.in, got, c.want)
		}
	}

	// Same fingerprint for literal variants, different for shape variants.
	a := Fingerprint("SELECT a FROM t WHERE a = 1")
	b := Fingerprint("SELECT a FROM t WHERE a = 200")
	c := Fingerprint("SELECT a FROM t WHERE b = 1")
	if a != b {
		t.Errorf("literal variants differ: %q vs %q", a, b)
	}
	if a == c {
		t.Errorf("distinct shapes collide: %q", a)
	}

	// Unlexable input still yields a stable whitespace-collapsed key.
	if got := Fingerprint("SELECT  \t &bogus"); got != "SELECT &bogus" {
		t.Errorf("fallback fingerprint = %q", got)
	}
	if Fingerprint("SELECT 'unterminated") == "" {
		t.Error("fingerprint of broken SQL must be non-empty")
	}
}
