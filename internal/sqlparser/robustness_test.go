package sqlparser

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics feeds the parser mutated fragments of valid SQL:
// every input must either parse or return an error — never panic. This
// guards the recursive-descent code against unexpected token sequences.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		"SELECT a, b FROM t WHERE a > 1 GROUP BY b HAVING count(*) > 2 ORDER BY a LIMIT 5",
		"SELECT * FROM a JOIN b ON a.x = b.y LEFT JOIN c ON b.z = c.z",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
		"UPDATE t SET a = a + 1 WHERE b IN (SELECT c FROM u)",
		"CREATE TABLE t (a INT NOT NULL, b VARCHAR(10), c DECIMAL(12,2))",
		"SELECT CASE WHEN a THEN 1 ELSE 2 END FROM t WHERE EXISTS (SELECT 1 FROM u)",
		"SELECT substring(a from 1 for 2) FROM t WHERE b BETWEEN 1 AND 2",
	}
	tokens := []string{
		"SELECT", "FROM", "WHERE", "(", ")", ",", "AND", "OR", "NOT", "*",
		"=", "<", ">", "'str'", "1", "2.5", "ident", "GROUP", "BY", "NULL",
		"IN", "EXISTS", "JOIN", "ON", "CASE", "WHEN", "END", "?", ";", ".",
	}
	rng := rand.New(rand.NewSource(2024))

	check := func(sql string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", sql, r)
			}
		}()
		_, _ = Parse(sql)
	}

	for trial := 0; trial < 3000; trial++ {
		base := seeds[rng.Intn(len(seeds))]
		words := strings.Fields(base)
		switch rng.Intn(4) {
		case 0: // delete a random word
			if len(words) > 1 {
				i := rng.Intn(len(words))
				words = append(words[:i], words[i+1:]...)
			}
		case 1: // insert a random token
			i := rng.Intn(len(words) + 1)
			tok := tokens[rng.Intn(len(tokens))]
			words = append(words[:i], append([]string{tok}, words[i:]...)...)
		case 2: // swap two words
			if len(words) > 1 {
				i, j := rng.Intn(len(words)), rng.Intn(len(words))
				words[i], words[j] = words[j], words[i]
			}
		case 3: // truncate
			words = words[:rng.Intn(len(words))+1]
		}
		check(strings.Join(words, " "))
	}
}
