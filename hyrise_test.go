package hyrise

import (
	"reflect"
	"strings"
	"testing"

	"hyrise/internal/benchmark"
	"hyrise/internal/storage"
	"hyrise/internal/types"
)

func TestFacadeEndToEnd(t *testing.T) {
	db := Open(DefaultConfig())
	defer db.Close()

	if _, err := db.Execute("CREATE TABLE f (a INT NOT NULL, b VARCHAR(10) NOT NULL)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute("INSERT INTO f VALUES (1, 'x'), (2, 'y'), (3, 'x')"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT b, count(*) AS n FROM f GROUP BY b ORDER BY b")
	if err != nil {
		t.Fatal(err)
	}
	got := Rows(res)
	want := [][]string{{"x", "2"}, {"y", "1"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rows = %v", got)
	}
	if res.Columns[1] != "n" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestFacadePreparedAndPlans(t *testing.T) {
	db := Open(DefaultConfig())
	defer db.Close()
	if _, err := db.Execute("CREATE TABLE p (v INT NOT NULL)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute("INSERT INTO p VALUES (1), (5), (9)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Prepare("big", "SELECT v FROM p WHERE v > ?"); err != nil {
		t.Fatal(err)
	}
	res, err := db.ExecutePrepared("big", []Value{types.Int(4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(Rows(res)) != 2 {
		t.Errorf("prepared result = %v", Rows(res))
	}
	unopt, opt, pqp, err := db.Plans("SELECT v FROM p WHERE v = 5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(unopt, "StoredTable") || !strings.Contains(opt, "Predicate") || !strings.Contains(pqp, "TableScan") {
		t.Errorf("plans:\n%s\n%s\n%s", unopt, opt, pqp)
	}
}

func TestFacadeSessionsAreIsolated(t *testing.T) {
	db := Open(DefaultConfig())
	defer db.Close()
	if _, err := db.Execute("CREATE TABLE s (v INT NOT NULL)"); err != nil {
		t.Fatal(err)
	}
	writer := db.Session()
	if _, err := writer.ExecuteOne("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.ExecuteOne("INSERT INTO s VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	// The default session does not see the uncommitted row.
	res, err := db.Query("SELECT count(*) FROM s")
	if err != nil {
		t.Fatal(err)
	}
	if Rows(res)[0][0] != "0" {
		t.Errorf("uncommitted row visible: %v", Rows(res))
	}
	if _, err := writer.ExecuteOne("COMMIT"); err != nil {
		t.Fatal(err)
	}
	res, _ = db.Query("SELECT count(*) FROM s")
	if Rows(res)[0][0] != "1" {
		t.Errorf("committed row invisible: %v", Rows(res))
	}
}

func TestFacadeTPCHAndBenchmark(t *testing.T) {
	db := Open(DefaultConfig())
	defer db.Close()
	if err := db.GenerateTPCH(0.001, 1000); err != nil {
		t.Fatal(err)
	}
	queries := TPCHQueries(0.001)
	res, err := db.Query(queries[6])
	if err != nil {
		t.Fatal(err)
	}
	if len(Rows(res)) != 1 {
		t.Errorf("Q6 rows = %v", Rows(res))
	}
	// The benchmark runner works through the facade.
	out := db.RunBenchmark("mini",
		[]benchmark.Item{{Name: "q6", SQL: queries[6]}},
		benchmark.Options{Runs: 2}, nil)
	if len(out.Queries) != 1 || out.Queries[0].Error != "" {
		t.Errorf("benchmark = %+v", out.Queries)
	}
}

func TestFacadeLoadCSV(t *testing.T) {
	db := Open(DefaultConfig())
	defer db.Close()
	defs := []storage.ColumnDefinition{
		{Name: "id", Type: types.TypeInt64},
		{Name: "tag", Type: types.TypeString},
	}
	err := db.LoadCSV("csvt", defs, strings.NewReader("1,a\n2,b\n"), 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT tag FROM csvt WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if Rows(res)[0][0] != "b" {
		t.Errorf("csv row = %v", Rows(res))
	}
}

func TestFacadePlugins(t *testing.T) {
	db := Open(DefaultConfig())
	defer db.Close()
	if _, err := db.Execute("CREATE TABLE pl (v INT NOT NULL)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Plugins().Load("encoding_advisor"); err != nil {
		t.Fatal(err)
	}
	if got := db.Plugins().Loaded(); len(got) != 1 {
		t.Errorf("loaded = %v", got)
	}
	// Close unloads everything without error.
}
