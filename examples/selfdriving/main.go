// Self-driving: the paper's prime plugin use case (§3.2). The example
// loads the encoding advisor and index selection plugins through the plugin
// manager; the advisors inspect table statistics, re-encode segments, and
// build per-chunk indexes — all through public interfaces, without the
// database core knowing about them.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"hyrise"
	"hyrise/internal/plugin"
)

func main() {
	db := hyrise.Open(hyrise.DefaultConfig())
	defer db.Close()

	// A table with very different column shapes, unencoded at first.
	if _, err := db.Execute(`CREATE TABLE telemetry (
		event_id INT NOT NULL,
		device INT NOT NULL,
		status VARCHAR(10) NOT NULL,
		firmware INT NOT NULL,
		reading FLOAT NOT NULL)`); err != nil {
		log.Fatal(err)
	}
	statuses := []string{"ok", "ok", "ok", "warn", "error"}
	var sb strings.Builder
	const rows = 50_000
	const batch = 5_000
	for start := 0; start < rows; start += batch {
		sb.Reset()
		sb.WriteString("INSERT INTO telemetry VALUES ")
		for i := start; i < start+batch; i++ {
			if i > start {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, "(%d, %d, '%s', 7, %d.%02d)",
				i, i%500, statuses[i%len(statuses)], i%100, i%97)
		}
		if _, err := db.Execute(sb.String()); err != nil {
			log.Fatal(err)
		}
	}
	table, err := db.StorageManager().GetTable("telemetry")
	if err != nil {
		log.Fatal(err)
	}
	table.FinalizeLastChunk()

	dataBefore, _ := table.MemoryUsage()
	probe := "SELECT count(*), avg(reading) FROM telemetry WHERE status = 'error' AND device = 42"
	before := timeQuery(db, probe)

	fmt.Println("available plugins:", strings.Join(plugin.Available(), ", "))
	for _, name := range []string{"encoding_advisor", "index_selection"} {
		if err := db.Plugins().Load(name); err != nil {
			log.Fatal(err)
		}
		fmt.Println("loaded plugin:", name)
	}

	// What did the advisors decide?
	if p, ok := db.Plugins().Get("encoding_advisor"); ok {
		advisor := p.(*plugin.EncodingAdvisorPlugin)
		fmt.Println("\nencoding choices:")
		for col, enc := range advisor.Applied() {
			fmt.Printf("  %-22s -> %s\n", col, enc)
		}
	}
	if p, ok := db.Plugins().Get("index_selection"); ok {
		selector := p.(*plugin.IndexSelectionPlugin)
		fmt.Println("\nindexes created:")
		for _, idx := range selector.Created() {
			fmt.Printf("  %s\n", idx)
		}
	}

	dataAfter, meta := table.MemoryUsage()
	after := timeQuery(db, probe)

	fmt.Printf("\ndata footprint: %.2f MiB -> %.2f MiB (metadata incl. indexes: %.2f MiB)\n",
		float64(dataBefore)/(1<<20), float64(dataAfter)/(1<<20), float64(meta)/(1<<20))
	fmt.Printf("probe query:    %v -> %v\n", before.Round(time.Microsecond), after.Round(time.Microsecond))

	// The plugins can be unloaded at runtime; the data they produced stays.
	for _, name := range db.Plugins().Loaded() {
		if err := db.Plugins().Unload(name); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("plugins unloaded; database keeps running:")
	res, err := db.Query("SELECT status, count(*) FROM telemetry GROUP BY status ORDER BY status")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range hyrise.Rows(res) {
		fmt.Println("  ", strings.Join(row, " | "))
	}
}

func timeQuery(db *hyrise.Database, sql string) time.Duration {
	best := time.Duration(1 << 62)
	for i := 0; i < 5; i++ {
		start := time.Now()
		if _, err := db.Query(sql); err != nil {
			log.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}
