// HTAP: concurrent OLTP writers and OLAP readers on the same tables — the
// hybrid workload Hyrise targets (paper §2.2/§2.8). Writers transfer money
// between accounts in explicit MVCC transactions while readers run
// aggregations; snapshot isolation keeps every reader's view consistent
// (the total balance never changes mid-read) and write-write conflicts
// abort cleanly.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hyrise"
)

const (
	accounts       = 200
	initialBalance = 1000
	writers        = 4
	readers        = 2
	runFor         = 2 * time.Second
)

func main() {
	db := hyrise.Open(hyrise.DefaultConfig())
	defer db.Close()

	if _, err := db.Execute(`CREATE TABLE accounts (id INT NOT NULL, balance FLOAT NOT NULL)`); err != nil {
		log.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO accounts VALUES ")
	for i := 0; i < accounts; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d.0)", i, initialBalance)
	}
	if _, err := db.Execute(sb.String()); err != nil {
		log.Fatal(err)
	}

	var committed, aborted, reads, violations atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// OLTP writers: random transfers in explicit transactions.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			session := db.Session()
			for {
				select {
				case <-stop:
					return
				default:
				}
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amount := 1 + rng.Intn(50)
				_, err := session.ExecuteOne("BEGIN")
				if err != nil {
					continue
				}
				_, err1 := session.ExecuteOne(fmt.Sprintf(
					"UPDATE accounts SET balance = balance - %d.0 WHERE id = %d", amount, from))
				var err2 error
				if err1 == nil {
					_, err2 = session.ExecuteOne(fmt.Sprintf(
						"UPDATE accounts SET balance = balance + %d.0 WHERE id = %d", amount, to))
				}
				if err1 != nil || err2 != nil {
					// Write-write conflict: the session already rolled back.
					aborted.Add(1)
					continue
				}
				if _, err := session.ExecuteOne("COMMIT"); err != nil {
					aborted.Add(1)
					continue
				}
				committed.Add(1)
			}
		}(int64(w) + 1)
	}

	// OLAP readers: the snapshot invariant — the sum of all balances must
	// always be exactly accounts * initialBalance, no matter how many
	// transfers are in flight.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			session := db.Session()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := session.ExecuteOne("SELECT sum(balance), count(*) FROM accounts")
				if err != nil {
					log.Fatal(err)
				}
				row := hyrise.Rows(res)[0]
				reads.Add(1)
				if row[0] != fmt.Sprint(accounts*initialBalance) || row[1] != fmt.Sprint(accounts) {
					violations.Add(1)
					fmt.Printf("!! snapshot violation: sum=%s count=%s\n", row[0], row[1])
				}
			}
		}()
	}

	time.Sleep(runFor)
	close(stop)
	wg.Wait()

	fmt.Printf("ran %d writers and %d readers for %v\n", writers, readers, runFor)
	fmt.Printf("  committed transfers: %d\n", committed.Load())
	fmt.Printf("  aborted (write-write conflicts): %d\n", aborted.Load())
	fmt.Printf("  analytical reads: %d\n", reads.Load())
	fmt.Printf("  snapshot violations: %d\n", violations.Load())

	res, err := db.Query("SELECT sum(balance), min(balance), max(balance) FROM accounts")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final state: sum/min/max = %s\n", strings.Join(hyrise.Rows(res)[0], " / "))
	if violations.Load() == 0 {
		fmt.Println("OK: snapshot isolation held under concurrency")
	}
}
