// Quickstart: create a table, insert rows, and query it through the public
// API — the smallest end-to-end use of the engine.
package main

import (
	"fmt"
	"log"
	"strings"

	"hyrise"
)

func main() {
	db := hyrise.Open(hyrise.DefaultConfig())
	defer db.Close()

	mustExec(db, `CREATE TABLE cities (
		name VARCHAR(32) NOT NULL,
		country VARCHAR(32) NOT NULL,
		population INT NOT NULL,
		area FLOAT NOT NULL)`)

	mustExec(db, `INSERT INTO cities VALUES
		('Berlin',   'Germany', 3664088, 891.7),
		('Hamburg',  'Germany', 1852478, 755.2),
		('Munich',   'Germany', 1488202, 310.7),
		('Potsdam',  'Germany',  182112, 188.6),
		('Vienna',   'Austria', 1920949, 414.8),
		('Graz',     'Austria',  291134, 127.6),
		('Zurich',   'Switzerland', 421878, 87.9)`)

	fmt.Println("== all cities above one million inhabitants, densest first")
	res, err := db.Query(`
		SELECT name, country, population / area AS density
		FROM cities
		WHERE population > 1000000
		ORDER BY density DESC`)
	if err != nil {
		log.Fatal(err)
	}
	printResult(res)

	fmt.Println("\n== population per country")
	res, err = db.Query(`
		SELECT country, count(*) AS cities, sum(population) AS total
		FROM cities
		GROUP BY country
		ORDER BY total DESC`)
	if err != nil {
		log.Fatal(err)
	}
	printResult(res)

	fmt.Println("\n== updates run as MVCC transactions")
	mustExec(db, `UPDATE cities SET population = population + 1000 WHERE name = 'Potsdam'`)
	res, err = db.Query(`SELECT population FROM cities WHERE name = 'Potsdam'`)
	if err != nil {
		log.Fatal(err)
	}
	printResult(res)

	fmt.Println("\n== every intermediary plan can be inspected (paper §2.6)")
	unopt, opt, pqp, err := db.Plans(`SELECT name FROM cities WHERE country = 'Austria' AND population > 400000`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("unoptimized LQP:")
	fmt.Print(indent(unopt))
	fmt.Println("optimized LQP:")
	fmt.Print(indent(opt))
	fmt.Println("physical plan:")
	fmt.Print(indent(pqp))
}

func mustExec(db *hyrise.Database, sql string) {
	if _, err := db.Execute(sql); err != nil {
		log.Fatal(err)
	}
}

func printResult(res *hyrise.Result) {
	fmt.Println(strings.Join(res.Columns, " | "))
	for _, row := range hyrise.Rows(res) {
		fmt.Println(strings.Join(row, " | "))
	}
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ") + "\n"
}
