// Analytics: the workload the paper's evaluation is built around — TPC-H
// queries over generated data, with chunk pruning, encodings, and the plan
// cache at work. Run with a scale factor argument, e.g.:
//
//	go run ./examples/analytics 0.01
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"hyrise"
)

func main() {
	sf := 0.01
	if len(os.Args) > 1 {
		parsed, err := strconv.ParseFloat(os.Args[1], 64)
		if err != nil {
			log.Fatalf("bad scale factor %q", os.Args[1])
		}
		sf = parsed
	}

	db := hyrise.Open(hyrise.DefaultConfig())
	defer db.Close()

	// ClusterDates generates orders in ingestion order, the regime where
	// min-max filters can prune date predicates (see DESIGN.md S7).
	fmt.Printf("generating TPC-H at scale factor %g (dictionary encoding, pruning filters)...\n", sf)
	start := time.Now()
	if err := db.GenerateTPCHOpts(hyrise.TPCHConfig{
		ScaleFactor: sf, ChunkSize: 10_000, ClusterDates: true,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded in %v\n\n", time.Since(start).Round(time.Millisecond))

	// The pricing summary report (TPC-H Q1): the classic scan-heavy
	// aggregation the paper benchmarks.
	queries := hyrise.TPCHQueries(sf)
	fmt.Println("== TPC-H Q1: pricing summary report")
	runTimed(db, queries[1])

	// Chunk pruning at work: a date-selective scan reads only the chunks
	// whose min-max filters overlap the predicate (paper §2.4).
	fmt.Println("== chunk pruning: shipments of a single week")
	sql := `SELECT count(*), sum(l_extendedprice) FROM lineitem
		WHERE l_shipdate BETWEEN '1994-03-01' AND '1994-03-07'`
	runTimed(db, sql)
	_, optimized, _, err := db.Plans(sql)
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(optimized, "\n") {
		if strings.Contains(line, "pruned") {
			fmt.Println("   plan:", strings.TrimSpace(line))
		}
	}
	fmt.Println()

	// The plan cache: the second execution of the same text skips parsing,
	// translation, and optimization (paper §2.6).
	fmt.Println("== plan cache effect on repeated queries")
	for i := 0; i < 2; i++ {
		res, err := db.Query(queries[6])
		if err != nil {
			log.Fatal(err)
		}
		t := res.Timing
		fmt.Printf("   run %d: planning %v, execution %v (cache hit: %v)\n",
			i+1, (t.Parse + t.Translate + t.Optimize + t.ToPQP).Round(time.Microsecond),
			t.Execute.Round(time.Microsecond), t.CacheHit)
	}
	fmt.Println()

	// A complex join query end to end.
	fmt.Println("== TPC-H Q5: local supplier volume (6-way join)")
	runTimed(db, queries[5])
}

func runTimed(db *hyrise.Database, sql string) {
	start := time.Now()
	res, err := db.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	rows := hyrise.Rows(res)
	fmt.Printf("   %d rows in %v\n", len(rows), time.Since(start).Round(time.Microsecond))
	for i, row := range rows {
		if i >= 5 {
			fmt.Printf("   ... (%d more)\n", len(rows)-5)
			break
		}
		fmt.Println("  ", strings.Join(row, " | "))
	}
	fmt.Println()
}
