// Command benchdiff turns `go test -bench` output into a stable JSON
// snapshot and compares two snapshots with a regression threshold. It is the
// engine of the CI benchmark gate:
//
//	go test ./internal/benchmark -bench '^BenchmarkMicro' -benchtime=1x -count=5 | \
//	    benchdiff parse -out BENCH_PR.json
//	benchdiff compare -baseline BENCH_BASELINE.json -current BENCH_PR.json -threshold 25
//	benchdiff speedup -current BENCH_PR.json -require BenchmarkMicroSort=1.3
//
// parse keeps the MINIMUM ns/op across repeated runs of the same benchmark
// (-count=N): the minimum is the least noisy estimator of the true cost on
// shared CI hardware. compare exits non-zero when any benchmark present in
// both snapshots regressed by more than the threshold percentage; benchmarks
// only present in the current run are registered, not gated (they gate once
// the baseline is refreshed). speedup reads a single snapshot, pairs every
// X/serial sub-benchmark with its X/parallel (or X/radix) sibling, and exits
// non-zero when a -require'd pair is missing or below its minimum serial ÷
// parallel ratio — the multi-core CI lane's proof that parallel paths
// actually beat serial ones.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"hyrise/internal/observe"
)

// Result is one benchmark's snapshot entry.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	Runs        int     `json:"runs"`
}

// Snapshot is the JSON document benchdiff reads and writes.
type Snapshot struct {
	GoVersion  string            `json:"go_version,omitempty"`
	GOOS       string            `json:"goos,omitempty"`
	GOARCH     string            `json:"goarch,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		cmdParse(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	case "speedup":
		cmdSpeedup(os.Args[2:])
	case "promlint":
		cmdPromlint()
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  benchdiff parse [-out file.json] < go-test-bench-output
  benchdiff compare -baseline base.json -current cur.json [-threshold pct]
  benchdiff speedup -current cur.json [-min ratio] [-require Name=ratio]...
  benchdiff promlint < openmetrics-exposition
`)
	os.Exit(2)
}

// cmdPromlint validates an OpenMetrics text exposition read from stdin —
// the CI smoke test pipes a live /metrics scrape through it.
func cmdPromlint() {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint: read stdin:", err)
		os.Exit(1)
	}
	if len(data) == 0 {
		fmt.Fprintln(os.Stderr, "promlint: empty exposition")
		os.Exit(1)
	}
	if err := observe.LintOpenMetrics(string(data)); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
	fmt.Printf("promlint: ok (%d bytes)\n", len(data))
}

// benchLine matches e.g.
//
//	BenchmarkMicroJoin/radix-8   3   12345678 ns/op   4096 B/op   12 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func cmdParse(args []string) {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	out := fs.String("out", "", "output JSON file (default stdout)")
	_ = fs.Parse(args)

	snap, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchdiff: parsed %d benchmarks\n", len(snap.Benchmarks))
}

func parseBench(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: map[string]Result{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		res := Result{NsPerOp: ns, Runs: 1}
		if m[4] != "" {
			res.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			res.AllocsPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		// -count=N repeats lines: keep the minimum as the noise-robust
		// estimate, and count the runs.
		if prev, ok := snap.Benchmarks[name]; ok {
			res.Runs = prev.Runs + 1
			if prev.NsPerOp < res.NsPerOp {
				res.NsPerOp = prev.NsPerOp
			}
			if prev.AllocsPerOp != 0 && (res.AllocsPerOp == 0 || prev.AllocsPerOp < res.AllocsPerOp) {
				res.AllocsPerOp = prev.AllocsPerOp
			}
			if prev.BytesPerOp != 0 && (res.BytesPerOp == 0 || prev.BytesPerOp < res.BytesPerOp) {
				res.BytesPerOp = prev.BytesPerOp
			}
		}
		snap.Benchmarks[name] = res
	}
	return snap, sc.Err()
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	basePath := fs.String("baseline", "", "baseline snapshot JSON")
	curPath := fs.String("current", "", "current snapshot JSON")
	threshold := fs.Float64("threshold", 25, "max allowed ns/op regression in percent")
	_ = fs.Parse(args)
	if *basePath == "" || *curPath == "" {
		usage()
	}

	base, err := loadSnapshot(*basePath)
	if err != nil {
		fatal(err)
	}
	cur, err := loadSnapshot(*curPath)
	if err != nil {
		fatal(err)
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := 0
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Printf("MISSING  %-45s (in baseline, not in current run)\n", name)
			continue
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		status := "ok"
		if delta > *threshold {
			status = "REGRESSED"
			failed++
		}
		fmt.Printf("%-9s %-45s %12.0f -> %12.0f ns/op  (%+.1f%%)\n", status, name, b.NsPerOp, c.NsPerOp, delta)
	}
	var newNames []string
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			newNames = append(newNames, name)
		}
	}
	sort.Strings(newNames)
	for _, name := range newNames {
		// A benchmark missing from the baseline is registered, not gated: it
		// starts gating regressions once the baseline is refreshed, and its
		// absence never fails the build.
		fmt.Printf("NEW      %-45s %12.0f ns/op (registered, not gated — refresh baseline to gate)\n", name, cur.Benchmarks[name].NsPerOp)
	}

	if failed > 0 {
		fmt.Printf("\nbenchdiff: %d benchmark(s) regressed more than %.0f%% vs baseline\n", failed, *threshold)
		os.Exit(1)
	}
	fmt.Printf("\nbenchdiff: no regression beyond %.0f%%\n", *threshold)
}

// requirement is one -require Name=ratio gate for the speedup subcommand.
type requirement struct {
	Name string
	Min  float64
}

// requireFlags collects repeatable -require flags.
type requireFlags []requirement

func (r *requireFlags) String() string {
	parts := make([]string, len(*r))
	for i, req := range *r {
		parts[i] = fmt.Sprintf("%s=%g", req.Name, req.Min)
	}
	return strings.Join(parts, ",")
}

func (r *requireFlags) Set(s string) error {
	name, ratio, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want Name=ratio, got %q", s)
	}
	min, err := strconv.ParseFloat(ratio, 64)
	if err != nil || min <= 0 {
		return fmt.Errorf("bad ratio in %q", s)
	}
	*r = append(*r, requirement{Name: name, Min: min})
	return nil
}

func cmdSpeedup(args []string) {
	fs := flag.NewFlagSet("speedup", flag.ExitOnError)
	curPath := fs.String("current", "", "snapshot JSON containing */serial and */parallel (or */radix) sub-benchmarks")
	minAll := fs.Float64("min", 0, "minimum speedup for every detected pair (0 = report only)")
	var reqs requireFlags
	fs.Var(&reqs, "require", "Name=ratio minimum speedup for one benchmark (repeatable)")
	_ = fs.Parse(args)
	if *curPath == "" {
		usage()
	}
	cur, err := loadSnapshot(*curPath)
	if err != nil {
		fatal(err)
	}
	if failed := runSpeedup(cur, *minAll, reqs, os.Stdout); failed > 0 {
		fmt.Printf("\nbenchdiff: %d speedup gate(s) failed\n", failed)
		os.Exit(1)
	}
	fmt.Printf("\nbenchdiff: all speedup gates passed\n")
}

// speedupPair is a detected serial/parallel sibling pair.
type speedupPair struct {
	serialNS   float64
	parallelNS float64
	variant    string // the sub-benchmark name paired against serial
}

// speedupVariants are the sub-benchmark names accepted as the parallel side
// of a pair, in preference order.
var speedupVariants = []string{"parallel", "radix"}

// detectSpeedupPairs pairs every X/serial entry with its X/parallel (or
// X/radix) sibling, keyed by the parent benchmark name X.
func detectSpeedupPairs(snap *Snapshot) map[string]speedupPair {
	pairs := map[string]speedupPair{}
	for name, res := range snap.Benchmarks {
		parent, ok := strings.CutSuffix(name, "/serial")
		if !ok {
			continue
		}
		for _, v := range speedupVariants {
			if sib, ok := snap.Benchmarks[parent+"/"+v]; ok {
				pairs[parent] = speedupPair{serialNS: res.NsPerOp, parallelNS: sib.NsPerOp, variant: v}
				break
			}
		}
	}
	return pairs
}

// runSpeedup reports the serial ÷ parallel ratio of every detected pair and
// returns how many gates failed: a pair below its required minimum, or a
// -require'd benchmark with no pair in the snapshot (a gate that cannot run
// must fail loudly — otherwise a renamed benchmark silently stops gating).
// Detected pairs without a specific requirement are gated by minAll (0 =
// report only).
func runSpeedup(snap *Snapshot, minAll float64, reqs []requirement, w io.Writer) int {
	pairs := detectSpeedupPairs(snap)
	required := make(map[string]float64, len(reqs))
	for _, r := range reqs {
		required[r.Name] = r.Min
	}

	names := make([]string, 0, len(pairs))
	for name := range pairs {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := 0
	for _, name := range names {
		p := pairs[name]
		min := minAll
		if m, ok := required[name]; ok {
			min = m
			delete(required, name)
		}
		ratio := 0.0
		if p.parallelNS > 0 {
			ratio = p.serialNS / p.parallelNS
		}
		status := "ok"
		switch {
		case min <= 0:
			status = "report"
		case ratio < min:
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(w, "%-7s %-45s serial %12.0f ns/op / %s %12.0f ns/op = %.2fx (min %.2fx)\n",
			status, name, p.serialNS, p.variant, p.parallelNS, ratio, min)
	}

	missing := make([]string, 0, len(required))
	for name := range required {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(w, "FAIL    %-45s required pair not found (need %s/serial plus %s/parallel or %s/radix)\n",
			name, name, name, name)
		failed++
	}
	return failed
}

func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Benchmarks == nil {
		return nil, fmt.Errorf("%s: no benchmarks key", path)
	}
	return &s, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(1)
}
