// Command benchdiff turns `go test -bench` output into a stable JSON
// snapshot and compares two snapshots with a regression threshold. It is the
// engine of the CI benchmark gate:
//
//	go test ./internal/benchmark -bench '^BenchmarkMicro' -benchtime=1x -count=5 | \
//	    benchdiff parse -out BENCH_PR.json
//	benchdiff compare -baseline BENCH_BASELINE.json -current BENCH_PR.json -threshold 25
//
// parse keeps the MINIMUM ns/op across repeated runs of the same benchmark
// (-count=N): the minimum is the least noisy estimator of the true cost on
// shared CI hardware. compare exits non-zero when any benchmark present in
// both snapshots regressed by more than the threshold percentage.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"hyrise/internal/observe"
)

// Result is one benchmark's snapshot entry.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	Runs        int     `json:"runs"`
}

// Snapshot is the JSON document benchdiff reads and writes.
type Snapshot struct {
	GoVersion  string            `json:"go_version,omitempty"`
	GOOS       string            `json:"goos,omitempty"`
	GOARCH     string            `json:"goarch,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		cmdParse(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	case "promlint":
		cmdPromlint()
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  benchdiff parse [-out file.json] < go-test-bench-output
  benchdiff compare -baseline base.json -current cur.json [-threshold pct]
  benchdiff promlint < openmetrics-exposition
`)
	os.Exit(2)
}

// cmdPromlint validates an OpenMetrics text exposition read from stdin —
// the CI smoke test pipes a live /metrics scrape through it.
func cmdPromlint() {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint: read stdin:", err)
		os.Exit(1)
	}
	if len(data) == 0 {
		fmt.Fprintln(os.Stderr, "promlint: empty exposition")
		os.Exit(1)
	}
	if err := observe.LintOpenMetrics(string(data)); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
	fmt.Printf("promlint: ok (%d bytes)\n", len(data))
}

// benchLine matches e.g.
//
//	BenchmarkMicroJoin/radix-8   3   12345678 ns/op   4096 B/op   12 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func cmdParse(args []string) {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	out := fs.String("out", "", "output JSON file (default stdout)")
	_ = fs.Parse(args)

	snap, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchdiff: parsed %d benchmarks\n", len(snap.Benchmarks))
}

func parseBench(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: map[string]Result{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		res := Result{NsPerOp: ns, Runs: 1}
		if m[4] != "" {
			res.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			res.AllocsPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		// -count=N repeats lines: keep the minimum as the noise-robust
		// estimate, and count the runs.
		if prev, ok := snap.Benchmarks[name]; ok {
			res.Runs = prev.Runs + 1
			if prev.NsPerOp < res.NsPerOp {
				res.NsPerOp = prev.NsPerOp
			}
			if prev.AllocsPerOp != 0 && (res.AllocsPerOp == 0 || prev.AllocsPerOp < res.AllocsPerOp) {
				res.AllocsPerOp = prev.AllocsPerOp
			}
			if prev.BytesPerOp != 0 && (res.BytesPerOp == 0 || prev.BytesPerOp < res.BytesPerOp) {
				res.BytesPerOp = prev.BytesPerOp
			}
		}
		snap.Benchmarks[name] = res
	}
	return snap, sc.Err()
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	basePath := fs.String("baseline", "", "baseline snapshot JSON")
	curPath := fs.String("current", "", "current snapshot JSON")
	threshold := fs.Float64("threshold", 25, "max allowed ns/op regression in percent")
	_ = fs.Parse(args)
	if *basePath == "" || *curPath == "" {
		usage()
	}

	base, err := loadSnapshot(*basePath)
	if err != nil {
		fatal(err)
	}
	cur, err := loadSnapshot(*curPath)
	if err != nil {
		fatal(err)
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := 0
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Printf("MISSING  %-45s (in baseline, not in current run)\n", name)
			continue
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		status := "ok"
		if delta > *threshold {
			status = "REGRESSED"
			failed++
		}
		fmt.Printf("%-9s %-45s %12.0f -> %12.0f ns/op  (%+.1f%%)\n", status, name, b.NsPerOp, c.NsPerOp, delta)
	}
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("NEW      %-45s %12.0f ns/op (not in baseline)\n", name, cur.Benchmarks[name].NsPerOp)
		}
	}

	if failed > 0 {
		fmt.Printf("\nbenchdiff: %d benchmark(s) regressed more than %.0f%% vs baseline\n", failed, *threshold)
		os.Exit(1)
	}
	fmt.Printf("\nbenchdiff: no regression beyond %.0f%%\n", *threshold)
}

func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Benchmarks == nil {
		return nil, fmt.Errorf("%s: no benchmarks key", path)
	}
	return &s, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(1)
}
