package main

import (
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: hyrise/internal/benchmark
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMicroJoin/serial-8         	       1	 177213572 ns/op	 1024 B/op	      12 allocs/op
BenchmarkMicroJoin/serial-8         	       1	 160000000 ns/op	 1024 B/op	      11 allocs/op
BenchmarkMicroJoin/radix-8          	       1	 158546540 ns/op
BenchmarkMicroAggregate/serial-8    	       2	 130107697 ns/op
PASS
ok  	hyrise/internal/benchmark	1.777s
`

func TestParseBenchKeepsMinimum(t *testing.T) {
	snap, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(snap.Benchmarks))
	}
	serial := snap.Benchmarks["BenchmarkMicroJoin/serial"]
	if serial.NsPerOp != 160000000 {
		t.Errorf("min ns/op = %v, want 160000000", serial.NsPerOp)
	}
	if serial.Runs != 2 {
		t.Errorf("runs = %d, want 2", serial.Runs)
	}
	if serial.AllocsPerOp != 11 {
		t.Errorf("min allocs/op = %v, want 11", serial.AllocsPerOp)
	}
	radix := snap.Benchmarks["BenchmarkMicroJoin/radix"]
	if radix.NsPerOp != 158546540 || radix.Runs != 1 {
		t.Errorf("radix = %+v", radix)
	}
}

func TestParseBenchStripsGOMAXPROCSSuffix(t *testing.T) {
	snap, err := parseBench(strings.NewReader("BenchmarkX-16   10   500 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Benchmarks["BenchmarkX"]; !ok {
		t.Fatalf("suffix not stripped: %v", snap.Benchmarks)
	}
}

func speedupSnap(ns map[string]float64) *Snapshot {
	s := &Snapshot{Benchmarks: map[string]Result{}}
	for name, v := range ns {
		s.Benchmarks[name] = Result{NsPerOp: v, Runs: 1}
	}
	return s
}

func TestSpeedupPairDetection(t *testing.T) {
	snap := speedupSnap(map[string]float64{
		"BenchmarkMicroSort/serial":      300,
		"BenchmarkMicroSort/parallel":    100,
		"BenchmarkMicroJoin/serial":      200,
		"BenchmarkMicroJoin/radix":       100, // radix is the parallel sibling
		"BenchmarkMicroScanDict/encoded": 50,  // no serial sibling: not a pair
	})
	pairs := detectSpeedupPairs(snap)
	if len(pairs) != 2 {
		t.Fatalf("detected %d pairs, want 2: %v", len(pairs), pairs)
	}
	if p := pairs["BenchmarkMicroSort"]; p.variant != "parallel" || p.serialNS != 300 || p.parallelNS != 100 {
		t.Errorf("sort pair = %+v", p)
	}
	if p := pairs["BenchmarkMicroJoin"]; p.variant != "radix" {
		t.Errorf("join pair should fall back to radix, got %+v", p)
	}
}

func TestSpeedupGates(t *testing.T) {
	snap := speedupSnap(map[string]float64{
		"BenchmarkMicroSort/serial":   300,
		"BenchmarkMicroSort/parallel": 100, // 3.0x
		"BenchmarkMicroScan/serial":   110,
		"BenchmarkMicroScan/parallel": 100, // 1.1x
	})
	var out strings.Builder

	// Passing gate.
	if failed := runSpeedup(snap, 0, []requirement{{Name: "BenchmarkMicroSort", Min: 1.3}}, &out); failed != 0 {
		t.Fatalf("3.0x speedup failed a 1.3x gate: %d\n%s", failed, out.String())
	}
	// Failing gate: 1.1x < 1.3x.
	if failed := runSpeedup(snap, 0, []requirement{{Name: "BenchmarkMicroScan", Min: 1.3}}, &out); failed != 1 {
		t.Fatalf("1.1x speedup passed a 1.3x gate: %d", failed)
	}
	// A required pair missing from the snapshot must fail loudly — a renamed
	// benchmark must not silently stop gating.
	if failed := runSpeedup(snap, 0, []requirement{{Name: "BenchmarkGone", Min: 1.3}}, &out); failed != 1 {
		t.Fatalf("missing required pair did not fail: %d", failed)
	}
	// Without requirements or -min, everything is report-only.
	if failed := runSpeedup(snap, 0, nil, &out); failed != 0 {
		t.Fatalf("report-only run failed: %d", failed)
	}
	// -min applies to all detected pairs.
	if failed := runSpeedup(snap, 1.2, nil, &out); failed != 1 {
		t.Fatalf("global min 1.2 should fail only the 1.1x pair: %d", failed)
	}
}

func TestRequireFlagParsing(t *testing.T) {
	var r requireFlags
	if err := r.Set("BenchmarkMicroSort=1.3"); err != nil {
		t.Fatal(err)
	}
	if len(r) != 1 || r[0].Name != "BenchmarkMicroSort" || r[0].Min != 1.3 {
		t.Fatalf("parsed %+v", r)
	}
	for _, bad := range []string{"NoEquals", "=1.3", "Name=", "Name=0", "Name=-1", "Name=x"} {
		if err := r.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}
