package main

import (
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: hyrise/internal/benchmark
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMicroJoin/serial-8         	       1	 177213572 ns/op	 1024 B/op	      12 allocs/op
BenchmarkMicroJoin/serial-8         	       1	 160000000 ns/op	 1024 B/op	      11 allocs/op
BenchmarkMicroJoin/radix-8          	       1	 158546540 ns/op
BenchmarkMicroAggregate/serial-8    	       2	 130107697 ns/op
PASS
ok  	hyrise/internal/benchmark	1.777s
`

func TestParseBenchKeepsMinimum(t *testing.T) {
	snap, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(snap.Benchmarks))
	}
	serial := snap.Benchmarks["BenchmarkMicroJoin/serial"]
	if serial.NsPerOp != 160000000 {
		t.Errorf("min ns/op = %v, want 160000000", serial.NsPerOp)
	}
	if serial.Runs != 2 {
		t.Errorf("runs = %d, want 2", serial.Runs)
	}
	if serial.AllocsPerOp != 11 {
		t.Errorf("min allocs/op = %v, want 11", serial.AllocsPerOp)
	}
	radix := snap.Benchmarks["BenchmarkMicroJoin/radix"]
	if radix.NsPerOp != 158546540 || radix.Runs != 1 {
		t.Errorf("radix = %+v", radix)
	}
}

func TestParseBenchStripsGOMAXPROCSSuffix(t *testing.T) {
	snap, err := parseBench(strings.NewReader("BenchmarkX-16   10   500 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Benchmarks["BenchmarkX"]; !ok {
		t.Fatalf("suffix not stripped: %v", snap.Benchmarks)
	}
}
