package main

import (
	"fmt"

	"hyrise/internal/pipeline"
	"hyrise/internal/storage"
	"hyrise/internal/tpch"
)

// fig7Capacities are the chunk capacities of the paper's Figure 7 sweep
// (1k .. 10M; the largest effectively yields a single chunk, i.e. the
// unchunked layout the relative throughput is normalized to).
var fig7Capacities = []int{1_000, 10_000, 65_000, 100_000, 1_000_000, 10_000_000}

// fig7Highlight are the queries the paper plots individually; everything
// else lands in "Avg. of other queries".
var fig7Highlight = map[int]bool{1: true, 6: true, 12: true, 21: true, 22: true}

// runFig7 reproduces the throughput half of Figure 7 (paper §5.2):
// queries per second relative to a non-chunked layout, per chunk capacity.
// Two data layouts are measured, because "whether pruning is possible
// depends on the underlying data" (§5.2): dbgen-style uniformly random
// dates (no pruning opportunity) and date-clustered data (append-order
// ingestion, where min-max filters prune date predicates).
func runFig7(sf float64, runs int) {
	for _, clustered := range []bool{false, true} {
		label := "dbgen-style random dates (pruning rarely applies)"
		if clustered {
			label = "date-clustered data (pruning applies)"
		}
		fmt.Printf("== Figure 7 (top): throughput vs chunk capacity (scale factor %g, best of %d)\n", sf, runs)
		fmt.Printf("   layout: %s\n", label)
		fmt.Println("   values are speedups relative to the unchunked layout (last capacity)")
		runFig7Series(sf, runs, clustered)
	}
}

func runFig7Series(sf float64, runs int, clustered bool) {
	queries := tpch.Queries(sf)
	nums := tpch.QueryNumbers()

	// per capacity, per query: best ms.
	times := make(map[int]map[int]float64)
	for _, capacity := range fig7Capacities {
		sm := storage.NewStorageManager()
		must(tpch.Generate(sm, tpch.Config{ScaleFactor: sf, ChunkSize: capacity, UseMvcc: true, Seed: 42, ClusterDates: clustered}))
		must(tpch.EncodeAndFilter(sm, tpch.DefaultEncoding()))
		engine := pipeline.NewEngine(pipeline.DefaultConfig(), sm)
		session := engine.NewSession()
		times[capacity] = make(map[int]float64)
		for _, num := range nums {
			sql := queries[num]
			times[capacity][num] = bestOf(runs, func() {
				if _, err := session.ExecuteOne(sql); err != nil {
					panic(fmt.Sprintf("capacity %d Q%d: %v", capacity, num, err))
				}
			})
		}
		engine.Close()
		fmt.Printf("   measured capacity %d\n", capacity)
	}

	base := fig7Capacities[len(fig7Capacities)-1] // unchunked reference
	header := fmt.Sprintf("%-12s", "capacity")
	for _, num := range nums {
		if fig7Highlight[num] {
			header += fmt.Sprintf(" %8s", fmt.Sprintf("Q%02d", num))
		}
	}
	header += fmt.Sprintf(" %10s %10s", "others", "total-qps")
	fmt.Println(header)

	for _, capacity := range fig7Capacities {
		row := fmt.Sprintf("%-12d", capacity)
		otherSpeedup, otherCount := 0.0, 0
		totalMS := 0.0
		for _, num := range nums {
			speedup := times[base][num] / times[capacity][num]
			totalMS += times[capacity][num]
			if fig7Highlight[num] {
				row += fmt.Sprintf(" %7.2fx", speedup)
			} else {
				otherSpeedup += speedup
				otherCount++
			}
		}
		row += fmt.Sprintf(" %9.2fx %10.2f", otherSpeedup/float64(otherCount), float64(len(nums))/(totalMS/1000))
		fmt.Println(row)
	}
	fmt.Println()
}

// runFig7Mem reproduces the memory half of Figure 7: footprint of all
// TPC-H tables under dictionary encoding, per chunk capacity, split into
// data and per-chunk metadata (the §2.2 overhead argument).
func runFig7Mem(sf float64) {
	fmt.Printf("== Figure 7 (bottom): memory footprint vs chunk capacity (scale factor %g, dictionary)\n", sf)
	fmt.Printf("%-12s %14s %14s %10s %12s\n", "capacity", "data (MiB)", "metadata(MiB)", "meta %", "vs best")
	type point struct {
		capacity       int
		data, metadata int64
	}
	var points []point
	minTotal := int64(1<<62 - 1)
	for _, capacity := range fig7Capacities {
		sm := storage.NewStorageManager()
		must(tpch.Generate(sm, tpch.Config{ScaleFactor: sf, ChunkSize: capacity, UseMvcc: true, Seed: 42}))
		must(tpch.EncodeAndFilter(sm, tpch.DefaultEncoding()))
		var data, metadata int64
		for _, name := range tpch.TableNames() {
			t, err := sm.GetTable(name)
			must(err)
			d, m := t.MemoryUsage()
			data += d
			metadata += m
		}
		points = append(points, point{capacity, data, metadata})
		if data+metadata < minTotal {
			minTotal = data + metadata
		}
	}
	for _, p := range points {
		total := p.data + p.metadata
		fmt.Printf("%-12d %14.2f %14.2f %9.2f%% %11.2f%%\n",
			p.capacity,
			float64(p.data)/(1<<20),
			float64(p.metadata)/(1<<20),
			100*float64(p.metadata)/float64(total),
			100*float64(total)/float64(minTotal))
	}
	fmt.Println()
}
