// Command hyrise-bench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index):
//
//	hyrise-bench fig3a             encoding framework: full vs positional materialization
//	hyrise-bench fig3b             static vs dynamic polymorphism
//	hyrise-bench fig6  [-sf 0.1]   TPC-H per-query comparison across engines
//	hyrise-bench fig7  [-sf 0.1]   throughput vs chunk capacity
//	hyrise-bench fig7mem [-sf 0.1] memory footprint vs chunk capacity
//	hyrise-bench jit               fused (JIT-analog) vs traditional execution
//	hyrise-bench sched             scheduler on/off and scalability
//	hyrise-bench cache             query plan cache effect
//	hyrise-bench all               everything above
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	sf := fs.Float64("sf", 0.1, "TPC-H scale factor")
	runs := fs.Int("runs", 3, "measured runs per data point")
	_ = fs.Parse(os.Args[2:])

	switch cmd {
	case "fig3a":
		runFig3a()
	case "fig3b":
		runFig3b()
	case "fig6":
		runFig6(*sf, *runs)
	case "fig7":
		runFig7(*sf, *runs)
	case "fig7mem":
		runFig7Mem(*sf)
	case "jit":
		runJIT(*runs)
	case "sched":
		runSched(*sf, *runs)
	case "cache":
		runCache()
	case "all":
		runFig3a()
		runFig3b()
		runFig6(*sf, *runs)
		runFig7(*sf, *runs)
		runFig7Mem(*sf)
		runJIT(*runs)
		runSched(*sf, *runs)
		runCache()
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hyrise-bench fig3a|fig3b|fig6|fig7|fig7mem|jit|sched|cache|all [-sf 0.1] [-runs 3]")
}
