package main

import (
	"fmt"
	"time"

	"hyrise/internal/pipeline"
	"hyrise/internal/rowengine"
	"hyrise/internal/storage"
	"hyrise/internal/tpch"
)

// Figure 6 (paper §5.1): per-query TPC-H comparison. The paper compares
// Hyrise against Quickstep and Peloton; this reproduction compares against
// two internal baseline engines with different architectures (DESIGN.md
// substitution S4):
//
//   - hyrise:  the full engine (chunked, dictionary-encoded, pruned,
//     specialized scans)
//   - dynamic: the same engine forced through the interface-call-per-value
//     path on unencoded, unchunked data (Hyrise1-style abstractions)
//   - rowstore: a row-major, tuple-at-a-time engine
func runFig6(sf float64, runs int) {
	fmt.Printf("== Figure 6: TPC-H per-query comparison (scale factor %g, best of %d)\n", sf, runs)
	queries := tpch.Queries(sf)

	// Engine 1: full Hyrise.
	smFull := storage.NewStorageManager()
	must(tpch.Generate(smFull, tpch.Config{ScaleFactor: sf, ChunkSize: storage.DefaultChunkSize, UseMvcc: true, Seed: 42}))
	must(tpch.EncodeAndFilter(smFull, tpch.DefaultEncoding()))
	full := pipeline.NewEngine(pipeline.DefaultConfig(), smFull)
	defer full.Close()
	fullSession := full.NewSession()

	// Engine 2: dynamic-access baseline (unchunked, unencoded).
	smDyn := storage.NewStorageManager()
	must(tpch.Generate(smDyn, tpch.Config{ScaleFactor: sf, ChunkSize: 1 << 30, UseMvcc: true, Seed: 42}))
	dynCfg := pipeline.DefaultConfig()
	dynCfg.DynamicAccess = true
	dyn := pipeline.NewEngine(dynCfg, smDyn)
	defer dyn.Close()
	dynSession := dyn.NewSession()

	// Engine 3: row store.
	rows := rowengine.NewFromStorage(smFull)

	fmt.Printf("%-10s %12s %12s %12s %10s %10s\n", "query", "hyrise(ms)", "dynamic(ms)", "rowstore(ms)", "dyn/hyr", "row/hyr")
	var totals [3]float64
	for _, num := range tpch.QueryNumbers() {
		sql := queries[num]
		hyriseMS := bestOf(runs, func() {
			if _, err := fullSession.ExecuteOne(sql); err != nil {
				panic(fmt.Sprintf("hyrise Q%d: %v", num, err))
			}
		})
		dynMS := bestOf(runs, func() {
			if _, err := dynSession.ExecuteOne(sql); err != nil {
				panic(fmt.Sprintf("dynamic Q%d: %v", num, err))
			}
		})
		rowMS := bestOf(runs, func() {
			if _, _, err := rows.Query(sql); err != nil {
				panic(fmt.Sprintf("rowstore Q%d: %v", num, err))
			}
		})
		totals[0] += hyriseMS
		totals[1] += dynMS
		totals[2] += rowMS
		fmt.Printf("TPC-H %02d %12.2f %12.2f %12.2f %9.2fx %9.2fx\n",
			num, hyriseMS, dynMS, rowMS, dynMS/hyriseMS, rowMS/hyriseMS)
	}
	fmt.Printf("%-10s %12.2f %12.2f %12.2f %9.2fx %9.2fx\n", "TOTAL",
		totals[0], totals[1], totals[2], totals[1]/totals[0], totals[2]/totals[0])
	fmt.Println()
}

func bestOf(runs int, f func()) float64 {
	best := time.Duration(1<<62 - 1)
	for r := 0; r < max(runs, 1); r++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Microseconds()) / 1000
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
