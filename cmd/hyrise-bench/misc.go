package main

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"hyrise/internal/pipeline"
	"hyrise/internal/rowengine"
	"hyrise/internal/storage"
	"hyrise/internal/tpch"
)

// runJIT reproduces the §2.7 claim that code specialization + operator
// fusion help most "when complex expressions have to be calculated": a
// scan+aggregate with a heavy arithmetic/CASE expression runs through the
// traditional engine and the fused (JIT-analog) engine.
func runJIT(runs int) {
	fmt.Println("== §2.7: fused (JIT-analog) vs traditional execution")
	fmt.Println("   three engines: dynamic = per-value virtual calls (the paper's 22x baseline),")
	fmt.Println("   vectorized = the traditional operator pipeline, fused = compiled single pass.")
	fmt.Println("   (fused vs vectorized parity reproduces Kersten et al. [24], which the paper cites)")
	queries := []struct {
		name string
		sql  string
	}{
		{"simple sum", "SELECT sum(v1) FROM numbers"},
		{"filtered sum", "SELECT sum(v1) FROM numbers WHERE v2 > 500000"},
		{"complex expression", `SELECT sum(v1 * 0.7 + v2 * 0.3 - (v1 - v2) / 4.0),
			sum(CASE WHEN v1 > v2 THEN v1 * 1.19 ELSE v2 * 0.81 END)
			FROM numbers WHERE v1 + v2 > 100000 AND v1 BETWEEN 1000 AND 990000`},
	}

	var traditionalSM *storage.StorageManager
	build := func(useFusion, dynamic bool) *pipeline.Session {
		cfg := pipeline.DefaultConfig()
		cfg.UseFusion = useFusion
		cfg.DynamicAccess = dynamic
		cfg.PlanCacheSize = 0 // measure full pipeline work every run
		engine := pipeline.NewEngine(cfg, nil)
		if !useFusion && !dynamic {
			traditionalSM = engine.StorageManager()
		}
		s := engine.NewSession()
		mustExec(s, "CREATE TABLE numbers (v1 FLOAT NOT NULL, v2 FLOAT NOT NULL)")
		var sb strings.Builder
		const n = 1_000_000
		const batch = 10_000
		for start := 0; start < n; start += batch {
			sb.Reset()
			sb.WriteString("INSERT INTO numbers VALUES ")
			for i := start; i < start+batch; i++ {
				if i > start {
					sb.WriteString(",")
				}
				fmt.Fprintf(&sb, "(%d.0,%d.0)", i%997*1009%1000000, (i*31)%1000000)
			}
			mustExec(s, sb.String())
		}
		return s
	}

	dynamic := build(false, true)
	traditional := build(false, false)
	fused := build(true, false)
	// The tuple-at-a-time interpreter is the closest analog of the
	// pre-specialization execution the paper's 22x refers to.
	interpreted := rowengine.NewFromStorage(traditionalSM)

	fmt.Printf("%-22s %14s %13s %15s %11s %11s %11s\n", "query", "interpret(ms)", "dynamic(ms)", "vectorized(ms)", "fused (ms)", "int/fused", "vec/fused")
	for _, q := range queries {
		intMS := bestOf(runs, func() {
			if _, _, err := interpreted.Query(q.sql); err != nil {
				panic(err)
			}
		})
		dynMS := bestOf(runs, func() { mustExec(dynamic, q.sql) })
		tradMS := bestOf(runs, func() { mustExec(traditional, q.sql) })
		fusedMS := bestOf(runs, func() { mustExec(fused, q.sql) })
		fmt.Printf("%-22s %14.2f %13.2f %15.2f %11.2f %10.2fx %10.2fx\n",
			q.name, intMS, dynMS, tradMS, fusedMS, intMS/fusedMS, tradMS/fusedMS)
	}
	fmt.Println()
}

// runSched reproduces §2.9: the cost of the scheduler at one worker and
// the scaling behaviour with more workers, against immediate execution.
func runSched(sf float64, runs int) {
	fmt.Println("== §2.9: scheduler cost and multi-threaded scalability")
	fmt.Printf("   host has %d CPU core(s); with one core this measures the scheduler's\n", runtime.NumCPU())
	fmt.Println("   overhead (the paper's \"differences between the measurements for one core")
	fmt.Println("   with and without scheduler ... the cost of the scheduler\").")
	sql := tpch.Queries(sf)[1] // Q1: scan + aggregate over lineitem, chunk-parallel

	type variant struct {
		name string
		cfg  pipeline.Config
	}
	mk := func(useSched bool, workers int) pipeline.Config {
		cfg := pipeline.DefaultConfig()
		cfg.UseScheduler = useSched
		cfg.SchedulerWorkers = workers
		cfg.SchedulerNodes = 1
		if workers >= 4 {
			cfg.SchedulerNodes = 2
		}
		return cfg
	}
	variants := []variant{
		{"immediate (no scheduler)", mk(false, 0)},
		{"scheduler, 1 worker", mk(true, 1)},
		{"scheduler, 2 workers", mk(true, 2)},
		{"scheduler, 4 workers", mk(true, 4)},
		{"scheduler, 8 workers", mk(true, 8)},
	}

	fmt.Printf("   TPC-H Q1 at scale factor %g, chunk size 25k (chunk-parallel scan+aggregate inputs)\n", sf)
	fmt.Printf("%-28s %12s %9s\n", "configuration", "best (ms)", "speedup")
	var baseline float64
	for i, v := range variants {
		engine := newTPCHEngine(v.cfg, sf, 25_000)
		session := engine.NewSession()
		ms := bestOf(runs, func() { mustExec(session, sql) })
		engine.Close()
		if i == 0 {
			baseline = ms
		}
		fmt.Printf("%-28s %12.2f %8.2fx\n", v.name, ms, baseline/ms)
	}
	fmt.Println()
}

// runCache reproduces the §2.6 plan cache effect: repeated queries skip
// translation and optimization.
func runCache() {
	fmt.Println("== §2.6: query plan cache")
	cfgOn := pipeline.DefaultConfig()
	cfgOff := pipeline.DefaultConfig()
	cfgOff.PlanCacheSize = 0

	sql := `SELECT o_orderpriority, count(*) FROM orders
		WHERE o_orderdate >= '1993-07-01' AND o_orderdate < '1993-10-01'
		GROUP BY o_orderpriority ORDER BY o_orderpriority`

	for _, v := range []struct {
		name string
		cfg  pipeline.Config
	}{{"cache on", cfgOn}, {"cache off", cfgOff}} {
		engine := newTPCHEngine(v.cfg, 0.01, 10_000)
		session := engine.NewSession()
		mustExec(session, sql) // populate cache / warm up
		const reps = 200
		start := time.Now()
		var planning time.Duration
		for i := 0; i < reps; i++ {
			res, err := session.ExecuteOne(sql)
			if err != nil {
				panic(err)
			}
			planning += res.Timing.Parse + res.Timing.Translate + res.Timing.Optimize + res.Timing.ToPQP
		}
		total := time.Since(start)
		hits, misses := engine.PlanCacheStats()
		fmt.Printf("%-10s %4d reps: total %8.2f ms, planning share %8.2f ms, cache hits/misses %d/%d\n",
			v.name, reps, float64(total.Microseconds())/1000, float64(planning.Microseconds())/1000, hits, misses)
		engine.Close()
	}
	fmt.Println()
}

func newTPCHEngine(cfg pipeline.Config, sf float64, chunkSize int) *pipeline.Engine {
	engine := pipeline.NewEngine(cfg, nil)
	must(tpch.Generate(engine.StorageManager(), tpch.Config{ScaleFactor: sf, ChunkSize: chunkSize, UseMvcc: cfg.UseMvcc, Seed: 42}))
	must(tpch.EncodeAndFilter(engine.StorageManager(), tpch.DefaultEncoding()))
	return engine
}

func mustExec(s *pipeline.Session, sql string) {
	if _, err := s.ExecuteOne(sql); err != nil {
		panic(err)
	}
}
