package main

import (
	"fmt"
	"math/rand"
	"time"

	"hyrise/internal/encoding"
	"hyrise/internal/storage"
	"hyrise/internal/types"
)

// Figure 3 setup (paper §2.3): an aggregation accessing 25% of 1M integer
// values, randomly chosen positions.
const (
	fig3N         = 1_000_000
	fig3Positions = fig3N / 4
	fig3Repeats   = 20
)

// fig3Specs are the encodings of the paper's figure.
func fig3Specs() []encoding.Spec {
	return []encoding.Spec{
		{Encoding: encoding.FrameOfReference, Compression: encoding.FixedSizeByteAligned},
		{Encoding: encoding.FrameOfReference, Compression: encoding.BitPacked128},
		{Encoding: encoding.RunLength},
		{Encoding: encoding.Dictionary, Compression: encoding.FixedSizeByteAligned},
		{Encoding: encoding.Dictionary, Compression: encoding.BitPacked128},
	}
}

func fig3Data() ([]int64, []types.ChunkOffset) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, fig3N)
	for i := range vals {
		// Runs of ~64 equal values over a ~16k-value domain: run-length,
		// dictionary, and frame-of-reference all have realistic structure.
		vals[i] = int64(i / 64)
	}
	pos := make([]types.ChunkOffset, fig3Positions)
	for i := range pos {
		pos[i] = types.ChunkOffset(rng.Intn(fig3N))
	}
	return vals, pos
}

func encodeFig3(vals []int64, spec encoding.Spec) storage.Segment {
	vs := storage.ValueSegmentFromSlice(vals, nil)
	seg, err := encoding.EncodeSegment(vs, spec)
	if err != nil {
		panic(err)
	}
	return seg
}

// sumFull is the "full materialization" path: decode the whole vector
// upfront, then gather the requested positions.
func sumFull(seg storage.Segment, pos []types.ChunkOffset) int64 {
	full, _ := encoding.Materialize[int64](seg)
	var sum int64
	for _, p := range pos {
		sum += full[p]
	}
	return sum
}

// sumPositional uses random access iterators (static path).
func sumPositional(seg storage.Segment, pos []types.ChunkOffset) int64 {
	vals, _ := encoding.MaterializePositions[int64](seg, pos)
	var sum int64
	for _, v := range vals {
		sum += v
	}
	return sum
}

// sumDynamic uses one virtual call per value (dynamic polymorphism).
func sumDynamic(seg storage.Segment, pos []types.ChunkOffset) int64 {
	vals, _ := encoding.MaterializeDynamic[int64](seg, pos)
	var sum int64
	for _, v := range vals {
		sum += v
	}
	return sum
}

func timeIt(f func() int64) (time.Duration, int64) {
	var sum int64
	start := time.Now()
	for r := 0; r < fig3Repeats; r++ {
		sum = f()
	}
	return time.Since(start) / fig3Repeats, sum
}

func runFig3a() {
	fmt.Println("== Figure 3a: full vs positional materialization")
	fmt.Printf("   (aggregation over %d random positions of %d int values, avg of %d runs)\n",
		fig3Positions, fig3N, fig3Repeats)
	vals, pos := fig3Data()
	fmt.Printf("%-28s %14s %14s %9s\n", "encoding", "full (ms)", "positional(ms)", "speedup")
	for _, spec := range fig3Specs() {
		seg := encodeFig3(vals, spec)
		fullTime, s1 := timeIt(func() int64 { return sumFull(seg, pos) })
		posTime, s2 := timeIt(func() int64 { return sumPositional(seg, pos) })
		if s1 != s2 {
			panic("fig3a: checksum mismatch")
		}
		fmt.Printf("%-28s %14.3f %14.3f %8.2fx\n", spec,
			float64(fullTime.Microseconds())/1000,
			float64(posTime.Microseconds())/1000,
			float64(fullTime)/float64(posTime))
	}
	fmt.Println()
}

func runFig3b() {
	fmt.Println("== Figure 3b: static vs dynamic polymorphism")
	fmt.Printf("   (same access pattern; static = resolved generic accessors, dynamic = interface call per value)\n")
	vals, pos := fig3Data()
	fmt.Printf("%-28s %14s %14s %9s\n", "encoding", "dynamic (ms)", "static (ms)", "speedup")
	specs := append([]encoding.Spec{{Encoding: encoding.Unencoded}}, fig3Specs()...)
	for _, spec := range specs {
		seg := encodeFig3(vals, spec)
		dynTime, s1 := timeIt(func() int64 { return sumDynamic(seg, pos) })
		statTime, s2 := timeIt(func() int64 { return sumPositional(seg, pos) })
		if s1 != s2 {
			panic("fig3b: checksum mismatch")
		}
		fmt.Printf("%-28s %14.3f %14.3f %8.2fx\n", spec,
			float64(dynTime.Microseconds())/1000,
			float64(statTime.Microseconds())/1000,
			float64(dynTime)/float64(statTime))
	}
	fmt.Println()
}
