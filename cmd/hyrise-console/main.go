// Command hyrise-console is the interactive command line interface
// (paper §2.1): it submits queries and offers convenience functions for
// generating TPC-H tables, visualizing query plans, and toggling optional
// components.
//
// Meta commands:
//
//	\help                 show this help
//	\generate tpch <sf>   generate TPC-H tables at a scale factor
//	\tables               list tables
//	\visualize <sql>      print the unoptimized/optimized LQP and the PQP
//	\explain <sql>        execute with tracing and print the annotated plan
//	\metrics              dump the engine metrics registry
//	\timing on|off        print per-stage timings after each query
//	\plugins              list available and loaded plugins
//	\load <plugin>        load a plugin
//	\unload <plugin>      unload a plugin
//	\q                    quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hyrise/internal/pipeline"
	"hyrise/internal/plugin"
	"hyrise/internal/tpch"
)

func main() {
	stmtTimeout := flag.Duration("statement-timeout", 0, "cancel statements running longer than this (0 = no timeout)")
	dataDir := flag.String("data-dir", "", "durable data directory: restore snapshot+WAL on boot, log commits (empty = in-memory)")
	syncMode := flag.String("sync", "commit", "WAL sync mode: commit, batch, off")
	flag.Parse()

	cfg := pipeline.DefaultConfig()
	cfg.StatementTimeout = *stmtTimeout
	cfg.DataDir = *dataDir
	cfg.SyncMode = *syncMode
	engine, err := pipeline.NewEngineErr(cfg, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	defer engine.Close()
	session := engine.NewSession()
	plugins := plugin.NewManager(engine)
	defer plugins.UnloadAll()

	timing := false
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)

	fmt.Println("Hyrise-Go console. \\help for help, \\q to quit.")
	for {
		fmt.Print("hyrise> ")
		if !in.Scan() {
			return
		}
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if quit := metaCommand(line, engine, session, plugins, &timing); quit {
				return
			}
			continue
		}
		results, err := session.Execute(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		for _, res := range results {
			printResult(res, timing)
		}
	}
}

func metaCommand(line string, engine *pipeline.Engine, session *pipeline.Session, plugins *plugin.Manager, timing *bool) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\q", "\\quit", "\\exit":
		return true
	case "\\help":
		fmt.Println(`\generate tpch <sf>, \tables, \visualize <sql>, \explain <sql>, \metrics,
\replication, \timing on|off, \plugins, \load <name>, \unload <name>, \q`)
	case "\\tables":
		for _, name := range engine.StorageManager().TableNames() {
			t, _ := engine.StorageManager().GetTable(name)
			fmt.Printf("  %-12s %10d rows, %d chunks\n", name, t.RowCount(), t.ChunkCount())
		}
	case "\\generate":
		if len(fields) < 3 || fields[1] != "tpch" {
			fmt.Println("usage: \\generate tpch <scale factor>")
			break
		}
		sf, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			fmt.Println("bad scale factor:", fields[2])
			break
		}
		fmt.Printf("generating TPC-H at scale factor %g...\n", sf)
		if err := tpch.Generate(engine.StorageManager(), tpch.Config{ScaleFactor: sf, UseMvcc: engine.Config().UseMvcc, Seed: 42}); err != nil {
			fmt.Println("error:", err)
			break
		}
		if err := tpch.EncodeAndFilter(engine.StorageManager(), tpch.DefaultEncoding()); err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("done.")
	case "\\visualize":
		sql := strings.TrimSpace(strings.TrimPrefix(line, "\\visualize"))
		if sql == "" {
			fmt.Println("usage: \\visualize <sql>")
			break
		}
		unopt, opt, pqp, err := engine.Plans(sql)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("-- unoptimized LQP:")
		fmt.Print(unopt)
		fmt.Println("-- optimized LQP:")
		fmt.Print(opt)
		fmt.Println("-- PQP:")
		fmt.Print(pqp)
	case "\\explain":
		sql := strings.TrimSpace(strings.TrimPrefix(line, "\\explain"))
		if sql == "" {
			fmt.Println("usage: \\explain <sql>")
			break
		}
		ex, err := session.Explain(sql)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Print(ex.Text)
	case "\\replication":
		res, err := session.ExecuteOne("SELECT * FROM meta_replication")
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		printResult(res, false)
	case "\\metrics":
		for _, m := range engine.Metrics().Snapshot() {
			fmt.Printf("  %-32s %-10s %d\n", m.Name, m.Kind, m.Value)
		}
	case "\\timing":
		*timing = len(fields) > 1 && fields[1] == "on"
		fmt.Println("timing:", *timing)
	case "\\plugins":
		fmt.Println("available:", strings.Join(plugin.Available(), ", "))
		fmt.Println("loaded:   ", strings.Join(plugins.Loaded(), ", "))
	case "\\load":
		if len(fields) < 2 {
			fmt.Println("usage: \\load <plugin>")
			break
		}
		if err := plugins.Load(fields[1]); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("loaded", fields[1])
		}
	case "\\unload":
		if len(fields) < 2 {
			fmt.Println("usage: \\unload <plugin>")
			break
		}
		if err := plugins.Unload(fields[1]); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("unloaded", fields[1])
		}
	default:
		fmt.Println("unknown command; \\help for help")
	}
	return false
}

func printResult(res *pipeline.Result, timing bool) {
	if res.Table != nil && len(res.Columns) > 0 {
		rows := pipeline.RowStrings(res.Table)
		fmt.Println(strings.Join(res.Columns, " | "))
		for i, row := range rows {
			if i >= 50 {
				fmt.Printf("... (%d rows total)\n", len(rows))
				break
			}
			fmt.Println(strings.Join(row, " | "))
		}
		fmt.Printf("(%d rows)\n", len(rows))
	} else {
		fmt.Println(res.Tag)
	}
	if timing {
		t := res.Timing
		fmt.Printf("timing: parse=%v translate=%v optimize=%v pqp=%v execute=%v cache_hit=%v\n",
			t.Parse, t.Translate, t.Optimize, t.ToPQP, t.Execute, t.CacheHit)
	}
}
