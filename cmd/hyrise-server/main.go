// Command hyrise-server starts the PostgreSQL-wire-protocol server
// (paper §2.5). Connect with psql:
//
//	hyrise-server -addr 127.0.0.1:5433 -tpch 0.01
//	psql -h 127.0.0.1 -p 5433 -U hyrise
//
// Replication: a durable primary ships its WAL to followers.
//
//	hyrise-server -data-dir /var/lib/hyrise -replication-addr 127.0.0.1:5444
//	hyrise-server -addr 127.0.0.1:5434 -replica-of 127.0.0.1:5444
//
// A follower serves reads at the primary's commit barrier and rejects writes
// with SQLSTATE 25006. With -replicas N, the primary additionally attaches N
// in-process read replicas and routes eligible SELECTs to them.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hyrise"
	"hyrise/internal/pipeline"
	"hyrise/internal/server"
	"hyrise/internal/tpch"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:5433", "listen address")
		tpchSF      = flag.Float64("tpch", 0, "preload TPC-H data at this scale factor (0 = none)")
		scheduler   = flag.Bool("scheduler", false, "enable the node-queue scheduler")
		debugAddr   = flag.String("debug-addr", "", "serve pprof and /metrics on this address (empty = disabled)")
		slowLog     = flag.Bool("slow-log", false, "log slow queries to stderr")
		slowThr     = flag.Duration("slow-threshold", server.DefaultSlowQueryThreshold, "slow-query log threshold")
		slowTrace   = flag.Bool("slow-log-trace", false, "attach each slow query's EXPLAIN ANALYZE trace to its log entry (implies tracing)")
		stmtTimeout = flag.Duration("statement-timeout", 0, "cancel statements running longer than this (0 = no timeout)")
		lockWait    = flag.Duration("lock-wait", 0, "wait up to this long for a row lock held by another transaction before aborting with a conflict (0 = abort immediately)")
		maxConns    = flag.Int("max-connections", 0, "refuse connections beyond this many concurrent sessions with SQLSTATE 53300 (0 = unlimited)")
		admitWait   = flag.Duration("admission-wait", 0, "wait up to this long for a free session slot before refusing with 53300 (0 = refuse immediately)")
		dataDir     = flag.String("data-dir", "", "durable data directory: restore snapshot+WAL on boot, log commits (empty = in-memory)")
		syncMode    = flag.String("sync", "commit", "WAL sync mode: commit (fsync per commit group), batch (background fsync), off")
		snapEvery   = flag.Duration("snapshot-interval", 0, "checkpoint snapshots at this cadence, truncating the WAL (0 = only on demand)")
		replAddr    = flag.String("replication-addr", "", "serve WAL shipping to followers on this address (requires -data-dir)")
		replicaOf   = flag.String("replica-of", "", "run as a read-only replica of the primary at this replication address")
		replicas    = flag.Int("replicas", 0, "attach this many in-process read replicas and route SELECTs to them (requires -data-dir)")
		workers     = flag.Int("workers", 0, "bounded executor pool: this many read workers, half as many write workers (0 = execute on connection goroutines)")
		queueDepth  = flag.Int("queue-depth", 0, "per-class executor queue depth; a full queue blocks the submitting connection (0 = 4x workers)")
		slowQueue   = flag.Duration("slow-queue-threshold", server.DefaultSlowQueueThreshold, "route statements whose mean latency exceeds this to the slow queue")
		drainWait   = flag.Duration("drain-timeout", 10*time.Second, "on SIGTERM/SIGINT, let in-flight statements finish for up to this long before force-closing")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	cfg := pipeline.DefaultConfig()
	cfg.UseScheduler = *scheduler
	cfg.DebugAddr = *debugAddr
	cfg.StatementTimeout = *stmtTimeout
	cfg.LockWaitTimeout = *lockWait
	cfg.DataDir = *dataDir
	cfg.SyncMode = *syncMode
	cfg.SnapshotInterval = *snapEvery

	var (
		db  *hyrise.Database
		err error
	)
	if *replicaOf != "" {
		db, err = hyrise.OpenReplica(cfg, *replicaOf)
	} else {
		db, err = hyrise.OpenErr(cfg)
	}
	if err != nil {
		fail(err)
	}
	defer db.Close()
	engine := db.Engine()
	if cfg.DataDir != "" {
		fmt.Fprintf(os.Stderr, "durable mode: data-dir=%s sync=%s\n", cfg.DataDir, cfg.SyncMode)
	}
	if *replicaOf != "" {
		fmt.Fprintf(os.Stderr, "read-only replica of %s (writes rejected with SQLSTATE 25006)\n", *replicaOf)
	}
	if d := engine.DebugAddr(); d != "" {
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s (pprof, OpenMetrics /metrics, JSON /metrics.json)\n", d)
	}

	if *tpchSF > 0 && *replicaOf == "" {
		fmt.Fprintf(os.Stderr, "loading TPC-H at scale factor %g...\n", *tpchSF)
		if err := tpch.Generate(engine.StorageManager(), tpch.Config{ScaleFactor: *tpchSF, UseMvcc: cfg.UseMvcc, Seed: 42}); err != nil {
			fail(err)
		}
		if err := tpch.EncodeAndFilter(engine.StorageManager(), tpch.DefaultEncoding()); err != nil {
			fail(err)
		}
		// Bulk loads bypass the WAL; checkpoint so the generated data is in
		// the snapshot and survives restarts (and reaches followers).
		if engine.Durable() {
			if err := engine.Checkpoint(); err != nil {
				fail(err)
			}
		}
	}

	if *replAddr != "" {
		actual, err := db.ServeReplication(*replAddr)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "replication listener on %s (WAL shipping to followers)\n", actual)
	}
	for i := 0; i < *replicas; i++ {
		// In-process replicas are in-memory: they bootstrap from the
		// primary's snapshot and tail its WAL, not their own disk.
		rcfg := pipeline.DefaultConfig()
		rcfg.UseScheduler = *scheduler
		if _, err := db.AttachReplica(rcfg); err != nil {
			fail(err)
		}
	}
	if *replicas > 0 {
		fmt.Fprintf(os.Stderr, "attached %d in-process read replica(s); routing SELECTs at the commit barrier\n", *replicas)
	}

	srv := server.New(engine)
	if *replicas > 0 {
		srv.SetReadRouter(db)
	}
	if *slowLog || *slowTrace {
		srv.EnableSlowQueryLog(os.Stderr, *slowThr)
	}
	if *slowTrace {
		srv.EnableSlowQueryTrace()
	}
	if *maxConns > 0 {
		srv.SetMaxConnections(*maxConns)
	}
	if *admitWait > 0 {
		srv.SetAdmissionWait(*admitWait)
	}
	if *workers > 0 {
		srv.EnableExecutorPool(*workers, *queueDepth, *slowQueue)
		fmt.Fprintf(os.Stderr, "executor pool: %d read workers, per-class queues (meta_executor_pool)\n", *workers)
	}
	actual, err := srv.Listen(*addr)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "hyrise-server listening on %s (PostgreSQL wire protocol)\n", actual)
	fmt.Fprintf(os.Stderr, "connect with: psql -h %s\n", actual)

	// SIGTERM/SIGINT drain gracefully: stop accepting, let in-flight
	// statements finish under the deadline, then force-close stragglers.
	// Serve returns as soon as the listener closes, so main waits for the
	// drain itself before exiting.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	sigReceived := make(chan struct{})
	drainDone := make(chan struct{})
	go func() {
		sig := <-sigCh
		close(sigReceived)
		fmt.Fprintf(os.Stderr, "%s: draining connections (timeout %v)\n", sig, *drainWait)
		srv.Shutdown(*drainWait)
		close(drainDone)
	}()
	err = srv.Serve()
	select {
	case <-sigReceived:
		<-drainDone
	default:
	}
	if err != nil {
		fail(err)
	}
	fmt.Fprintln(os.Stderr, "server drained")
}
