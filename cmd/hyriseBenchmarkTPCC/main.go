// Command hyriseBenchmarkTPCC runs the TPC-C transaction mix (an extension:
// the paper lists TPC-C support as work in progress, §2.10). Like the
// TPC-H binary it is a one-stop solution: it generates its data, runs the
// transactions, and prints a JSON result with the full execution context.
//
//	hyriseBenchmarkTPCC -warehouses 1 -terminals 4 -transactions 1000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"hyrise/internal/benchmark"
	"hyrise/internal/pipeline"
	"hyrise/internal/storage"
	"hyrise/internal/tpcc"
)

func main() {
	var (
		warehouses   = flag.Int("warehouses", 1, "number of warehouses")
		items        = flag.Int("items", 10_000, "items per warehouse (official: 100000)")
		customers    = flag.Int("customers", 300, "customers per district (official: 3000)")
		terminals    = flag.Int("terminals", 4, "concurrent terminals")
		transactions = flag.Int("transactions", 500, "transactions per terminal")
		scheduler    = flag.Bool("scheduler", false, "enable the node-queue scheduler")
	)
	flag.Parse()

	cfg := tpcc.DefaultConfig()
	cfg.Warehouses = *warehouses
	cfg.Items = *items
	cfg.CustomersPerDistrict = *customers
	cfg.InitialOrders = *customers

	engineCfg := pipeline.DefaultConfig()
	engineCfg.UseScheduler = *scheduler
	sm := storage.NewStorageManager()
	fmt.Fprintln(os.Stderr, "generating TPC-C data...")
	if err := tpcc.Generate(sm, cfg); err != nil {
		fatal(err)
	}
	engine := pipeline.NewEngine(engineCfg, sm)
	defer engine.Close()

	fmt.Fprintf(os.Stderr, "running %d terminals x %d transactions...\n", *terminals, *transactions)
	start := time.Now()
	var wg sync.WaitGroup
	stats := make([]tpcc.Stats, *terminals)
	errs := make([]error, *terminals)
	for i := 0; i < *terminals; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			term := tpcc.NewTerminal(engine, cfg, int64(i)+1)
			stats[i], errs[i] = term.Run(*transactions)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total tpcc.Stats
	for i, s := range stats {
		if errs[i] != nil {
			fatal(errs[i])
		}
		total.NewOrders += s.NewOrders
		total.Payments += s.Payments
		total.OrderStatus += s.OrderStatus
		total.Aborts += s.Aborts
	}
	committed := total.NewOrders + total.Payments + total.OrderStatus

	out := map[string]any{
		"benchmark": "TPC-C",
		"context": benchmark.Context(engine, map[string]string{
			"warehouses":   fmt.Sprint(*warehouses),
			"terminals":    fmt.Sprint(*terminals),
			"transactions": fmt.Sprint(*transactions * *terminals),
		}),
		"elapsed_ms":        float64(elapsed.Microseconds()) / 1000,
		"new_orders":        total.NewOrders,
		"payments":          total.Payments,
		"order_status":      total.OrderStatus,
		"aborts":            total.Aborts,
		"committed_per_sec": float64(committed) / elapsed.Seconds(),
		"tpmC":              float64(total.NewOrders) / elapsed.Minutes(),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
