// Command hyriseBenchmarkTPCH is the paper's one-binary TPC-H benchmark
// (§2.10): it generates its data, runs the queries, and prints a JSON
// result that includes every parameter relevant to the execution, so
// results can be communicated reproducibly.
//
// Usage:
//
//	hyriseBenchmarkTPCH -sf 0.1 -runs 3 -chunksize 100000 -encoding dict
//	hyriseBenchmarkTPCH -queries 1,6,12 -scheduler -workers 8
//	hyriseBenchmarkTPCH -custom ./mybench    # *.csv + *.schema + *.sql
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hyrise/internal/benchmark"
	"hyrise/internal/encoding"
	"hyrise/internal/pipeline"
	"hyrise/internal/storage"
	"hyrise/internal/tpch"
)

func main() {
	var (
		sf          = flag.Float64("sf", 0.1, "TPC-H scale factor")
		runs        = flag.Int("runs", 3, "measured runs per query")
		warmup      = flag.Int("warmup", 1, "warmup runs per query")
		chunkSize   = flag.Int("chunksize", storage.DefaultChunkSize, "chunk capacity in rows")
		encodingArg = flag.String("encoding", "dict", "segment encoding: dict|rle|for|none")
		compression = flag.String("compression", "fsba", "attribute vector compression: fsba|bp128")
		scheduler   = flag.Bool("scheduler", false, "enable the node-queue scheduler")
		workers     = flag.Int("workers", 0, "scheduler workers (0 = one per core)")
		optimizer   = flag.Bool("optimizer", true, "enable the optimizer")
		mvcc        = flag.Bool("mvcc", true, "enable MVCC")
		fusionFlag  = flag.Bool("jit", false, "enable the fused (JIT-analog) engine")
		queriesArg  = flag.String("queries", "", "comma-separated query numbers (default: all 22)")
		output      = flag.String("output", "", "write JSON to this file (default: stdout)")
		custom      = flag.String("custom", "", "directory with a custom benchmark (*.csv, *.schema, *.sql)")
		verbose     = flag.Bool("verbose", true, "print per-query progress to stderr")
	)
	flag.Parse()

	cfg := pipeline.DefaultConfig()
	cfg.UseOptimizer = *optimizer
	cfg.UseMvcc = *mvcc
	cfg.UseScheduler = *scheduler
	cfg.SchedulerWorkers = *workers
	cfg.UseFusion = *fusionFlag
	engine := pipeline.NewEngine(cfg, nil)
	defer engine.Close()

	var items []benchmark.Item
	extra := map[string]string{"chunk_size": fmt.Sprint(*chunkSize)}

	if *custom != "" {
		loaded, err := benchmark.LoadCustomBenchmark(*custom, engine, *chunkSize)
		if err != nil {
			fatal(err)
		}
		items = loaded
		extra["benchmark_dir"] = *custom
	} else {
		enc, err := encoding.ParseEncodingType(*encodingArg)
		if err != nil {
			fatal(err)
		}
		comp := encoding.FixedSizeByteAligned
		if strings.EqualFold(*compression, "bp128") {
			comp = encoding.BitPacked128
		}
		spec := encoding.Spec{Encoding: enc, Compression: comp}

		fmt.Fprintf(os.Stderr, "generating TPC-H data at scale factor %g...\n", *sf)
		err = tpch.Generate(engine.StorageManager(), tpch.Config{
			ScaleFactor: *sf, ChunkSize: *chunkSize, UseMvcc: cfg.UseMvcc, Seed: 42,
		})
		if err != nil {
			fatal(err)
		}
		if err := tpch.EncodeAndFilter(engine.StorageManager(), spec); err != nil {
			fatal(err)
		}
		extra["scale_factor"] = fmt.Sprint(*sf)
		extra["encoding"] = spec.String()

		nums := tpch.QueryNumbers()
		if *queriesArg != "" {
			nums = nums[:0]
			for _, part := range strings.Split(*queriesArg, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil || n < 1 || n > 22 {
					fatal(fmt.Errorf("bad query number %q", part))
				}
				nums = append(nums, n)
			}
		}
		all := tpch.Queries(*sf)
		for _, n := range nums {
			items = append(items, benchmark.Item{Name: fmt.Sprintf("TPC-H %02d", n), SQL: all[n]})
		}
	}

	fmt.Fprintln(os.Stderr, "running benchmark...")
	result := benchmark.Run("TPC-H", engine, items, benchmark.Options{
		Warmup: *warmup, Runs: *runs, Verbose: *verbose,
	}, extra)

	out := os.Stdout
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			fatal(err)
		}
		defer func() { _ = f.Close() }()
		out = f
	}
	if err := result.WriteJSON(out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
