// Command hyrise-loadgen is a concurrent-client load harness for the wire
// protocol front end: N clients run a mixed read/write workload through the
// extended query protocol (prepared statements, binary parameters) and the
// simple protocol, then the server is drained gracefully. It exits non-zero
// on any protocol error, making it usable as a CI smoke test:
//
//	hyrise-loadgen -clients 8 -duration 3s
//
// With -addr it targets a running server instead of self-hosting one (the
// drain phase is skipped, since the external server owns its lifecycle).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"hyrise/internal/pgclient"
	"hyrise/internal/pipeline"
	"hyrise/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "", "target server address (empty = self-host an in-process server)")
		clients    = flag.Int("clients", 8, "concurrent client connections")
		duration   = flag.Duration("duration", 3*time.Second, "load duration")
		writeRatio = flag.Float64("write-ratio", 0.25, "fraction of operations that are INSERTs")
		workers    = flag.Int("workers", 4, "executor pool read workers for the self-hosted server")
		drainWait  = flag.Duration("drain-timeout", 5*time.Second, "graceful drain deadline for the self-hosted server")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
		os.Exit(1)
	}

	target := *addr
	var srv *server.Server
	if target == "" {
		engine := pipeline.NewEngine(pipeline.DefaultConfig(), nil)
		defer engine.Close()
		srv = server.New(engine)
		srv.EnableExecutorPool(*workers, 0, server.DefaultSlowQueueThreshold)
		actual, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			fail("listen: %v", err)
		}
		go func() { _ = srv.Serve() }()
		target = actual
		fmt.Fprintf(os.Stderr, "self-hosted server on %s (pool: %d read workers)\n", actual, *workers)
	}

	setup, err := pgclient.Dial(target)
	if err != nil {
		fail("dial: %v", err)
	}
	if _, err := setup.SimpleQuery(
		"CREATE TABLE loadgen (id INT NOT NULL, tag VARCHAR(20), val FLOAT)"); err != nil {
		fail("setup: %v", err)
	}

	var (
		ops       atomic.Int64
		reads     atomic.Int64
		writes    atomic.Int64
		protoErrs atomic.Int64
	)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 1))
			c, err := pgclient.Dial(target)
			if err != nil {
				protoErrs.Add(1)
				fmt.Fprintf(os.Stderr, "client %d: dial: %v\n", id, err)
				return
			}
			defer c.Close()
			if _, err := c.Prepare("ins", "INSERT INTO loadgen VALUES ($1, $2, $3)", nil); err != nil {
				protoErrs.Add(1)
				fmt.Fprintf(os.Stderr, "client %d: prepare insert: %v\n", id, err)
				return
			}
			if _, err := c.Prepare("sel", "SELECT id, val FROM loadgen WHERE id = $1", nil); err != nil {
				protoErrs.Add(1)
				fmt.Fprintf(os.Stderr, "client %d: prepare select: %v\n", id, err)
				return
			}
			seq := 0
			for time.Now().Before(deadline) {
				var err error
				if rng.Float64() < *writeRatio {
					seq++
					_, err = c.Exec("ins", []pgclient.Param{
						pgclient.BinaryInt8(int64(id*1_000_000 + seq)),
						pgclient.Text(fmt.Sprintf("c%d", id)),
						pgclient.BinaryFloat8(rng.Float64()),
					}, nil)
					writes.Add(1)
				} else if rng.Intn(4) == 0 {
					// A slice of reads goes through the simple protocol, like
					// ad-hoc psql traffic alongside driver traffic.
					_, err = c.SimpleQuery("SELECT tag FROM loadgen WHERE id >= 0")
					reads.Add(1)
				} else {
					_, err = c.Exec("sel", []pgclient.Param{
						pgclient.BinaryInt8(int64(rng.Intn(1_000_000))),
					}, []int16{1, 1})
					reads.Add(1)
				}
				if err != nil {
					protoErrs.Add(1)
					fmt.Fprintf(os.Stderr, "client %d: %v\n", id, err)
					return
				}
				ops.Add(1)
			}
		}(i)
	}
	wg.Wait()

	elapsed := *duration
	fmt.Printf("clients=%d ops=%d (reads=%d writes=%d) qps=%.0f protocol_errors=%d\n",
		*clients, ops.Load(), reads.Load(), writes.Load(),
		float64(ops.Load())/elapsed.Seconds(), protoErrs.Load())

	if srv != nil {
		if pool, err := setup.SimpleQuery("SELECT queue, executed, rejected, wait_ns FROM meta_executor_pool"); err == nil && len(pool) > 0 {
			for _, row := range pool[0].Rows {
				fmt.Printf("pool queue=%s executed=%s rejected=%s wait_ns=%s\n",
					row[0], row[1], row[2], row[3])
			}
		}
		// Graceful drain: the idle setup connection must get a clean FATAL
		// 57P01, and Shutdown must return within the deadline.
		drained := make(chan struct{})
		go func() {
			srv.Shutdown(*drainWait)
			close(drained)
		}()
		mt, payload, err := setup.ReadMessage()
		if err != nil {
			fail("drain: expected shutdown notice, got %v", err)
		}
		if mt != 'E' {
			fail("drain: expected ErrorResponse, got %q", mt)
		}
		if pe := pgclient.DecodeError(payload); pe.Code != "57P01" {
			fail("drain: notice code = %s, want 57P01", pe.Code)
		}
		select {
		case <-drained:
		case <-time.After(*drainWait + 5*time.Second):
			fail("drain: Shutdown did not return")
		}
		fmt.Println("drain: clean (57P01 delivered, shutdown returned)")
	} else {
		_ = setup.Close()
	}

	if protoErrs.Load() > 0 {
		os.Exit(1)
	}
}
