package hyrise

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"hyrise/internal/pipeline"
	"hyrise/internal/replication"
)

func durableConfig(t *testing.T) Config {
	t.Helper()
	cfg := DefaultConfig()
	cfg.DataDir = t.TempDir()
	cfg.SyncMode = "commit"
	return cfg
}

// waitBarrier blocks until the replica has applied the primary's current
// commit barrier — the consistency protocol every routed read follows.
func waitBarrier(t *testing.T, primary, replica *Database) {
	t.Helper()
	barrier := primary.Engine().TransactionManager().LastCommitID()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := replica.Follower().WaitForCommit(ctx, barrier); err != nil {
		t.Fatalf("replica did not reach commit barrier %d: %v", barrier, err)
	}
}

func mustRows(t *testing.T, db *Database, sql string) [][]string {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return Rows(res)
}

func TestReplicaConsistentReadsAndPromote(t *testing.T) {
	db, err := OpenErr(durableConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Execute("CREATE TABLE accounts (id INT NOT NULL, balance INT NOT NULL)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute("INSERT INTO accounts VALUES (1, 100), (2, 200), (3, 300)"); err != nil {
		t.Fatal(err)
	}

	replica, err := db.AttachReplica(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	waitBarrier(t, db, replica)

	const q = "SELECT id, balance FROM accounts ORDER BY id"
	if got, want := mustRows(t, replica, q), mustRows(t, db, q); !reflect.DeepEqual(got, want) {
		t.Fatalf("replica rows = %v, primary rows = %v", got, want)
	}

	// The replica keeps up with new commits at the barrier.
	if _, err := db.Execute("INSERT INTO accounts VALUES (4, 400)"); err != nil {
		t.Fatal(err)
	}
	waitBarrier(t, db, replica)
	if got, want := mustRows(t, replica, q), mustRows(t, db, q); !reflect.DeepEqual(got, want) {
		t.Fatalf("after tail: replica rows = %v, primary rows = %v", got, want)
	}

	// Writes and DDL are rejected while the replica is read-only.
	if _, err := replica.Execute("INSERT INTO accounts VALUES (9, 900)"); !errors.Is(err, pipeline.ErrReadOnly) {
		t.Fatalf("replica INSERT error = %v, want ErrReadOnly", err)
	}
	if _, err := replica.Execute("CREATE TABLE nope (a INT NOT NULL)"); !errors.Is(err, pipeline.ErrReadOnly) {
		t.Fatalf("replica DDL error = %v, want ErrReadOnly", err)
	}

	// meta_replication reports both sides of the topology.
	prows := mustRows(t, db, "SELECT role, state FROM meta_replication")
	if len(prows) != 1 || prows[0][0] != "primary" {
		t.Fatalf("primary meta_replication = %v", prows)
	}
	rrows := mustRows(t, replica, "SELECT role, state FROM meta_replication")
	if len(rrows) != 1 || rrows[0][0] != "replica" || rrows[0][1] != string(replication.StateStreaming) {
		t.Fatalf("replica meta_replication = %v", rrows)
	}

	// Promotion through SQL: the replica becomes read-write.
	got := mustRows(t, replica, "SELECT promote_replica()")
	if len(got) != 1 || got[0][0] != "1" {
		t.Fatalf("promote_replica() = %v", got)
	}
	if _, err := replica.Execute("INSERT INTO accounts VALUES (5, 500)"); err != nil {
		t.Fatalf("write after promote: %v", err)
	}
	// A second promote is a no-op reporting 0.
	if got := mustRows(t, replica, "SELECT promote_replica()"); got[0][0] != "0" {
		t.Fatalf("second promote_replica() = %v", got)
	}
}

func TestAcquireReadRoutesToReplica(t *testing.T) {
	db, err := OpenErr(durableConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Execute("CREATE TABLE t (a INT NOT NULL); INSERT INTO t VALUES (1), (2)"); err != nil {
		t.Fatal(err)
	}

	// No replicas: reads stay local.
	if _, ok := db.AcquireRead(context.Background()); ok {
		t.Fatal("AcquireRead routed with no replicas attached")
	}

	replica, err := db.AttachReplica(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	waitBarrier(t, db, replica)

	eng, ok := db.AcquireRead(context.Background())
	if !ok || eng != replica.Engine() {
		t.Fatalf("AcquireRead = (%p, %v), want replica engine %p", eng, ok, replica.Engine())
	}
	// The routed engine serves the primary's rows at the barrier.
	res, err := eng.NewSession().ExecuteOne("SELECT a FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if got := Rows(res); !reflect.DeepEqual(got, [][]string{{"1"}, {"2"}}) {
		t.Fatalf("routed read rows = %v", got)
	}
}

// TestTPCHPrimaryReplicaDifferential is the acceptance check for consistent
// replica reads: TPC-H Q1, Q3, and Q6 must return bit-for-bit identical rows
// on the primary and on a replica queried at the same commit barrier.
func TestTPCHPrimaryReplicaDifferential(t *testing.T) {
	db, err := OpenErr(durableConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const sf = 0.001
	if err := db.GenerateTPCH(sf, 1000); err != nil {
		t.Fatal(err)
	}
	// Bulk loads bypass the WAL; checkpoint so the replica's bootstrap
	// snapshot carries the generated tables.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The bulk load commits "at the beginning of time" and leaves the commit
	// barrier untouched; commit a marker write so waitBarrier actually waits
	// for the bootstrap to land.
	if _, err := db.Execute("CREATE TABLE repl_marker (a INT NOT NULL); INSERT INTO repl_marker VALUES (1)"); err != nil {
		t.Fatal(err)
	}

	replica, err := db.AttachReplica(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	waitBarrier(t, db, replica)

	queries := TPCHQueries(sf)
	for _, qn := range []int{1, 3, 6} {
		primaryRows := mustRows(t, db, queries[qn])
		replicaRows := mustRows(t, replica, queries[qn])
		if !reflect.DeepEqual(primaryRows, replicaRows) {
			t.Errorf("Q%d diverged:\n primary = %v\n replica = %v", qn, primaryRows, replicaRows)
		}
		if len(primaryRows) == 0 {
			t.Errorf("Q%d returned no rows on the primary", qn)
		}
	}
}

// TestFailoverPromoteAndRepoint drives the failover sequence: the primary
// dies, one replica is promoted, the surviving replica is re-pointed at the
// new primary and converges on its state (including post-promote writes).
func TestFailoverPromoteAndRepoint(t *testing.T) {
	db, err := OpenErr(durableConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute("CREATE TABLE t (a INT NOT NULL); INSERT INTO t VALUES (1), (2)"); err != nil {
		t.Fatal(err)
	}

	// r1 is durable so it can ship its own WAL once promoted; r2 stays
	// in-memory.
	r1, err := db.AttachReplica(durableConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	r2, err := db.AttachReplica(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	waitBarrier(t, db, r1)
	waitBarrier(t, db, r2)

	// Primary dies.
	db.Close()

	// Promote r1 and write through it.
	if err := r1.Promote(); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Execute("INSERT INTO t VALUES (3)"); err != nil {
		t.Fatalf("write on promoted replica: %v", err)
	}

	// Re-point r2 at the new primary; it must re-bootstrap and converge.
	if err := r2.RepointTo(r1); err != nil {
		t.Fatal(err)
	}
	waitBarrier(t, r1, r2)
	const q = "SELECT a FROM t ORDER BY a"
	want := [][]string{{"1"}, {"2"}, {"3"}}
	if got := mustRows(t, r1, q); !reflect.DeepEqual(got, want) {
		t.Fatalf("new primary rows = %v, want %v", got, want)
	}
	if got := mustRows(t, r2, q); !reflect.DeepEqual(got, want) {
		t.Fatalf("re-pointed replica rows = %v, want %v", got, want)
	}
	// Writes on r2 are still rejected: it follows the new primary.
	if _, err := r2.Execute("INSERT INTO t VALUES (9)"); !errors.Is(err, pipeline.ErrReadOnly) {
		t.Fatalf("r2 INSERT error = %v, want ErrReadOnly", err)
	}
}

func TestOpenReplicaOverTCP(t *testing.T) {
	db, err := OpenErr(durableConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Execute("CREATE TABLE t (a INT NOT NULL); INSERT INTO t VALUES (7)"); err != nil {
		t.Fatal(err)
	}
	addr, err := db.ServeReplication("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	replica, err := OpenReplica(DefaultConfig(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	waitBarrier(t, db, replica)
	if got := mustRows(t, replica, "SELECT a FROM t"); !reflect.DeepEqual(got, [][]string{{"7"}}) {
		t.Fatalf("TCP replica rows = %v", got)
	}
	st := replica.ReplicationStatus()
	if len(st) != 1 || st[0].Role != "replica" || st[0].Peer != addr {
		t.Fatalf("ReplicationStatus = %+v", st)
	}
}
