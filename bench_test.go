// Package hyrise benchmarks: one testing.B benchmark per table/figure of
// the paper's evaluation (see DESIGN.md §4 for the experiment index and
// cmd/hyrise-bench for the harness that prints the paper's rows/series).
//
// Run with:
//
//	go test -bench=. -benchmem
package hyrise

import (
	"fmt"
	"math/rand"
	"testing"

	"hyrise/internal/encoding"
	"hyrise/internal/operators"
	"hyrise/internal/pipeline"
	"hyrise/internal/rowengine"
	"hyrise/internal/storage"
	"hyrise/internal/tpch"
	"hyrise/internal/types"
)

// benchSF keeps the go-test benchmarks fast; the hyrise-bench binary runs
// the full-size experiments.
const benchSF = 0.01

// --- Figure 3: encoding framework micro-benchmarks -------------------------

func fig3Segment(b *testing.B, spec encoding.Spec) (storage.Segment, []types.ChunkOffset) {
	b.Helper()
	const n = 1_000_000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i / 64)
	}
	rng := rand.New(rand.NewSource(7))
	pos := make([]types.ChunkOffset, n/4)
	for i := range pos {
		pos[i] = types.ChunkOffset(rng.Intn(n))
	}
	seg, err := encoding.EncodeSegment(storage.ValueSegmentFromSlice(vals, nil), spec)
	if err != nil {
		b.Fatal(err)
	}
	return seg, pos
}

func fig3Specs() map[string]encoding.Spec {
	return map[string]encoding.Spec{
		"FOR_FSBA":   {Encoding: encoding.FrameOfReference, Compression: encoding.FixedSizeByteAligned},
		"FOR_BP128":  {Encoding: encoding.FrameOfReference, Compression: encoding.BitPacked128},
		"RunLength":  {Encoding: encoding.RunLength},
		"Dict_FSBA":  {Encoding: encoding.Dictionary, Compression: encoding.FixedSizeByteAligned},
		"Dict_BP128": {Encoding: encoding.Dictionary, Compression: encoding.BitPacked128},
	}
}

// BenchmarkFig3aFullMaterialization is the "decode the whole vector
// upfront" path of Figure 3a.
func BenchmarkFig3aFullMaterialization(b *testing.B) {
	for name, spec := range fig3Specs() {
		b.Run(name, func(b *testing.B) {
			seg, pos := fig3Segment(b, spec)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				full, _ := encoding.Materialize[int64](seg)
				var sum int64
				for _, p := range pos {
					sum += full[p]
				}
				_ = sum
			}
		})
	}
}

// BenchmarkFig3aPositional is the random-access-iterator path of Figure 3a.
func BenchmarkFig3aPositional(b *testing.B) {
	for name, spec := range fig3Specs() {
		b.Run(name, func(b *testing.B) {
			seg, pos := fig3Segment(b, spec)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vals, _ := encoding.MaterializePositions[int64](seg, pos)
				var sum int64
				for _, v := range vals {
					sum += v
				}
				_ = sum
			}
		})
	}
}

// BenchmarkFig3bDynamic is the virtual-call-per-value path of Figure 3b.
func BenchmarkFig3bDynamic(b *testing.B) {
	for name, spec := range fig3Specs() {
		b.Run(name, func(b *testing.B) {
			seg, pos := fig3Segment(b, spec)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vals, _ := encoding.MaterializeDynamic[int64](seg, pos)
				var sum int64
				for _, v := range vals {
					sum += v
				}
				_ = sum
			}
		})
	}
}

// BenchmarkFig3bStatic is the statically resolved path of Figure 3b (same
// work as BenchmarkFig3aPositional; both names exist so each figure has
// its pair).
func BenchmarkFig3bStatic(b *testing.B) {
	BenchmarkFig3aPositional(b)
}

// --- Figure 6: TPC-H across engines ------------------------------------------

func tpchEngine(b *testing.B, cfg pipeline.Config, chunkSize int) *pipeline.Engine {
	b.Helper()
	sm := storage.NewStorageManager()
	if err := tpch.Generate(sm, tpch.Config{ScaleFactor: benchSF, ChunkSize: chunkSize, UseMvcc: cfg.UseMvcc, Seed: 42}); err != nil {
		b.Fatal(err)
	}
	if err := tpch.EncodeAndFilter(sm, tpch.DefaultEncoding()); err != nil {
		b.Fatal(err)
	}
	e := pipeline.NewEngine(cfg, sm)
	b.Cleanup(e.Close)
	return e
}

// BenchmarkFig6TPCH runs each TPC-H query on the full engine (the "hyrise"
// series of Figure 6).
func BenchmarkFig6TPCH(b *testing.B) {
	e := tpchEngine(b, pipeline.DefaultConfig(), storage.DefaultChunkSize)
	s := e.NewSession()
	queries := tpch.Queries(benchSF)
	for _, num := range tpch.QueryNumbers() {
		b.Run(fmt.Sprintf("Q%02d", num), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.ExecuteOne(queries[num]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6RowStore runs selected TPC-H queries on the row-oriented
// baseline engine (the comparison series of Figure 6).
func BenchmarkFig6RowStore(b *testing.B) {
	sm := storage.NewStorageManager()
	if err := tpch.Generate(sm, tpch.Config{ScaleFactor: benchSF, ChunkSize: storage.DefaultChunkSize, UseMvcc: false, Seed: 42}); err != nil {
		b.Fatal(err)
	}
	rows := rowengine.NewFromStorage(sm)
	queries := tpch.Queries(benchSF)
	for _, num := range []int{1, 3, 6, 12, 14} {
		b.Run(fmt.Sprintf("Q%02d", num), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := rows.Query(queries[num]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6DynamicAccess runs selected queries through the
// interface-call-per-value baseline.
func BenchmarkFig6DynamicAccess(b *testing.B) {
	cfg := pipeline.DefaultConfig()
	cfg.DynamicAccess = true
	e := tpchEngine(b, cfg, storage.DefaultChunkSize)
	s := e.NewSession()
	queries := tpch.Queries(benchSF)
	for _, num := range []int{1, 3, 6, 12, 14} {
		b.Run(fmt.Sprintf("Q%02d", num), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.ExecuteOne(queries[num]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 7: chunk size sweep ------------------------------------------------

// BenchmarkFig7ChunkSize measures selected queries across chunk capacities
// on date-clustered data (the pruning regime of §5.2).
func BenchmarkFig7ChunkSize(b *testing.B) {
	queries := tpch.Queries(benchSF)
	for _, capacity := range []int{1_000, 10_000, 100_000, 10_000_000} {
		sm := storage.NewStorageManager()
		if err := tpch.Generate(sm, tpch.Config{ScaleFactor: benchSF, ChunkSize: capacity, UseMvcc: true, Seed: 42, ClusterDates: true}); err != nil {
			b.Fatal(err)
		}
		if err := tpch.EncodeAndFilter(sm, tpch.DefaultEncoding()); err != nil {
			b.Fatal(err)
		}
		e := pipeline.NewEngine(pipeline.DefaultConfig(), sm)
		s := e.NewSession()
		for _, num := range []int{1, 6, 12, 22} {
			b.Run(fmt.Sprintf("capacity_%d/Q%02d", capacity, num), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := s.ExecuteOne(queries[num]); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		e.Close()
	}
}

// BenchmarkFig7Memory reports bytes of data and metadata per chunk capacity
// as benchmark metrics.
func BenchmarkFig7Memory(b *testing.B) {
	for _, capacity := range []int{1_000, 100_000, 10_000_000} {
		b.Run(fmt.Sprintf("capacity_%d", capacity), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sm := storage.NewStorageManager()
				if err := tpch.Generate(sm, tpch.Config{ScaleFactor: benchSF, ChunkSize: capacity, UseMvcc: true, Seed: 42}); err != nil {
					b.Fatal(err)
				}
				if err := tpch.EncodeAndFilter(sm, tpch.DefaultEncoding()); err != nil {
					b.Fatal(err)
				}
				var data, metadata int64
				for _, name := range tpch.TableNames() {
					t, _ := sm.GetTable(name)
					d, m := t.MemoryUsage()
					data += d
					metadata += m
				}
				b.ReportMetric(float64(data), "data-bytes")
				b.ReportMetric(float64(metadata), "metadata-bytes")
			}
		})
	}
}

// --- §2.7: JIT / fusion ------------------------------------------------------------

// BenchmarkJITFusion compares the traditional operator pipeline against the
// fused engine on a complex-expression aggregation over dictionary-encoded
// TPC-H data. Expect the traditional path to WIN here: its specialized
// scans filter on dictionary codes while fusion decodes first — the
// paper's own caveat ("the encoding-specific optimizations have not made
// it into the JIT component yet"). The unencoded-input comparison (where
// fusion reaches parity and beats interpreted execution by 5-16x) is in
// cmd/hyrise-bench jit.
func BenchmarkJITFusion(b *testing.B) {
	const sql = `SELECT sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)),
		sum(CASE WHEN l_quantity > 25 THEN l_extendedprice ELSE l_extendedprice * 0.5 END)
		FROM lineitem WHERE l_quantity BETWEEN 5 AND 45`
	for _, fused := range []bool{false, true} {
		name := "traditional"
		if fused {
			name = "fused"
		}
		b.Run(name, func(b *testing.B) {
			cfg := pipeline.DefaultConfig()
			cfg.UseFusion = fused
			e := tpchEngine(b, cfg, storage.DefaultChunkSize)
			s := e.NewSession()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.ExecuteOne(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §2.9: scheduler -----------------------------------------------------------------

// BenchmarkScheduler measures TPC-H Q6 with immediate execution and with
// the node-queue scheduler at several worker counts.
func BenchmarkScheduler(b *testing.B) {
	queries := tpch.Queries(benchSF)
	configs := []struct {
		name    string
		sched   bool
		workers int
	}{
		{"immediate", false, 0},
		{"workers_1", true, 1},
		{"workers_4", true, 4},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			cfg := pipeline.DefaultConfig()
			cfg.UseScheduler = c.sched
			cfg.SchedulerWorkers = c.workers
			e := tpchEngine(b, cfg, 10_000)
			s := e.NewSession()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.ExecuteOne(queries[6]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §2.6: plan cache ------------------------------------------------------------------

// BenchmarkPlanCache measures a repeated query with and without the plan
// cache (the cached run skips parsing, translation, and optimization).
func BenchmarkPlanCache(b *testing.B) {
	const sql = `SELECT o_orderpriority, count(*) FROM orders
		WHERE o_orderdate >= '1993-07-01' AND o_orderdate < '1993-10-01'
		GROUP BY o_orderpriority ORDER BY o_orderpriority`
	for _, cached := range []bool{true, false} {
		name := "cache_on"
		if !cached {
			name = "cache_off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := pipeline.DefaultConfig()
			if !cached {
				cfg.PlanCacheSize = 0
			}
			e := tpchEngine(b, cfg, storage.DefaultChunkSize)
			s := e.NewSession()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.ExecuteOne(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- ablations: design choices DESIGN.md calls out -------------------------------------

// BenchmarkAblationEncodings runs TPC-H Q6 under every segment encoding:
// the "performance should be on par with manually optimized encoding
// schemes" requirement of §2.3.
func BenchmarkAblationEncodings(b *testing.B) {
	specs := map[string]encoding.Spec{
		"unencoded":  {Encoding: encoding.Unencoded},
		"dict_fsba":  {Encoding: encoding.Dictionary, Compression: encoding.FixedSizeByteAligned},
		"dict_bp128": {Encoding: encoding.Dictionary, Compression: encoding.BitPacked128},
		"rle":        {Encoding: encoding.RunLength},
		"for_fsba":   {Encoding: encoding.FrameOfReference, Compression: encoding.FixedSizeByteAligned},
	}
	queries := tpch.Queries(benchSF)
	for name, spec := range specs {
		b.Run(name, func(b *testing.B) {
			sm := storage.NewStorageManager()
			if err := tpch.Generate(sm, tpch.Config{ScaleFactor: benchSF, ChunkSize: 25_000, UseMvcc: true, Seed: 42}); err != nil {
				b.Fatal(err)
			}
			if err := tpch.EncodeAndFilter(sm, spec); err != nil {
				b.Fatal(err)
			}
			e := pipeline.NewEngine(pipeline.DefaultConfig(), sm)
			defer e.Close()
			s := e.NewSession()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.ExecuteOne(queries[6]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationJoinImpl compares the two equi-join implementations on
// TPC-H Q12 (paper §2.1: several physical operators per logical operator).
func BenchmarkAblationJoinImpl(b *testing.B) {
	queries := tpch.Queries(benchSF)
	for name, impl := range map[string]operators.JoinImplementation{
		"hash":      operators.PreferHashJoin,
		"sortmerge": operators.PreferSortMergeJoin,
	} {
		b.Run(name, func(b *testing.B) {
			cfg := pipeline.DefaultConfig()
			cfg.JoinImpl = impl
			e := tpchEngine(b, cfg, storage.DefaultChunkSize)
			s := e.NewSession()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.ExecuteOne(queries[12]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
