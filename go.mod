module hyrise

go 1.23
