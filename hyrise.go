// Package hyrise is a from-scratch Go implementation of the database
// described in "Hyrise Re-engineered: An Extensible Database System for
// Research in Relational In-Memory Data Management" (Dreseler et al.,
// EDBT 2019): an extensible, columnar, in-memory relational DBMS for
// database research in which every major component — optimizer, MVCC,
// scheduler, encodings, plan cache, network — can be selectively enabled
// or disabled.
//
// The facade wires the subsystems together:
//
//	db := hyrise.Open(hyrise.DefaultConfig())
//	defer db.Close()
//	db.Execute(`CREATE TABLE t (a INT NOT NULL, b VARCHAR(20))`)
//	db.Execute(`INSERT INTO t VALUES (1, 'hello')`)
//	res, err := db.Query(`SELECT a, b FROM t WHERE a > 0`)
//
// See DESIGN.md for the architecture and the paper-experiment index, and
// the examples/ directory for runnable programs.
package hyrise

import (
	"context"
	"io"

	"hyrise/internal/benchmark"
	"hyrise/internal/concurrency"
	"hyrise/internal/observe"
	"hyrise/internal/pipeline"
	"hyrise/internal/plugin"
	"hyrise/internal/server"
	"hyrise/internal/storage"
	"hyrise/internal/tpch"
	"hyrise/internal/types"
)

// Config toggles the optional components (paper §2). The zero value
// disables everything; use DefaultConfig for the paper's defaults.
type Config = pipeline.Config

// Result is the outcome of one SQL statement.
type Result = pipeline.Result

// Value is a dynamically typed SQL value.
type Value = types.Value

// DefaultConfig mirrors the paper's default setup: optimizer and MVCC on,
// scheduler off (single-threaded), plan cache enabled.
func DefaultConfig() Config { return pipeline.DefaultConfig() }

// Database is one Hyrise instance.
type Database struct {
	engine  *pipeline.Engine
	session *pipeline.Session
	plugins *plugin.Manager
	repl    replState // replication role, if any (see replication.go)
}

// Open creates a database with the given configuration. It panics when
// Config.DataDir is set but recovery fails; use OpenErr to handle that.
func Open(cfg Config) *Database {
	db, err := OpenErr(cfg)
	if err != nil {
		panic(err)
	}
	return db
}

// OpenErr creates a database with the given configuration. With
// Config.DataDir set, the latest snapshot is restored and the write-ahead
// log replayed before OpenErr returns.
func OpenErr(cfg Config) (*Database, error) {
	engine, err := pipeline.NewEngineErr(cfg, nil)
	if err != nil {
		return nil, err
	}
	return &Database{
		engine:  engine,
		session: engine.NewSession(),
		plugins: plugin.NewManager(engine),
	}, nil
}

// Checkpoint snapshots all tables and views to Config.DataDir and truncates
// the write-ahead log. It fails on in-memory databases.
func (db *Database) Checkpoint() error { return db.engine.Checkpoint() }

// Close stops replication (if any), shuts down the scheduler, and unloads
// all plugins.
func (db *Database) Close() {
	db.CloseReplication()
	db.plugins.UnloadAll()
	db.engine.Close()
}

// Execute runs one or more ';'-separated SQL statements on the database's
// default session and returns the last result.
func (db *Database) Execute(sql string) (*Result, error) {
	return db.session.ExecuteOne(sql)
}

// Query is Execute with a friendlier name for reads.
func (db *Database) Query(sql string) (*Result, error) {
	return db.session.ExecuteOne(sql)
}

// ExecuteContext is Execute with cooperative cancellation: canceling ctx (or
// hitting Config.StatementTimeout) stops the statement at the next chunk
// boundary, rolls its transaction back, and returns an error wrapping
// context.Canceled or context.DeadlineExceeded.
func (db *Database) ExecuteContext(ctx context.Context, sql string) (*Result, error) {
	return db.session.ExecuteOneContext(ctx, sql)
}

// QueryContext is Query with cooperative cancellation (see ExecuteContext).
func (db *Database) QueryContext(ctx context.Context, sql string) (*Result, error) {
	return db.session.ExecuteOneContext(ctx, sql)
}

// Rows renders a result as strings (convenience for examples and tools).
func Rows(res *Result) [][]string { return pipeline.RowStrings(res.Table) }

// Session opens an independent session (own transaction state).
func (db *Database) Session() *pipeline.Session { return db.engine.NewSession() }

// Engine exposes the underlying engine for advanced use (benchmark
// harnesses, plugins, direct storage access).
func (db *Database) Engine() *pipeline.Engine { return db.engine }

// StorageManager exposes the table catalog.
func (db *Database) StorageManager() *storage.StorageManager { return db.engine.StorageManager() }

// Prepare registers a named prepared statement with '?' placeholders.
func (db *Database) Prepare(name, sql string) error { return db.engine.Prepare(name, sql) }

// ExecutePrepared binds values to a prepared statement and runs it.
func (db *Database) ExecutePrepared(name string, params []Value) (*Result, error) {
	return db.session.ExecutePrepared(name, params)
}

// Plans returns the unoptimized LQP, optimized LQP, and PQP of a query as
// text (paper §2.6: all intermediary artifacts can be inspected).
func (db *Database) Plans(sql string) (unoptimized, optimized, physical string, err error) {
	return db.engine.Plans(sql)
}

// Explain executes the statement with tracing enabled and returns the
// EXPLAIN ANALYZE-style result: stage timings plus the plan annotated with
// per-operator durations, row counts, and pruned chunks.
func (db *Database) Explain(sql string) (*ExplainResult, error) {
	return db.session.Explain(sql)
}

// ExplainResult is the annotated-plan outcome of Explain.
type ExplainResult = pipeline.ExplainResult

// Metrics exposes the engine's metrics registry — also queryable as the
// meta_metrics table (`SELECT * FROM meta_metrics`) and served as JSON on
// the debug endpoint when Config.DebugAddr is set.
func (db *Database) Metrics() *observe.Registry { return db.engine.Metrics() }

// SetTraceSink installs fn to receive a trace for every planned statement;
// nil uninstalls it.
func (db *Database) SetTraceSink(fn func(*observe.Trace)) { db.engine.SetTraceSink(fn) }

// ActiveQueries snapshots the statements currently in flight across all
// sessions — the meta_active_queries table in Go form.
func (db *Database) ActiveQueries() []observe.ActiveQueryInfo { return db.engine.ActiveQueries() }

// CancelQuery cancels the in-flight statement with the given id (also
// callable as SELECT cancel_query(id)); it reports whether the id was live.
func (db *Database) CancelQuery(id int64) bool { return db.engine.CancelQuery(id) }

// StatementStats snapshots the pg_stat_statements-style per-fingerprint
// statement statistics — the meta_statement_stats table in Go form.
func (db *Database) StatementStats() []observe.StatementStatRow { return db.engine.StatementStats() }

// Plugins exposes the plugin manager (paper §3).
func (db *Database) Plugins() *plugin.Manager { return db.plugins }

// GenerateTPCH generates and registers the eight TPC-H tables at the given
// scale factor with dictionary encoding and default pruning filters — the
// benchmark binaries' one-step setup (paper §2.10).
func (db *Database) GenerateTPCH(scaleFactor float64, chunkSize int) error {
	return db.GenerateTPCHOpts(tpch.Config{ScaleFactor: scaleFactor, ChunkSize: chunkSize})
}

// GenerateTPCHOpts is GenerateTPCH with full control over the generator
// (date clustering for pruning experiments, JCC-H-style skew, seed).
func (db *Database) GenerateTPCHOpts(cfg tpch.Config) error {
	cfg.UseMvcc = db.engine.Config().UseMvcc
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if err := tpch.Generate(db.engine.StorageManager(), cfg); err != nil {
		return err
	}
	return tpch.EncodeAndFilter(db.engine.StorageManager(), tpch.DefaultEncoding())
}

// TPCHConfig re-exports the generator configuration for GenerateTPCHOpts.
type TPCHConfig = tpch.Config

// TPCHQueries returns the 22 TPC-H queries in the paper's dialect.
func TPCHQueries(scaleFactor float64) map[int]string { return tpch.Queries(scaleFactor) }

// LoadCSV bulk-loads comma-separated values into a new table; the rows are
// committed "at the beginning of time" (visible to every transaction).
func (db *Database) LoadCSV(name string, defs []storage.ColumnDefinition, r io.Reader, chunkSize int) error {
	table, err := db.engine.StorageManager().LoadCSV(name, defs, r, ',', chunkSize, db.engine.Config().UseMvcc)
	if err != nil {
		return err
	}
	concurrency.MarkTableLoaded(table)
	return nil
}

// Serve starts a PostgreSQL-wire-protocol server on addr (blocking). Use
// psql or any PostgreSQL driver to connect (paper §2.5). When read replicas
// are attached (AttachReplica), eligible SELECTs are routed to them at the
// commit barrier.
func (db *Database) Serve(addr string) error {
	srv := db.NewServer()
	if _, err := srv.Listen(addr); err != nil {
		return err
	}
	return srv.Serve()
}

// NewServer creates (without starting) a wire-protocol server over this
// database, for callers that need the production knobs: the bounded executor
// pool (server.EnableExecutorPool), admission control, the slow-query log,
// and graceful drain (server.Shutdown). Read routing is wired automatically
// when replicas are attached.
func (db *Database) NewServer() *server.Server {
	srv := server.New(db.engine)
	db.repl.mu.Lock()
	routed := len(db.repl.replicas) > 0
	db.repl.mu.Unlock()
	if routed {
		srv.SetReadRouter(db)
	}
	return srv
}

// RunBenchmark executes named queries with the generic benchmark runner and
// returns the JSON-ready result (paper §2.10).
func (db *Database) RunBenchmark(name string, items []benchmark.Item, opts benchmark.Options, extra map[string]string) *benchmark.RunResult {
	return benchmark.Run(name, db.engine, items, opts, extra)
}
