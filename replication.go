package hyrise

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"hyrise/internal/pipeline"
	"hyrise/internal/replication"
)

// Replication facade: a durable primary ships its WAL (and snapshots for
// catch-up) to follower databases, which replay it continuously and serve
// consistent reads at a commit-barrier LSN. Followers can be in-process
// (AttachReplica, net.Pipe transport) or remote (ServeReplication +
// OpenReplica over TCP) — both carry the identical wire framing. The Database
// itself implements server.ReadRouter, so a pgwire server pointed at a
// primary with attached replicas routes eligible SELECTs to the least-lagged
// follower after waiting for it to pass the primary's commit barrier.

// replicaDialTimeout bounds one TCP dial to the primary's replication port.
const replicaDialTimeout = 5 * time.Second

// readRouteWait bounds how long a routed read waits for a replica to reach
// the primary's commit barrier before falling back to the primary.
const readRouteWait = 2 * time.Second

// replState holds a database's replication role: shipper when primary,
// follower when replica, plus the in-process replicas used for read routing.
type replState struct {
	mu          sync.Mutex
	primary     *replication.Primary
	follower    *replication.Follower
	primaryPeer string // follower side: where the primary is
	replicas    []*Database
	rr          int // round-robin cursor over replicas
}

// primaryShipper lazily creates the database's WAL shipper. Replication
// requires durability: the shipper streams the on-disk WAL.
func (db *Database) primaryShipper() (*replication.Primary, error) {
	db.repl.mu.Lock()
	defer db.repl.mu.Unlock()
	if db.repl.primary != nil {
		return db.repl.primary, nil
	}
	pm := db.engine.Persistence()
	if pm == nil {
		return nil, errors.New("hyrise: replication requires a durable primary (set Config.DataDir)")
	}
	db.repl.primary = replication.NewPrimary(pm, db.engine.TransactionManager(), db.engine.Metrics())
	db.engine.SetReplicationRows(db.replicationRows)
	return db.repl.primary, nil
}

// ServeReplication starts the replication listener: remote followers created
// with OpenReplica dial this address. It returns the bound address (useful
// with port 0).
func (db *Database) ServeReplication(addr string) (string, error) {
	p, err := db.primaryShipper()
	if err != nil {
		return "", err
	}
	return p.Listen(addr)
}

// AttachReplica opens an in-process read replica of this database connected
// through an in-memory pipe (the wire framing is identical to TCP). The
// replica bootstraps from a snapshot, tails the WAL, and serves reads at the
// commit barrier; it is registered for read routing (see AcquireRead).
func (db *Database) AttachReplica(cfg Config) (*Database, error) {
	p, err := db.primaryShipper()
	if err != nil {
		return nil, err
	}
	dial := func() (io.ReadWriteCloser, error) {
		c1, c2 := net.Pipe()
		go p.ServeConn(c2, "in-process") //nolint:errcheck // session errors surface via follower reconnect
		return c1, nil
	}
	replica, err := newReplica(cfg, dial, "in-process")
	if err != nil {
		return nil, err
	}
	db.repl.mu.Lock()
	db.repl.replicas = append(db.repl.replicas, replica)
	db.repl.mu.Unlock()
	return replica, nil
}

// OpenReplica opens a read replica of the primary serving replication at
// primaryAddr (see ServeReplication). The replica reconnects with backoff on
// transport failure and re-bootstraps from a snapshot whenever its position
// is no longer covered by the primary's log.
func OpenReplica(cfg Config, primaryAddr string) (*Database, error) {
	dial := func() (io.ReadWriteCloser, error) {
		return net.DialTimeout("tcp", primaryAddr, replicaDialTimeout)
	}
	return newReplica(cfg, dial, primaryAddr)
}

// newReplica builds the follower database: a read-only engine plus the
// streaming applier, with promote_replica() and meta_replication wired.
func newReplica(cfg Config, dial func() (io.ReadWriteCloser, error), peer string) (*Database, error) {
	cfg.UseMvcc = true // replicated rows carry MVCC begin/end stamps
	rdb, err := OpenErr(cfg)
	if err != nil {
		return nil, err
	}
	engine := rdb.engine
	f := replication.NewFollower(engine.StorageManager(), engine.TransactionManager(), engine.Metrics(), dial)
	rdb.repl.follower = f
	rdb.repl.primaryPeer = peer
	engine.SetReadOnly(true)
	engine.SetPromoteFunc(rdb.Promote)
	engine.SetReplicationRows(rdb.replicationRows)
	f.Start()
	return rdb, nil
}

// Follower exposes the replication applier of a replica database (nil on a
// primary or standalone database) — for barrier waits and status in tests
// and tools.
func (db *Database) Follower() *replication.Follower {
	db.repl.mu.Lock()
	defer db.repl.mu.Unlock()
	return db.repl.follower
}

// Replication exposes the WAL shipper of a primary database (nil until
// ServeReplication or AttachReplica is called).
func (db *Database) Replication() *replication.Primary {
	db.repl.mu.Lock()
	defer db.repl.mu.Unlock()
	return db.repl.primary
}

// Promote converts a replica into a standalone read-write database: the
// stream stops, the transaction manager adopts fresh transaction ids past
// everything replayed, writes are accepted, and (when durable) a checkpoint
// makes the promoted state the recovery baseline. Also invoked by
// SELECT promote_replica() on the replica.
func (db *Database) Promote() error {
	db.repl.mu.Lock()
	f := db.repl.follower
	db.repl.mu.Unlock()
	if f == nil {
		return errors.New("hyrise: not a replica")
	}
	f.Promote()
	db.engine.SetReadOnly(false)
	if db.engine.Durable() {
		if err := db.engine.Checkpoint(); err != nil {
			return fmt.Errorf("hyrise: checkpoint after promote: %w", err)
		}
	}
	return nil
}

// Repoint re-targets a replica at a new primary address — the failover
// counterpart of Promote for the surviving followers. The replica
// re-bootstraps from the new primary's snapshot, since LSN positions from
// the old timeline need not be meaningful on the new one.
func (db *Database) Repoint(primaryAddr string) error {
	db.repl.mu.Lock()
	f := db.repl.follower
	db.repl.mu.Unlock()
	if f == nil {
		return errors.New("hyrise: not a replica")
	}
	f.Repoint(func() (io.ReadWriteCloser, error) {
		return net.DialTimeout("tcp", primaryAddr, replicaDialTimeout)
	})
	db.repl.mu.Lock()
	db.repl.primaryPeer = primaryAddr
	db.repl.mu.Unlock()
	return nil
}

// RepointTo re-targets a replica at an in-process primary (typically a
// just-promoted sibling replica), and registers it with the new primary for
// read routing.
func (db *Database) RepointTo(newPrimary *Database) error {
	db.repl.mu.Lock()
	f := db.repl.follower
	db.repl.mu.Unlock()
	if f == nil {
		return errors.New("hyrise: not a replica")
	}
	p, err := newPrimary.primaryShipper()
	if err != nil {
		return err
	}
	f.Repoint(func() (io.ReadWriteCloser, error) {
		c1, c2 := net.Pipe()
		go p.ServeConn(c2, "in-process") //nolint:errcheck
		return c1, nil
	})
	db.repl.mu.Lock()
	db.repl.primaryPeer = "in-process"
	db.repl.mu.Unlock()
	newPrimary.repl.mu.Lock()
	newPrimary.repl.replicas = append(newPrimary.repl.replicas, db)
	newPrimary.repl.mu.Unlock()
	return nil
}

// CloseReplication stops the database's replication role: the follower
// stream or the shipper with all its sessions. Close calls this.
func (db *Database) CloseReplication() {
	db.repl.mu.Lock()
	f, p := db.repl.follower, db.repl.primary
	db.repl.mu.Unlock()
	if f != nil {
		f.Stop()
	}
	if p != nil {
		p.Close()
	}
}

// AcquireRead implements server.ReadRouter over the in-process replicas:
// capture the primary's current commit barrier, pick the next streaming
// replica round-robin (preferring lower lag on ties), and wait for it to
// apply past the barrier. Returns (nil, false) — run locally — when no
// replica is attached or none catches up within the wait budget.
func (db *Database) AcquireRead(ctx context.Context) (*pipeline.Engine, bool) {
	db.repl.mu.Lock()
	replicas := make([]*Database, len(db.repl.replicas))
	copy(replicas, db.repl.replicas)
	start := db.repl.rr
	db.repl.rr++
	db.repl.mu.Unlock()
	if len(replicas) == 0 {
		return nil, false
	}
	barrier := db.engine.TransactionManager().LastCommitID()
	wait, cancel := context.WithTimeout(ctx, readRouteWait)
	defer cancel()
	for i := 0; i < len(replicas); i++ {
		r := replicas[(start+i)%len(replicas)]
		f := r.Follower()
		if f == nil || f.Status().State != replication.StateStreaming {
			continue
		}
		if err := f.WaitForCommit(wait, barrier); err != nil {
			continue // lagging past the budget (or ctx died): try the next one
		}
		return r.engine, true
	}
	return nil, false
}

// ReplicationStatus reports the database's replication topology — the
// meta_replication table in Go form.
func (db *Database) ReplicationStatus() []pipeline.ReplicationRow {
	return db.replicationRows()
}

// replicationRows feeds meta_replication: a replica reports one row about
// itself; a primary reports one row per connected follower (or a single
// followerless row so the role is still visible).
func (db *Database) replicationRows() []pipeline.ReplicationRow {
	db.repl.mu.Lock()
	p, f, peer := db.repl.primary, db.repl.follower, db.repl.primaryPeer
	db.repl.mu.Unlock()
	var rows []pipeline.ReplicationRow
	if f != nil {
		st := f.Status()
		rows = append(rows, pipeline.ReplicationRow{
			Role:       "replica",
			Peer:       peer,
			State:      string(st.State),
			AppliedLSN: st.AppliedLSN,
			EndLSN:     st.PrimaryEnd,
			AppliedCID: int64(st.AppliedCID),
			PrimaryCID: int64(st.PrimaryCID),
			LagBytes:   st.LagBytes,
			LagNS:      st.LagNS,
		})
	}
	if p != nil {
		end := p.EndLSN()
		cid := int64(db.engine.TransactionManager().LastCommitID())
		followers := p.Followers()
		for _, fi := range followers {
			lag := end - fi.AckedLSN
			if lag < 0 {
				lag = 0
			}
			rows = append(rows, pipeline.ReplicationRow{
				Role:       "primary",
				Peer:       fi.Peer,
				State:      fi.State,
				AppliedLSN: fi.AckedLSN,
				EndLSN:     end,
				AppliedCID: int64(fi.AckedCID),
				PrimaryCID: cid,
				LagBytes:   lag,
			})
		}
		if len(followers) == 0 {
			rows = append(rows, pipeline.ReplicationRow{
				Role:       "primary",
				State:      "no-followers",
				EndLSN:     end,
				PrimaryCID: cid,
			})
		}
	}
	return rows
}
